//! GEMM/GEMV sweep: component-level power across the paper's six
//! matrix kernels (Fig. 7 territory).
//!
//! ```text
//! cargo run --release --example gemm_sweep
//! ```
//!
//! Profiles CB-{8K,4K,2K}-GEMM and MB-{8K,4K,2K}-GEMV, then prints the
//! per-component SSP power table and the power-proportionality analysis
//! behind the paper's takeaways #2-#4.

use fingrav::core::campaign::Campaign;
use fingrav::core::runner::RunnerConfig;
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let kernels = suite::gemm_suite(&machine);

    // One campaign, one fresh session per kernel (isolated executions, as
    // the paper's measurement guidance #2 requires for short kernels).
    let mut campaign = Campaign::new(RunnerConfig::quick(50));
    campaign.add_all(kernels.iter().map(|sk| sk.desc.clone()));
    let result = campaign
        .run(|i| Simulation::new(SimConfig::default(), 100 + i as u64).expect("valid config"))?;

    println!("{}", result.summary_markdown());

    println!("| kernel | total W | XCD W | IOD W | HBM W | dominant |");
    println!("|---|---|---|---|---|---|");
    for (label, b) in result.breakdowns() {
        println!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {} |",
            label,
            b.mean.total(),
            b.mean.xcd,
            b.mean.iod,
            b.mean.hbm,
            b.dominant()
        );
    }

    // Power-proportionality analysis over the compute-bound GEMMs
    // (takeaway #4): utilization comes from the workload model.
    let util_of = |label: &str| {
        kernels
            .iter()
            .find(|sk| sk.label == label && sk.class.is_compute_bound_gemm())
            .map(|sk| sk.desc.compute_utilization)
    };
    let points = result.proportionality_points(|r| util_of(&r.label));
    if let Some(spread) = fingrav::core::insights::proportionality_spread(&points) {
        println!(
            "\npower proportionality across CB GEMMs: best/worst utilization-per-XCD-watt \
             spread = {spread:.2}x (1.0 would be perfectly power-proportional)"
        );
    }
    Ok(())
}
