//! Profiling a user-defined kernel: guidance lookup, phase splitting, and
//! outlier-band analysis (Section VI extensions).
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use fingrav::core::guidance::GuidanceTable;
use fingrav::core::outliers;
use fingrav::core::phases::split_kernel;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{Activity, KernelDesc, SimConfig, SimDuration, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom fused attention-like kernel: moderately compute bound,
    // streaming a large activation working set.
    let kernel = KernelDesc {
        name: "fused-attn-bf16".into(),
        base_exec: SimDuration::from_micros(340),
        freq_insensitive_frac: 0.35,
        activity: Activity::new(0.72, 0.66, 0.5),
        compute_utilization: 0.41,
        flops: 2.1e11,
        hbm_bytes: 1.6e8,
        llc_bytes: 9.5e8,
        workgroups: 608,
    };

    // Step 1 of the methodology by hand: what does Table I recommend?
    let guidance = GuidanceTable::paper();
    let entry = guidance.lookup(kernel.base_exec);
    println!(
        "guidance for a {} kernel: {} runs, margin {:.0}%, target {} LOIs\n",
        kernel.base_exec,
        entry.runs,
        entry.margin_frac * 100.0,
        entry.recommended_lois(kernel.base_exec)
    );

    // Full profile.
    let mut gpu = Simulation::new(SimConfig::default(), 77)?;
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(60));
    let report = runner.profile(&kernel)?;
    println!(
        "{}: exec {:.0} us, SSP {:.0} W over {} LOIs ({} golden / {} runs)",
        report.label,
        report.exec_time_ns as f64 / 1e3,
        report.ssp_mean_total_w.unwrap_or(f64::NAN),
        report.ssp_loi_count(),
        report.golden_runs,
        report.runs_executed
    );

    // Section VI: outlier-band suggestions from the observed durations
    // (one entry per LOI — a popcount of the store's validity bitmap).
    let durations: Vec<u64> = vec![report.exec_time_ns; report.run_profile.store.in_exec_count()];
    let targets = outliers::suggest_targets(&durations, report.margin_frac);
    println!(
        "\noutlier execution-time bands worth a dedicated profile: {}",
        if targets.is_empty() {
            "none observed".to_string()
        } else {
            targets
                .iter()
                .map(|t| format!("{:.0} us", t.center_ns as f64 / 1e3))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );

    // Section VI: split the kernel into two workgroup phases and profile
    // each half separately (lower per-phase variation).
    println!("\nphase-split profiling (half the workgroups each):");
    for phase in split_kernel(&kernel, 2)? {
        let mut gpu = Simulation::new(SimConfig::default(), 78)?;
        let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(40));
        let r = runner.profile(&phase)?;
        println!(
            "  {}: exec {:.0} us, SSP {:.0} W",
            r.label,
            r.exec_time_ns as f64 / 1e3,
            r.ssp_mean_total_w.unwrap_or(f64::NAN)
        );
    }
    Ok(())
}
