//! Shard the paper's fourteen-kernel suite across worker threads and show
//! the result is bit-identical to the serial path.
//!
//! ```sh
//! cargo run --release --example parallel_campaign
//! ```

use std::time::Instant;

use fingrav::core::backend::SimulationFactory;
use fingrav::core::campaign::Campaign;
use fingrav::core::executor::CampaignExecutor;
use fingrav::core::runner::RunnerConfig;
use fingrav::sim::SimConfig;
use fingrav::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(12));
    campaign.add_all(suite::full_suite(&machine).into_iter().map(|k| k.desc));

    // Slot i draws seed mix_seed(42, i): independent devices, re-derivable
    // in isolation, identical no matter which worker profiles them.
    let factory = SimulationFactory::new(SimConfig::default(), 42);

    let t0 = Instant::now();
    let serial = CampaignExecutor::serial().run(&campaign, &factory)?;
    let serial_s = t0.elapsed().as_secs_f64();

    let executor = CampaignExecutor::with_available_parallelism();
    let t0 = Instant::now();
    let parallel = executor.run(&campaign, &factory)?;
    let parallel_s = t0.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "sharding must not change a single bit");
    println!(
        "{} kernels | serial {serial_s:.2}s | {} workers {parallel_s:.2}s | identical: yes\n",
        campaign.len(),
        executor.workers(),
    );
    println!("{}", parallel.summary_markdown());
    if let Some(hottest) = parallel.hottest() {
        println!(
            "\nhottest kernel: {} at {:.0} W SSP",
            hottest.label,
            hottest.ssp_mean_total_w.unwrap_or(f64::NAN)
        );
    }
    Ok(())
}
