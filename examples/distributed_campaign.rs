//! Distribute a campaign across two TCP-loopback workers — kill one
//! mid-entry, reconnect a replacement — and end up with reports, profile
//! stores, and CSVs byte-identical to a single-node serial run.
//!
//! ```sh
//! cargo run --release --example distributed_campaign
//! ```
//!
//! Demonstrates the cross-node transport end to end:
//!
//! 1. a reference campaign runs serially under `execute_sharded`,
//!    checkpointing into a normal `FGRVCKPT` directory;
//! 2. a `Coordinator` serves the same campaign on `127.0.0.1`; worker 1
//!    and worker 2 connect concurrently and pull entries;
//! 3. worker 1 is killed mid-campaign: its local `CancellationToken`
//!    fires while an entry is in flight, the measurement aborts
//!    cooperatively, and the coordinator re-plans that entry;
//! 4. worker 2 leaves cleanly after two entries (`max_entries`), and a
//!    reconnecting worker 3 finishes everything that remains;
//! 5. the coordinator's checkpoint directory `gather`s into profile
//!    stores — and reports and CSVs — compared byte for byte against the
//!    serial reference.
//!
//! The transport here runs with the v2 deadline discipline: the
//! coordinator enforces an idle byte-silence budget (`idle_timeout`) and
//! evicts wedged assignments, workers pump `Heartbeat` frames while a
//! measurement makes no wire progress (`WorkerOptions::heartbeat`), and
//! connections are established with `connect_with_retry`'s exponential
//! backoff instead of dying on a transient `ConnectionRefused`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use fingrav::core::backend::SimulationFactory;
use fingrav::core::campaign::Campaign;
use fingrav::core::checkpoint::{gather, CheckpointDir};
use fingrav::core::executor::{
    CampaignExecutor, CampaignObserver, CancellationToken, NoopCampaignObserver,
};
use fingrav::core::profile::ProfileAxis;
use fingrav::core::report::profile_to_csv;
use fingrav::core::runner::RunnerConfig;
use fingrav::core::transport::{connect_with_retry, work, Coordinator, WorkerOptions};
use fingrav::sim::SimConfig;
use fingrav::workloads::suite;

/// Fires the worker's cancellation token when it starts its second
/// entry, so the abort lands mid-measurement — the transport analogue of
/// killing the worker process.
struct KillOnSecondEntry {
    cancel: CancellationToken,
    started: AtomicUsize,
}

impl CampaignObserver for KillOnSecondEntry {
    fn entry_started(&self, index: usize, label: &str) {
        let n = self.started.fetch_add(1, Ordering::SeqCst) + 1;
        println!("  worker-1 starts entry {index} ({label})");
        if n == 2 {
            println!("  -- killing worker-1 mid-entry --");
            self.cancel.abort();
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    campaign.add_all(
        suite::gemm_suite(&machine)
            .into_iter()
            .take(6)
            .map(|k| k.desc),
    );
    let total = campaign.len();
    let factory = SimulationFactory::new(SimConfig::default(), 0xD157);

    let root = std::env::temp_dir().join(format!("fingrav-distributed-{}", std::process::id()));
    let ref_dir = root.join("single-node");
    let net_dir = root.join("distributed");

    // ------------------------------------------------------------------
    // 1. Single-node serial reference, checkpointed as it runs.
    // ------------------------------------------------------------------
    println!("reference: profiling all {total} kernels serially on one node");
    let reference = CampaignExecutor::serial()
        .execute_sharded(&campaign, &factory, &ref_dir)?
        .into_report()?;

    // ------------------------------------------------------------------
    // 2–4. The same campaign served over TCP loopback.
    // ------------------------------------------------------------------
    println!("\ndistributed: serving the campaign on 127.0.0.1");
    // A 10 s byte-silence budget: generous for loopback, but it means a
    // wedged worker (open socket, no bytes) is evicted and its entry
    // re-planned instead of hanging the campaign forever.
    let coordinator = Coordinator::bind("127.0.0.1:0")?.idle_timeout(Duration::from_secs(10));
    let addr = coordinator.local_addr()?;
    // Workers heartbeat well inside that budget while measuring.
    let options = WorkerOptions {
        heartbeat: Duration::from_millis(500),
        ..WorkerOptions::default()
    };

    let outcome = std::thread::scope(|s| {
        // Worker 1: killed mid-entry by its own cancellation token.
        s.spawn(|| {
            let killer = KillOnSecondEntry {
                cancel: CancellationToken::new(),
                started: AtomicUsize::new(0),
            };
            let stream =
                connect_with_retry(addr, Duration::from_secs(5)).expect("loopback connect");
            let summary = work(
                stream,
                &campaign,
                &factory,
                &killer,
                &killer.cancel,
                &options,
            )
            .expect("a killed worker still leaves cleanly");
            println!(
                "  worker-1 delivered {} entr{} before dying",
                summary.completed.len(),
                if summary.completed.len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
        });
        // Worker 2: measures two entries, then leaves.
        s.spawn(|| {
            let stream =
                connect_with_retry(addr, Duration::from_secs(5)).expect("loopback connect");
            let summary = work(
                stream,
                &campaign,
                &factory,
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &WorkerOptions {
                    max_entries: Some(2),
                    ..options.clone()
                },
            )
            .expect("worker 2 leaves cleanly");
            println!("  worker-2 delivered {:?}, then left", summary.completed);
            // Worker 3: "reconnects" (same machine, fresh connection) and
            // finishes whatever remains — including the entry worker 1
            // dropped mid-measurement.
            let stream =
                connect_with_retry(addr, Duration::from_secs(5)).expect("loopback reconnect");
            let summary = work(
                stream,
                &campaign,
                &factory,
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &options,
            )
            .expect("worker 3 finishes the campaign");
            println!(
                "  worker-3 (reconnected) delivered {:?}; campaign complete: {}",
                summary.completed, summary.campaign_complete
            );
        });
        coordinator.serve(
            &campaign,
            &net_dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    })?;
    if outcome.evictions.is_empty() {
        println!("  no deadline evictions: every worker stayed live");
    } else {
        println!("  deadline evictions re-planned: {:?}", outcome.evictions);
    }
    let distributed = outcome.into_report()?;

    // ------------------------------------------------------------------
    // 5. Byte-identity: reports, gathered stores, and CSVs all match.
    // ------------------------------------------------------------------
    let ref_json = serde_json::to_string(&reference)?;
    let net_json = serde_json::to_string(&distributed)?;
    assert_eq!(
        ref_json, net_json,
        "distributed report must match bit for bit"
    );

    let a = gather(&CheckpointDir::open(&ref_dir)?, &campaign)?;
    let b = gather(&CheckpointDir::open(&net_dir)?, &campaign)?;
    for (what, left, right) in [
        ("run", &a.run, &b.run),
        ("sse", &a.sse, &b.sse),
        ("ssp", &a.ssp, &b.ssp),
    ] {
        assert!(
            left.diff(right).is_identical(),
            "{what} stores diverged: {}",
            left.diff(right).summary()
        );
        assert_eq!(left.to_bytes(), right.to_bytes());
    }
    let mut csv_bytes = 0usize;
    for (r_ref, r_net) in reference.reports.iter().zip(&distributed.reports) {
        for (csv_ref, csv_net) in [
            (
                profile_to_csv(&r_ref.run_profile, ProfileAxis::RunTime),
                profile_to_csv(&r_net.run_profile, ProfileAxis::RunTime),
            ),
            (
                profile_to_csv(&r_ref.sse_profile, ProfileAxis::Toi),
                profile_to_csv(&r_net.sse_profile, ProfileAxis::Toi),
            ),
            (
                profile_to_csv(&r_ref.ssp_profile, ProfileAxis::Toi),
                profile_to_csv(&r_net.ssp_profile, ProfileAxis::Toi),
            ),
        ] {
            assert_eq!(csv_ref, csv_net, "CSV artefacts must match byte for byte");
            csv_bytes += csv_ref.len();
        }
    }
    println!(
        "\nbyte-identical: {} report bytes, {} merged profile points, {csv_bytes} CSV bytes",
        ref_json.len(),
        a.run.len() + a.sse.len() + a.ssp.len(),
    );

    std::fs::remove_dir_all(&root)?;
    Ok(())
}
