//! Application-level energy accounting: a real transformer decoder layer
//! (the paper's motivation — applications are sequences of kernels, so
//! accurate kernel profiles compose into accurate application energy).
//!
//! ```text
//! cargo run --release --example llm_layer
//! ```
//!
//! Derives the projection GEMMs of a Llama-7B-class decode layer from the
//! model configuration, profiles each plus the tensor-parallel all-reduce,
//! then composes per-layer energy twice — once from the naive SSE powers
//! and once from the SSP powers — showing how measurement error compounds
//! into the cluster-scale energy bill.

use fingrav::core::energy::{
    cluster_energy_kwh, joules_to_kwh, sequence_energy_joules, SequenceStep,
};
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::fabric::Fabric;
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::{Rccl, RocBlas, TransformerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let lib = RocBlas::new(machine.clone());
    let rccl = Rccl::new(machine.clone(), Fabric::default());
    let model = TransformerConfig::llama_7b();

    // One decode step for a batch of 32 sequences: four projection GEMMs
    // plus a tensor-parallel all-reduce of the hidden states.
    let mut kernels = model.layer_kernels(&lib, "decode", 32)?;
    let ar_bytes = model.hidden * 32 * 2; // hidden x batch x fp16
    let mut ar = rccl.all_reduce(ar_bytes);
    ar.name = format!("decode/tp-allreduce ({})", ar.name);
    kernels.push(ar);

    println!("Llama-7B-class decode layer, batch 32:\n");
    println!("| kernel | exec us | SSE W | SSP W |");
    println!("|---|---|---|---|");

    let mut sse_steps = Vec::new();
    let mut ssp_steps = Vec::new();
    for (i, kernel) in kernels.iter().enumerate() {
        let mut gpu = Simulation::new(SimConfig::default(), 500 + i as u64)?;
        let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(80));
        let report = runner.profile(kernel)?;
        let ssp = report.ssp_mean_total_w.ok_or("no SSP LOIs")?;
        // Short kernels may land no SSE LOIs in a quick run; fall back to
        // the SSP value (i.e. no error contribution) rather than guessing.
        let sse = report.sse_mean_total_w.unwrap_or(ssp);
        println!(
            "| {} | {:.0} | {sse:.0} | {ssp:.0} |",
            report.label,
            report.exec_time_ns as f64 / 1e3
        );
        sse_steps.push(SequenceStep {
            power_w: sse,
            exec_time_ns: report.exec_time_ns,
            count: 1,
        });
        ssp_steps.push(SequenceStep {
            power_w: ssp,
            exec_time_ns: report.exec_time_ns,
            count: 1,
        });
    }

    let e_sse = sequence_energy_joules(&sse_steps);
    let e_ssp = sequence_energy_joules(&ssp_steps);
    println!(
        "\nper-layer decode energy: naive (SSE) {:.2} mJ vs FinGraV (SSP) {:.2} mJ -> \
         {:.0}% underestimate",
        e_sse * 1e3,
        e_ssp * 1e3,
        (e_ssp - e_sse) / e_ssp * 100.0
    );

    // Cluster-scale view: 32 layers x 1M decode steps across a fleet.
    let layers = 32u64;
    let steps = 1_000_000u64;
    let fleet_j_naive = e_sse * (layers * steps) as f64;
    let fleet_j_true = e_ssp * (layers * steps) as f64;
    println!(
        "at {layers} layers x {steps} decode steps: naive {:.1} kWh vs {:.1} kWh measured",
        joules_to_kwh(fleet_j_naive),
        joules_to_kwh(fleet_j_true),
    );
    println!(
        "(for calibration: a 1024-GPU cluster at 700 W for 48 days is {:.1} MWh — the \
         paper's intro-scale arithmetic)",
        cluster_energy_kwh(1024, 700.0, 48.0 * 24.0) / 1e3
    );
    Ok(())
}
