//! Quickstart: profile one GEMM kernel end to end with FinGraV.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Creates a simulated MI300X-class profiling session, profiles the paper's
//! CB-4K-GEMM with the nine-step FinGraV methodology, and prints the
//! steady-state-execution (SSE) vs steady-state-power (SSP) comparison that
//! is the paper's headline measurement guidance.

use fingrav::core::energy::EnergyComparison;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic simulated GPU (seed 42).
    let config = SimConfig::default();
    let machine = config.machine.clone();
    let mut gpu = Simulation::new(config, 42)?;

    // The paper's compute-bound 4096^3 FP16 GEMM.
    let kernel = suite::cb_gemm(&machine, 4096);
    println!("profiling {} (base exec {})", kernel.name, kernel.base_exec);

    // 60 runs keeps this example snappy; drop `runs_override` (via
    // RunnerConfig::default()) for the paper's guidance-table run counts.
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(60));
    let report = runner.profile(&kernel)?;

    println!("\n== FinGraV report ==");
    println!(
        "steady execution time : {:.1} us",
        report.exec_time_ns as f64 / 1e3
    );
    println!("warm-up executions    : {} (SSE index)", report.sse_index);
    println!("SSP execution index   : {}", report.ssp_index);
    println!("executions per run    : {}", report.executions_per_run);
    println!(
        "golden runs           : {}/{} (margin {:.0}%)",
        report.golden_runs,
        report.runs_executed,
        report.margin_frac * 100.0
    );
    println!("throttling observed   : {}", report.throttle_detected);
    println!(
        "timestamp-read delay  : {:.0} ns; estimated counter drift {:.1} ppm",
        report.read_delay_ns,
        report.estimated_drift_ppm.unwrap_or(f64::NAN)
    );
    println!(
        "LOIs stitched         : {} SSE, {} SSP",
        report.sse_loi_count(),
        report.ssp_loi_count()
    );

    println!(
        "\n{}",
        fingrav::core::chart::profile_chart(&report.run_profile, 60, 10)
    );

    if let (Some(sse), Some(ssp)) = (report.sse_mean_total_w, report.ssp_mean_total_w) {
        println!("SSE mean power: {sse:.0} W   SSP mean power: {ssp:.0} W");
    }
    if let Some(cmp) = EnergyComparison::from_report(&report) {
        println!(
            "energy per execution: SSE estimate {:.3} J vs SSP {:.3} J -> {:.0}% error \
             if profiles are not differentiated",
            cmp.sse_energy_j,
            cmp.ssp_energy_j,
            cmp.error_frac * 100.0
        );
    }
    Ok(())
}
