//! Collective-communication profiling: all-gather and all-reduce at
//! latency-bound and bandwidth-bound sizes on the 8-GPU fabric
//! (Fig. 10 territory).
//!
//! ```text
//! cargo run --release --example collectives
//! ```

use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::fabric::Fabric;
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::{CollectiveSpec, DType};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * 1024 * 1024;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let fabric = Fabric::default();
    let rccl = fingrav::workloads::Rccl::new(machine.clone(), fabric);

    println!(
        "node: {} GPUs, {} GB/s per link, fully connected\n",
        fabric.config().n_gpus,
        fabric.config().link_gbps
    );
    println!("| collective | class | time | total W | XCD W | IOD W | HBM W |");
    println!("|---|---|---|---|---|---|---|");

    let specs = [
        CollectiveSpec::all_gather(64 * KIB, DType::F16),
        CollectiveSpec::all_gather(GIB, DType::F16),
        CollectiveSpec::all_reduce(128 * KIB, DType::F16),
        CollectiveSpec::all_reduce(512 * MIB, DType::F16),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let kernel = rccl.kernel_for(spec);
        let mut gpu = Simulation::new(SimConfig::default(), 200 + i as u64)?;
        let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(50));
        let report = runner.profile(&kernel)?;
        let mean = report
            .ssp_profile
            .mean_power()
            .ok_or("SSP profile collected no LOIs; increase runs")?;
        println!(
            "| {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.0} |",
            spec.label(),
            spec.classify(rccl.fabric()).prefix(),
            kernel.base_exec,
            mean.total(),
            mean.xcd,
            mean.iod,
            mean.hbm
        );
    }

    println!(
        "\nlatency-bound collectives barely load any component; bandwidth-bound ones \
         stress IOD+HBM — complementary to compute kernels (paper recommendation #1:\n\
         co-schedule computations with complementary power profiles)."
    );
    Ok(())
}
