//! Interleaved-kernel contamination: how the power measured for a short
//! kernel depends on what ran before it (Fig. 9 territory, paper
//! measurement guidance #2).
//!
//! ```text
//! cargo run --release --example interleaving
//! ```

use fingrav::core::backend::PowerBackend;
use fingrav::core::insights::InterleaveEffect;
use fingrav::core::profile::place_logs;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::core::stats;
use fingrav::core::sync::{ReadDelayCalibration, TimeSync};
use fingrav::sim::{Script, SimConfig, SimDuration, Simulation};
use fingrav::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let target = suite::cb_gemm(&machine, 2048); // ~50 us: well below the 1 ms window
    let heavy = suite::cb_gemm(&machine, 8192);
    let light = suite::mb_gemv(&machine, 4096);

    // Isolated SSP power of the target.
    let mut gpu = Simulation::new(SimConfig::default(), 7)?;
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(60));
    let isolated = runner
        .profile(&target)?
        .ssp_mean_total_w
        .ok_or("no SSP LOIs; increase runs")?;
    println!("isolated SSP power of {}: {isolated:.0} W\n", target.name);

    // The same single execution measured right after different predecessors.
    for (name, pre_desc, pre_count) in [
        ("after 40x MB-4K-GEMV (light)", &light, 40u32),
        ("after 8x CB-8K-GEMM (heavy)", &heavy, 8),
    ] {
        let mut gpu = Simulation::new(SimConfig::default(), 7)?;
        let pre = PowerBackend::register_kernel(&mut gpu, pre_desc)?;
        let tgt = PowerBackend::register_kernel(&mut gpu, &target)?;

        let mut lois = Vec::new();
        for _ in 0..200 {
            let script = Script::builder()
                .begin_run()
                .start_power_logger()
                .read_gpu_timestamp()
                .sleep_uniform(SimDuration::ZERO, SimDuration::from_millis(1))
                .launch_timed(pre, pre_count)
                .launch_timed(tgt, 1)
                .sleep(SimDuration::from_millis(1))
                .read_gpu_timestamp()
                .stop_power_logger()
                .sleep(SimDuration::from_millis(8))
                .build();
            let trace = gpu.run_script(&script)?;
            let read = trace.timestamp_reads[0];
            let calib = ReadDelayCalibration {
                median_rtt_ns: read.rtt_ns(),
                assumed_sample_frac: 0.5,
            };
            let sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&gpu));
            for log in place_logs(&trace, &sync) {
                if let Some((pos, _)) = log.containing_exec {
                    if trace.executions[pos].kernel == tgt {
                        lois.push(log.power.total());
                    }
                }
            }
        }
        let interleaved = stats::mean(&lois).ok_or("no LOIs landed in the target")?;
        let effect = InterleaveEffect {
            isolated_w: isolated,
            interleaved_w: interleaved,
        };
        println!(
            "{name}: measured {interleaved:.0} W -> {:+.0}% vs isolated ({} LOIs){}",
            effect.relative() * 100.0,
            lois.len(),
            if effect.is_significant(0.1) {
                "  <- contaminated!"
            } else {
                ""
            }
        );
    }

    println!(
        "\npaper measurement guidance #2: when a kernel's execution time is below the\n\
         power logger's averaging window, only isolated executions measure its true draw."
    );
    Ok(())
}
