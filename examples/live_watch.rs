//! Live-watch a streaming campaign and abort it early.
//!
//! ```sh
//! cargo run --release --example live_watch
//! ```
//!
//! Demonstrates the streaming session API end to end:
//!
//! 1. a single script session streams `TelemetryEvent`s through a bounded
//!    channel while the device runs, and an `AbortHandle` stops it
//!    mid-script — the partial trace comes back well-formed and tagged;
//! 2. a sharded campaign streams per-entry lifecycle and device events
//!    into a `CampaignObserver`, and a `CancellationToken` fired after the
//!    first few kernels finish skips the pending entries and aborts the
//!    in-flight sessions.

use std::sync::mpsc;
use std::sync::Mutex;

use fingrav::core::backend::{PowerBackend, SimulationFactory};
use fingrav::core::campaign::Campaign;
use fingrav::core::error::MethodologyError;
use fingrav::core::executor::{
    CampaignExecutor, CampaignObserver, CampaignTally, CancellationToken,
};
use fingrav::core::observe::ProfilingEvent;
use fingrav::core::runner::{KernelPowerReport, RunnerConfig};
use fingrav::sim::session::{ChannelSink, TelemetryEvent};
use fingrav::sim::{Script, SimConfig, SimDuration, Simulation};
use fingrav::workloads::suite;

/// Campaign lifecycle updates forwarded to the watching thread.
enum Update {
    Started(usize, String),
    Finished {
        index: usize,
        label: String,
        logs: u64,
        launches: u64,
    },
    Failed(usize, MethodologyError),
    Skipped(usize),
}

/// Streams lifecycle updates to a channel and keeps live counters.
struct Watcher {
    tx: Mutex<mpsc::Sender<Update>>,
    tally: CampaignTally,
}

impl Watcher {
    fn send(&self, update: Update) {
        let _ = self.tx.lock().expect("watcher channel").send(update);
    }
}

impl CampaignObserver for Watcher {
    fn entry_started(&self, index: usize, label: &str) {
        self.send(Update::Started(index, label.to_string()));
    }
    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        self.tally.entry_event(index, event);
    }
    fn entry_finished(&self, index: usize, report: &KernelPowerReport) {
        self.tally.entry_finished(index, report);
        self.send(Update::Finished {
            index,
            label: report.label.clone(),
            logs: self.tally.logs(index),
            launches: self.tally.launches(index),
        });
    }
    fn entry_failed(&self, index: usize, error: &MethodologyError) {
        self.send(Update::Failed(index, error.clone()));
    }
    fn entry_skipped(&self, index: usize) {
        self.send(Update::Skipped(index));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. One observable, abortable script session.
    // ------------------------------------------------------------------
    let machine = SimConfig::default().machine.clone();
    let mut gpu = Simulation::new(SimConfig::default(), 42)?;
    let kernel = PowerBackend::register_kernel(&mut gpu, &suite::cb_gemm(&machine, 4096))?;
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .launch_timed(kernel, 64)
        .sleep(SimDuration::from_millis(1))
        .stop_power_logger()
        .build();

    // Bounded channel: if we drained slowly the *engine* would block, not
    // drop events (backpressure). The consumer aborts after 5 launches.
    let (sink, events) = ChannelSink::bounded(32);
    let session = gpu.begin_script(&script, sink);
    let abort = session.abort_handle();
    let consumer = std::thread::spawn(move || {
        let mut launches = 0u32;
        let mut logs = 0u32;
        for event in events.iter() {
            match event {
                TelemetryEvent::LaunchCompleted { .. } => {
                    launches += 1;
                    if launches == 5 {
                        abort.abort();
                    }
                }
                TelemetryEvent::PowerLogEmitted { .. } => logs += 1,
                _ => {}
            }
        }
        (launches, logs)
    });
    let trace = session.run()?;
    let (launches, logs) = consumer.join().expect("consumer thread");
    println!(
        "session: streamed {launches} launches + {logs} logs live; abort requested at \
         launch 5 of 64 -> engine stopped at {} executions (buffered events race a \
         little ahead), aborted={}",
        trace.executions.len(),
        trace.aborted,
    );
    assert!(trace.aborted, "the session must be tagged aborted");
    assert!(
        trace.executions.len() < 64,
        "the abort must cut the launch short"
    );

    // ------------------------------------------------------------------
    // 2. A live-watched campaign, cancelled early.
    // ------------------------------------------------------------------
    let mut campaign = Campaign::new(RunnerConfig::quick(8));
    campaign.add_all(suite::full_suite(&machine).into_iter().map(|k| k.desc));
    let total = campaign.len();
    let factory = SimulationFactory::new(SimConfig::default(), 42);
    let executor = CampaignExecutor::new(2);
    let cancel = CancellationToken::new();

    let (tx, rx) = mpsc::channel();
    let watcher = Watcher {
        tx: Mutex::new(tx),
        tally: CampaignTally::new(total),
    };

    println!("\ncampaign: watching {total} kernels on 2 workers, cancelling after 3 finish");
    let outcome = std::thread::scope(|scope| {
        let canceller = cancel.clone();
        let printer = scope.spawn(move || {
            // Ends when the watcher (and with it the sender) is dropped.
            let mut finished = 0usize;
            for update in rx.iter() {
                match update {
                    Update::Started(i, label) => println!("  [{i:2}] {label} started"),
                    Update::Finished {
                        index,
                        label,
                        logs,
                        launches,
                    } => {
                        finished += 1;
                        println!(
                            "  [{index:2}] {label} finished \
                             ({logs} logs, {launches} launches, {finished}/{total})"
                        );
                        if finished == 3 {
                            println!("  -- cancelling the rest --");
                            canceller.abort();
                        }
                    }
                    Update::Failed(i, e) => println!("  [{i:2}] failed: {e}"),
                    Update::Skipped(i) => println!("  [{i:2}] skipped (cancelled)"),
                }
            }
        });
        let outcome = executor.execute_observed(&campaign, &factory, &watcher, &cancel);
        drop(watcher);
        printer.join().expect("printer thread");
        outcome
    });

    let completed = outcome.reports.iter().filter(|r| r.is_some()).count();
    let aborted = outcome
        .errors
        .iter()
        .filter(|(_, e)| matches!(e, MethodologyError::Aborted))
        .count();
    println!(
        "\noutcome: {completed} completed, {aborted} aborted in flight, {} never started",
        outcome.skipped.len(),
    );
    assert!(completed >= 3, "the three watched kernels completed");
    assert!(
        completed < total,
        "cancellation must spare us the full campaign"
    );
    Ok(())
}
