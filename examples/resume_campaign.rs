//! Cancel a checkpointed campaign mid-flight, then finish it from the
//! checkpoint — with final artifacts byte-identical to an uninterrupted
//! run.
//!
//! ```sh
//! cargo run --release --example resume_campaign
//! ```
//!
//! Demonstrates the campaign checkpoint subsystem end to end:
//!
//! 1. a reference campaign runs to completion under `execute_sharded`,
//!    writing a `FGRVCKPT` manifest plus per-shard entry artifacts;
//! 2. a second, identically-seeded campaign is cancelled via its
//!    `CancellationToken` after two entries finish — the in-flight
//!    session aborts cooperatively, pending entries are skipped, and the
//!    checkpoint records every status;
//! 3. `resume` re-plans only the unfinished entries and completes them;
//! 4. `gather` merges both checkpoints and the final profile stores (and
//!    the serialized campaign reports) are compared byte for byte.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fingrav::core::backend::SimulationFactory;
use fingrav::core::campaign::Campaign;
use fingrav::core::checkpoint::{gather, CheckpointDir, EntryStatus};
use fingrav::core::executor::{CampaignExecutor, CampaignObserver, CancellationToken};
use fingrav::core::runner::{KernelPowerReport, RunnerConfig};
use fingrav::sim::SimConfig;
use fingrav::workloads::suite;

/// Cancels the campaign once `limit` entries have finished.
struct CancelAfter {
    cancel: CancellationToken,
    limit: usize,
    finished: AtomicUsize,
    log: Mutex<Vec<String>>,
}

impl CampaignObserver for CancelAfter {
    fn entry_finished(&self, index: usize, report: &KernelPowerReport) {
        let n = self.finished.fetch_add(1, Ordering::SeqCst) + 1;
        self.log
            .lock()
            .unwrap()
            .push(format!("  [{index}] {} finished ({n} done)", report.label));
        if n == self.limit {
            self.log
                .lock()
                .unwrap()
                .push("  -- cancelling the campaign --".to_string());
            self.cancel.abort();
        }
    }
    fn entry_failed(&self, index: usize, error: &fingrav::core::error::MethodologyError) {
        self.log
            .lock()
            .unwrap()
            .push(format!("  [{index}] cut mid-measurement: {error}"));
    }
    fn entry_skipped(&self, index: usize) {
        self.log
            .lock()
            .unwrap()
            .push(format!("  [{index}] skipped (cancelled before start)"));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    campaign.add_all(
        suite::gemm_suite(&machine)
            .into_iter()
            .take(6)
            .map(|k| k.desc),
    );
    let total = campaign.len();
    let factory = SimulationFactory::new(SimConfig::default(), 0xC4A1);
    let executor = CampaignExecutor::new(2);

    let root = std::env::temp_dir().join(format!("fingrav-resume-{}", std::process::id()));
    let ref_dir = root.join("uninterrupted");
    let cut_dir = root.join("cancelled");

    // ------------------------------------------------------------------
    // 1. The uninterrupted reference, checkpointed as it runs.
    // ------------------------------------------------------------------
    println!("reference: running all {total} kernels to completion");
    let reference = executor
        .execute_sharded(&campaign, &factory, &ref_dir)?
        .into_report()?;

    // ------------------------------------------------------------------
    // 2. The same campaign, cancelled after two entries finish.
    // ------------------------------------------------------------------
    println!("\ncancelled run: stopping after 2 of {total} entries");
    let observer = CancelAfter {
        cancel: CancellationToken::new(),
        limit: 2,
        finished: AtomicUsize::new(0),
        log: Mutex::new(Vec::new()),
    };
    let partial = executor.execute_sharded_observed(
        &campaign,
        &factory,
        &cut_dir,
        &observer,
        &observer.cancel,
    )?;
    for line in observer.log.lock().unwrap().iter() {
        println!("{line}");
    }
    let done = partial.reports.iter().filter(|r| r.is_some()).count();
    assert!(done >= 2 && done < total, "cancellation left work undone");

    let manifest = CheckpointDir::open(&cut_dir)?.read_manifest()?;
    let pending = manifest.rerun_indices();
    println!(
        "checkpoint after cancel: {done} done, {} to re-run {:?}",
        pending.len(),
        pending
    );
    assert!(!manifest.is_complete());
    assert!(manifest
        .entries
        .iter()
        .any(|e| e.status == EntryStatus::Done));

    // ------------------------------------------------------------------
    // 3. Resume: only the unfinished entries are measured.
    // ------------------------------------------------------------------
    println!("\nresume: completing the cancelled campaign from its checkpoint");
    let resumed = executor
        .resume(&campaign, &factory, &cut_dir)?
        .into_report()?;
    assert!(CheckpointDir::open(&cut_dir)?
        .read_manifest()?
        .is_complete());

    // ------------------------------------------------------------------
    // 4. Bit-identity: reports and gathered profile stores match.
    // ------------------------------------------------------------------
    let ref_json = serde_json::to_string(&reference)?;
    let res_json = serde_json::to_string(&resumed)?;
    assert_eq!(ref_json, res_json, "resumed report must match bit for bit");

    let a = gather(&CheckpointDir::open(&ref_dir)?, &campaign)?;
    let b = gather(&CheckpointDir::open(&cut_dir)?, &campaign)?;
    for (what, left, right) in [
        ("run", &a.run, &b.run),
        ("sse", &a.sse, &b.sse),
        ("ssp", &a.ssp, &b.ssp),
    ] {
        assert!(
            left.diff(right).is_identical(),
            "{what} stores diverged: {}",
            left.diff(right).summary()
        );
        assert_eq!(left.to_bytes(), right.to_bytes());
    }
    println!(
        "byte-identical: {} report bytes, {} merged profile points across run/sse/ssp",
        ref_json.len(),
        a.run.len() + a.sse.len() + a.ssp.len(),
    );

    std::fs::remove_dir_all(&root)?;
    Ok(())
}
