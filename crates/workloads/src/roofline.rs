//! Roofline classification: compute-bound vs memory-bound.
//!
//! The paper defines a kernel as compute-bound "if its algorithmic
//! op-to-byte ratio is larger than the machine's op-to-byte as calculated
//! from the peak compute and memory throughput of the underlying processor
//! (kernel is memory-bound otherwise)". This module implements exactly that
//! criterion plus the attainable-throughput roofline used by the timing
//! model.

use std::fmt;

use fingrav_sim::config::MachineConfig;
use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::gemm::GemmShape;

/// The two sides of the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Boundedness {
    /// Op-to-byte above machine balance.
    ComputeBound,
    /// Op-to-byte at or below machine balance.
    MemoryBound,
}

impl Boundedness {
    /// The paper's two-letter prefix: `CB` or `MB`.
    pub fn prefix(&self) -> &'static str {
        match self {
            Boundedness::ComputeBound => "CB",
            Boundedness::MemoryBound => "MB",
        }
    }
}

impl fmt::Display for Boundedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Roofline model of a machine for a given datatype.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute throughput for the datatype, flop/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub peak_bytes_per_s: f64,
}

impl Roofline {
    /// Builds the roofline for `dtype` on `machine`.
    pub fn for_machine(machine: &MachineConfig, dtype: DType) -> Self {
        let peak_flops = machine.peak_fp16_tflops * 1e12 * dtype.matrix_rate_class().fraction();
        Roofline {
            peak_flops,
            peak_bytes_per_s: machine.hbm_peak_gbps * 1e9,
        }
    }

    /// The machine balance (flops per byte).
    pub fn machine_op_to_byte(&self) -> f64 {
        self.peak_flops / self.peak_bytes_per_s
    }

    /// Classifies a kernel by its algorithmic intensity.
    pub fn classify_intensity(&self, op_to_byte: f64) -> Boundedness {
        if op_to_byte > self.machine_op_to_byte() {
            Boundedness::ComputeBound
        } else {
            Boundedness::MemoryBound
        }
    }

    /// Classifies a GEMM shape.
    pub fn classify(&self, shape: &GemmShape) -> Boundedness {
        self.classify_intensity(shape.op_to_byte())
    }

    /// Attainable throughput (flop/s) for a kernel of the given intensity,
    /// per the classic roofline: `min(peak, intensity × bandwidth)`.
    pub fn attainable_flops(&self, op_to_byte: f64) -> f64 {
        self.peak_flops.min(op_to_byte * self.peak_bytes_per_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roofline() -> Roofline {
        Roofline::for_machine(&MachineConfig::default(), DType::F16)
    }

    #[test]
    fn machine_balance_matches_config() {
        let r = roofline();
        let m = MachineConfig::default();
        assert!((r.machine_op_to_byte() - m.machine_op_to_byte_fp16()).abs() < 1e-9);
    }

    #[test]
    fn paper_gemms_are_compute_bound() {
        let r = roofline();
        for n in [2048, 4096, 8192] {
            let s = GemmShape::square(n, DType::F16);
            assert_eq!(
                r.classify(&s),
                Boundedness::ComputeBound,
                "CB expected for {n}"
            );
        }
    }

    #[test]
    fn paper_gemvs_are_memory_bound() {
        let r = roofline();
        for n in [2048, 4096, 8192] {
            let s = GemmShape::gemv(n, DType::F16);
            assert_eq!(
                r.classify(&s),
                Boundedness::MemoryBound,
                "MB expected for {n}"
            );
        }
    }

    #[test]
    fn boundary_goes_to_memory_bound() {
        let r = roofline();
        let balance = r.machine_op_to_byte();
        assert_eq!(r.classify_intensity(balance), Boundedness::MemoryBound);
        assert_eq!(
            r.classify_intensity(balance * 1.001),
            Boundedness::ComputeBound
        );
    }

    #[test]
    fn attainable_caps_at_peak() {
        let r = roofline();
        assert_eq!(r.attainable_flops(1e9), r.peak_flops);
        // Very low intensity: bandwidth-limited.
        let low = r.attainable_flops(1.0);
        assert!((low - r.peak_bytes_per_s).abs() < 1.0);
    }

    #[test]
    fn fp32_has_lower_balance() {
        let f16 = Roofline::for_machine(&MachineConfig::default(), DType::F16);
        let f32 = Roofline::for_machine(&MachineConfig::default(), DType::F32);
        assert!(f32.machine_op_to_byte() < f16.machine_op_to_byte());
    }

    #[test]
    fn prefixes() {
        assert_eq!(Boundedness::ComputeBound.prefix(), "CB");
        assert_eq!(Boundedness::MemoryBound.prefix(), "MB");
        assert_eq!(format!("{}", Boundedness::ComputeBound), "CB");
    }
}
