//! Transformer-layer GEMM shapes.
//!
//! The paper motivates fine-grain power visibility with large-language-model
//! workloads (training clusters, Llama-405B serving, the NanoFlow-style
//! co-scheduling of attention GEMVs with fully-connected GEMMs). This module
//! derives the projection/MLP GEMM shapes of a standard decoder layer so
//! realistic model configurations can be profiled directly: prefill shapes
//! (long sequences) classify compute-bound, decode shapes (one token)
//! classify memory-bound — the same CB/MB split the paper studies on square
//! matrices.

use fingrav_sim::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::gemm::GemmShape;
use crate::rocblas::RocBlas;

/// Minimal decoder-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Model (hidden) dimension.
    pub hidden: u64,
    /// MLP intermediate dimension (commonly 4× hidden, or 8/3× for gated).
    pub intermediate: u64,
    /// Element type.
    pub dtype: DType,
}

impl TransformerConfig {
    /// A Llama-7B-class layer (hidden 4096, intermediate 11008).
    pub const fn llama_7b() -> Self {
        TransformerConfig {
            hidden: 4096,
            intermediate: 11008,
            dtype: DType::F16,
        }
    }

    /// A Llama-70B-class layer (hidden 8192, intermediate 28672).
    pub const fn llama_70b() -> Self {
        TransformerConfig {
            hidden: 8192,
            intermediate: 28672,
            dtype: DType::F16,
        }
    }

    /// The four projection GEMMs of one decoder layer for `tokens` tokens
    /// in flight (`batch × seq` for prefill; `batch` for decode):
    /// fused QKV, attention output, MLP up, MLP down.
    pub fn layer_shapes(&self, tokens: u64) -> Vec<(&'static str, GemmShape)> {
        let h = self.hidden;
        let i = self.intermediate;
        vec![
            (
                "qkv-proj",
                GemmShape {
                    m: 3 * h,
                    n: tokens,
                    k: h,
                    dtype: self.dtype,
                },
            ),
            (
                "attn-out-proj",
                GemmShape {
                    m: h,
                    n: tokens,
                    k: h,
                    dtype: self.dtype,
                },
            ),
            (
                "mlp-up",
                GemmShape {
                    m: i,
                    n: tokens,
                    k: h,
                    dtype: self.dtype,
                },
            ),
            (
                "mlp-down",
                GemmShape {
                    m: h,
                    n: tokens,
                    k: i,
                    dtype: self.dtype,
                },
            ),
        ]
    }

    /// Kernel descriptors for one layer at the given token count, modelled
    /// through the rocBLAS-like library. Kernel names carry the stage
    /// label, e.g. `decode/qkv-proj (MB-4K-GEMV)`.
    ///
    /// # Errors
    ///
    /// Propagates shape-validation errors (degenerate configurations).
    pub fn layer_kernels(
        &self,
        lib: &RocBlas,
        stage: &str,
        tokens: u64,
    ) -> Result<Vec<KernelDesc>, String> {
        self.layer_shapes(tokens)
            .into_iter()
            .map(|(name, shape)| {
                let mut desc = lib.kernel_for(&shape)?;
                desc.name = format!("{stage}/{name} ({})", desc.name);
                Ok(desc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roofline::{Boundedness, Roofline};
    use fingrav_sim::config::MachineConfig;

    fn lib() -> RocBlas {
        RocBlas::new(MachineConfig::default())
    }

    #[test]
    fn decode_shapes_are_memory_bound() {
        let cfg = TransformerConfig::llama_7b();
        let roofline = Roofline::for_machine(&MachineConfig::default(), cfg.dtype);
        for (name, shape) in cfg.layer_shapes(1) {
            assert_eq!(
                roofline.classify(&shape),
                Boundedness::MemoryBound,
                "decode {name} should be memory bound"
            );
        }
    }

    #[test]
    fn prefill_shapes_are_compute_bound() {
        let cfg = TransformerConfig::llama_7b();
        let roofline = Roofline::for_machine(&MachineConfig::default(), cfg.dtype);
        for (name, shape) in cfg.layer_shapes(4096) {
            assert_eq!(
                roofline.classify(&shape),
                Boundedness::ComputeBound,
                "prefill {name} should be compute bound"
            );
        }
    }

    #[test]
    fn layer_flops_scale_with_tokens() {
        let cfg = TransformerConfig::llama_70b();
        let one: f64 = cfg.layer_shapes(1).iter().map(|(_, s)| s.flops()).sum();
        let many: f64 = cfg.layer_shapes(512).iter().map(|(_, s)| s.flops()).sum();
        assert!((many / one - 512.0).abs() < 1.0);
        // Per-token layer flops ~ 2 * params-per-layer.
        let params = (3 * 8192 * 8192 + 8192 * 8192 + 2 * 8192 * 28672) as f64;
        assert!((one / (2.0 * params) - 1.0).abs() < 0.01);
    }

    #[test]
    fn layer_kernels_carry_stage_labels() {
        let cfg = TransformerConfig::llama_7b();
        let kernels = cfg.layer_kernels(&lib(), "decode", 1).expect("valid");
        assert_eq!(kernels.len(), 4);
        assert!(kernels[0].name.starts_with("decode/qkv-proj"));
        assert!(kernels[0].name.contains("MB-"), "{}", kernels[0].name);
        for k in &kernels {
            assert!(k.validate().is_ok());
        }
    }

    #[test]
    fn prefill_kernels_run_longer_than_decode() {
        let cfg = TransformerConfig::llama_7b();
        let decode = cfg.layer_kernels(&lib(), "decode", 1).expect("valid");
        let prefill = cfg.layer_kernels(&lib(), "prefill", 4096).expect("valid");
        for (d, p) in decode.iter().zip(&prefill) {
            assert!(p.base_exec > d.base_exec, "{} vs {}", p.name, d.name);
        }
    }
}
