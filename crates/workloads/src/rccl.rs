//! An RCCL-like collective library model.
//!
//! Turns a [`CollectiveSpec`] into the [`KernelDesc`] executed on the
//! *local* GPU (the one being power-profiled; the paper profiles one GPU of
//! the 8×MI300X node). Activities are derived from the achieved link
//! utilization reported by the fabric cost model:
//!
//! * **IOD** carries the fabric traffic (the Infinity Fabric interfaces
//!   live on the I/O dies) — bandwidth-bound collectives drive it hard;
//! * **HBM** sources/sinks every transferred byte plus staging buffers —
//!   again high only when links run at speed;
//! * **XCD** does little for all-gather and slightly more for all-reduce
//!   (the reduction arithmetic).
//!
//! This reproduces Fig. 10's ordering: LB collectives barely move any
//! component; BB collectives sit between LB and CB-GEMM in total power on
//! the strength of IOD+HBM, while their XCD power stays far below GEMM.

use fingrav_sim::config::MachineConfig;
use fingrav_sim::fabric::{CollectiveKind, Fabric};
use fingrav_sim::kernel::KernelDesc;
use fingrav_sim::power::Activity;

use crate::collectives::CollectiveSpec;
use crate::dtype::DType;

/// The RCCL-like collective library for one machine + fabric.
///
/// # Examples
///
/// ```
/// use fingrav_sim::config::MachineConfig;
/// use fingrav_sim::fabric::Fabric;
/// use fingrav_workloads::collectives::CollectiveSpec;
/// use fingrav_workloads::dtype::DType;
/// use fingrav_workloads::rccl::Rccl;
///
/// let lib = Rccl::new(MachineConfig::default(), Fabric::default());
/// let spec = CollectiveSpec::all_gather(1024 * 1024 * 1024, DType::F16);
/// let kernel = lib.kernel_for(&spec);
/// assert_eq!(kernel.name, "AG-1GB");
/// assert!(kernel.activity.iod > 0.6, "BB collective must stress the IOD");
/// ```
#[derive(Debug, Clone)]
pub struct Rccl {
    machine: MachineConfig,
    fabric: Fabric,
}

impl Rccl {
    /// Creates the library model.
    pub fn new(machine: MachineConfig, fabric: Fabric) -> Self {
        Rccl { machine, fabric }
    }

    /// The fabric cost model in use.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Models the local-GPU kernel for a collective.
    pub fn kernel_for(&self, spec: &CollectiveSpec) -> KernelDesc {
        let cost = self.fabric.collective_cost(spec.kind, spec.message_bytes);
        let time_s = cost.time.as_secs_f64().max(1e-9);

        // Achieved aggregate link utilization on this GPU.
        let peers = (self.fabric.config().n_gpus - 1) as f64;
        let peak_link_bw = peers * self.fabric.config().link_gbps * 1e9;
        let link_util = ((cost.bytes_sent / time_s) / peak_link_bw).clamp(0.0, 1.0);

        let iod_act = (0.10 + 0.85 * link_util).min(0.95);
        let hbm_act = (0.10 + 0.78 * link_util).min(0.90);
        let xcd_act = match spec.kind {
            CollectiveKind::AllGather => 0.06 + 0.08 * link_util,
            CollectiveKind::AllReduce => 0.10 + 0.15 * link_util,
        };

        // Reduction arithmetic: one flop per element per reduce phase.
        let flops = match spec.kind {
            CollectiveKind::AllGather => 0.0,
            CollectiveKind::AllReduce => (spec.message_bytes / spec.dtype.bytes()) as f64,
        };
        let peak_flops =
            self.machine.peak_fp16_tflops * 1e12 * spec.dtype.matrix_rate_class().fraction();
        let compute_utilization = (flops / (time_s * peak_flops)).min(1.0);

        let bandwidth_bound = !self.fabric.is_latency_bound(spec.kind, spec.message_bytes);
        let workgroups = if bandwidth_bound { 32 } else { 8 };

        let desc = KernelDesc {
            name: spec.label(),
            base_exec: cost.time,
            // Communication barely cares about the core clock.
            freq_insensitive_frac: 0.95,
            activity: Activity::new(xcd_act, iod_act, hbm_act),
            compute_utilization,
            flops,
            hbm_bytes: cost.local_hbm_bytes,
            llc_bytes: cost.bytes_sent + cost.bytes_received,
            workgroups,
        };
        debug_assert!(desc.validate().is_ok());
        desc
    }

    /// Convenience: models an all-gather of `message_bytes`.
    pub fn all_gather(&self, message_bytes: u64) -> KernelDesc {
        self.kernel_for(&CollectiveSpec::all_gather(message_bytes, DType::F16))
    }

    /// Convenience: models an all-reduce of `message_bytes`.
    pub fn all_reduce(&self, message_bytes: u64) -> KernelDesc {
        self.kernel_for(&CollectiveSpec::all_reduce(message_bytes, DType::F16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    const GIB: u64 = 1024 * 1024 * 1024;

    fn lib() -> Rccl {
        Rccl::new(MachineConfig::default(), Fabric::default())
    }

    #[test]
    fn bb_collectives_stress_iod_and_hbm() {
        let l = lib();
        for k in [l.all_gather(512 * MIB), l.all_reduce(GIB)] {
            assert!(k.activity.iod > 0.6, "{}: iod {}", k.name, k.activity.iod);
            assert!(k.activity.hbm > 0.5, "{}: hbm {}", k.name, k.activity.hbm);
            assert!(k.activity.xcd < 0.3, "{}: xcd {}", k.name, k.activity.xcd);
        }
    }

    #[test]
    fn lb_collectives_barely_load_anything() {
        let l = lib();
        for k in [l.all_gather(64 * KIB), l.all_reduce(128 * KIB)] {
            assert!(k.activity.iod < 0.25, "{}: iod {}", k.name, k.activity.iod);
            assert!(k.activity.hbm < 0.25, "{}: hbm {}", k.name, k.activity.hbm);
            assert!(k.activity.xcd < 0.15, "{}: xcd {}", k.name, k.activity.xcd);
        }
    }

    #[test]
    fn allreduce_has_more_xcd_than_allgather() {
        let l = lib();
        let ag = l.all_gather(GIB);
        let ar = l.all_reduce(GIB);
        assert!(ar.activity.xcd > ag.activity.xcd);
        assert!(ar.flops > 0.0 && ag.flops == 0.0);
    }

    #[test]
    fn bb_times_are_milliseconds_lb_times_are_microseconds() {
        let l = lib();
        assert!(l.all_gather(GIB).base_exec.as_millis_f64() > 1.0);
        assert!(l.all_gather(64 * KIB).base_exec.as_micros_f64() < 100.0);
    }

    #[test]
    fn collectives_are_frequency_insensitive() {
        let k = lib().all_reduce(512 * MIB);
        assert!(k.freq_insensitive_frac > 0.9);
    }

    #[test]
    fn descriptors_validate() {
        let l = lib();
        for bytes in [64 * KIB, 128 * KIB, 512 * MIB, GIB] {
            assert!(l.all_gather(bytes).validate().is_ok());
            assert!(l.all_reduce(bytes).validate().is_ok());
        }
    }

    #[test]
    fn names_match_labels() {
        let l = lib();
        assert_eq!(l.all_gather(64 * KIB).name, "AG-64KB");
        assert_eq!(l.all_reduce(GIB).name, "AR-1GB");
    }
}
