//! On-chip residency model for repeated kernel executions.
//!
//! The paper's footnote 3 is load-bearing for its component-level analysis:
//! "As we repeatedly execute kernels, data movement is heavily biased
//! toward on-chip data movement for our executions." A working set that
//! fits in the 256 MB Infinity Cache is served almost entirely from the
//! LLC after the first execution; only working sets larger than the LLC
//! keep stressing HBM — which is why CB-8K-GEMM (402 MB footprint) is the
//! one kernel with standout HBM power in Fig. 7.

use serde::{Deserialize, Serialize};

/// LLC residency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheModel {
    /// Memory-side LLC (Infinity Cache) capacity in bytes.
    pub llc_bytes: f64,
    /// Fraction of a fully resident working set that still reaches HBM on
    /// repeated executions (writebacks, streaming corners).
    pub resident_hbm_leak: f64,
}

impl CacheModel {
    /// Builds the model for an LLC of `llc_mib` MiB.
    pub fn new(llc_mib: u64) -> Self {
        CacheModel {
            llc_bytes: (llc_mib * 1024 * 1024) as f64,
            resident_hbm_leak: 0.12,
        }
    }

    /// Fraction of the working set resident in LLC under steady repetition:
    /// 1.0 when it fits, shrinking as the footprint exceeds capacity.
    pub fn residency(&self, footprint_bytes: f64) -> f64 {
        if footprint_bytes <= 0.0 {
            return 1.0;
        }
        (self.llc_bytes / footprint_bytes).min(1.0)
    }

    /// Fraction of per-execution traffic that reaches HBM under steady
    /// repetition.
    pub fn hbm_traffic_fraction(&self, footprint_bytes: f64) -> f64 {
        let r = self.residency(footprint_bytes);
        // Resident part leaks a little; the non-resident part misses fully.
        r * self.resident_hbm_leak + (1.0 - r)
    }

    /// Splits one execution's `traffic_bytes` into `(hbm, llc)` bytes under
    /// steady repetition of a kernel with the given footprint.
    pub fn split_traffic(&self, footprint_bytes: f64, traffic_bytes: f64) -> (f64, f64) {
        let hbm_frac = self.hbm_traffic_fraction(footprint_bytes);
        let hbm = traffic_bytes * hbm_frac;
        (hbm, traffic_bytes - hbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    fn model() -> CacheModel {
        CacheModel::new(256)
    }

    #[test]
    fn small_working_set_is_resident() {
        let m = model();
        assert_eq!(m.residency(25.0 * MIB), 1.0);
        let f = m.hbm_traffic_fraction(25.0 * MIB);
        assert!((f - m.resident_hbm_leak).abs() < 1e-12);
    }

    #[test]
    fn oversized_working_set_misses() {
        let m = model();
        // 402 MiB footprint (CB-8K-GEMM): residency ~0.64.
        let r = m.residency(402.0 * MIB);
        assert!(r > 0.5 && r < 0.75, "residency {r}");
        let f = m.hbm_traffic_fraction(402.0 * MIB);
        assert!(f > 0.35, "HBM fraction {f}");
    }

    #[test]
    fn hbm_fraction_monotone_in_footprint() {
        let m = model();
        let mut last = 0.0;
        for mib in [10.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
            let f = m.hbm_traffic_fraction(mib * MIB);
            assert!(f >= last, "must grow with footprint");
            last = f;
        }
    }

    #[test]
    fn split_conserves_traffic() {
        let m = model();
        let traffic = 500.0 * MIB;
        let (hbm, llc) = m.split_traffic(300.0 * MIB, traffic);
        assert!((hbm + llc - traffic).abs() < 1.0);
        assert!(hbm > 0.0 && llc > 0.0);
    }

    #[test]
    fn zero_footprint_is_fully_resident() {
        assert_eq!(model().residency(0.0), 1.0);
    }
}
