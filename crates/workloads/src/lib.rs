//! # fingrav-workloads — AI workload models for the FinGraV reproduction
//!
//! The FinGraV paper (ISPASS 2025) profiles two operator families that
//! dominate AI execution time: GEMM/GEMV kernels (via rocBLAS) and
//! collective-communication kernels (via RCCL). This crate models both
//! against the simulated MI300X-class machine in `fingrav-sim`:
//!
//! * [`gemm`]/[`roofline`] — shape arithmetic and the paper's compute- vs
//!   memory-bound classification (algorithmic op-to-byte vs machine
//!   balance);
//! * [`cache`] — the repeated-execution LLC-residency bias the paper's
//!   footnote 3 relies on;
//! * [`rocblas`] — a rocBLAS-like kernel selector producing execution time
//!   and per-component power activities;
//! * [`collectives`]/[`rccl`] — all-gather/all-reduce over the 8-GPU
//!   Infinity-Fabric model with latency-/bandwidth-bound classification;
//! * [`suite`] — the paper's fourteen evaluation kernels with stable labels.
//!
//! ## Example
//!
//! ```
//! use fingrav_sim::config::MachineConfig;
//! use fingrav_workloads::suite;
//!
//! let kernels = suite::full_suite(&MachineConfig::default());
//! assert_eq!(kernels.len(), 14);
//! let gemm = suite::find(&kernels, "CB-8K-GEMM").unwrap();
//! assert!(gemm.desc.base_exec.as_millis_f64() > 1.0);
//! ```

// No unsafe anywhere in this crate; `fgrv-lint`'s unsafe-audit keeps it so.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod collectives;
pub mod concurrent;
pub mod dtype;
pub mod gemm;
pub mod rccl;
pub mod rocblas;
pub mod roofline;
pub mod suite;
pub mod transformer;

pub use collectives::{CollectiveSpec, CommBoundedness};
pub use dtype::DType;
pub use gemm::GemmShape;
pub use rccl::Rccl;
pub use rocblas::RocBlas;
pub use roofline::{Boundedness, Roofline};
pub use suite::{SuiteClass, SuiteKernel};
pub use transformer::TransformerConfig;
