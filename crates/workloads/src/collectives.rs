//! Collective communication specifications and classification.
//!
//! The paper studies all-gather (AG) and all-reduce (AR) at latency-bound
//! sizes (64 KB, 128 KB — inference-relevant) and bandwidth-bound sizes
//! (512 MB, 1 GB — training-relevant). A size is latency-bound "if
//! collective latency at/before this size does not increase commensurate to
//! data-transfer size"; the classifier delegates that test to the fabric
//! cost model.

use std::fmt;

use fingrav_sim::fabric::{CollectiveKind, Fabric};
use serde::{Deserialize, Serialize};

use crate::dtype::DType;

/// Latency- vs bandwidth-bound classification for collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommBoundedness {
    /// Completion time dominated by fixed latency.
    LatencyBound,
    /// Completion time dominated by link bandwidth.
    BandwidthBound,
}

impl CommBoundedness {
    /// The paper's two-letter prefix: `LB` or `BB`.
    pub fn prefix(&self) -> &'static str {
        match self {
            CommBoundedness::LatencyBound => "LB",
            CommBoundedness::BandwidthBound => "BB",
        }
    }
}

impl fmt::Display for CommBoundedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// A collective operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CollectiveSpec {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Total payload in bytes (full-buffer convention).
    pub message_bytes: u64,
    /// Element type (relevant for reduction cost).
    pub dtype: DType,
}

impl CollectiveSpec {
    /// Creates an all-gather spec.
    pub const fn all_gather(message_bytes: u64, dtype: DType) -> Self {
        CollectiveSpec {
            kind: CollectiveKind::AllGather,
            message_bytes,
            dtype,
        }
    }

    /// Creates an all-reduce spec.
    pub const fn all_reduce(message_bytes: u64, dtype: DType) -> Self {
        CollectiveSpec {
            kind: CollectiveKind::AllReduce,
            message_bytes,
            dtype,
        }
    }

    /// Classifies this spec on a fabric.
    pub fn classify(&self, fabric: &Fabric) -> CommBoundedness {
        if fabric.is_latency_bound(self.kind, self.message_bytes) {
            CommBoundedness::LatencyBound
        } else {
            CommBoundedness::BandwidthBound
        }
    }

    /// Human-readable size, e.g. `64KB`, `512MB`, `1GB`.
    pub fn size_label(&self) -> String {
        format_bytes(self.message_bytes)
    }

    /// Short label, e.g. `AG-64KB`.
    pub fn label(&self) -> String {
        let op = match self.kind {
            CollectiveKind::AllGather => "AG",
            CollectiveKind::AllReduce => "AR",
        };
        format!("{}-{}", op, self.size_label())
    }

    /// Full label including boundedness, e.g. `BB-AG-512MB`.
    pub fn full_label(&self, fabric: &Fabric) -> String {
        format!("{}-{}", self.classify(fabric).prefix(), self.label())
    }
}

/// Formats a byte count with binary-unit labels matching the paper (64KB,
/// 512MB, 1GB).
pub fn format_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    const GIB: u64 = 1024 * 1024 * 1024;
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{}GB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{}MB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{}KB", bytes / KIB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    const GIB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn labels() {
        let ag = CollectiveSpec::all_gather(64 * KIB, DType::F16);
        assert_eq!(ag.label(), "AG-64KB");
        let ar = CollectiveSpec::all_reduce(GIB, DType::F16);
        assert_eq!(ar.label(), "AR-1GB");
    }

    #[test]
    fn paper_sizes_classify_as_expected() {
        let fabric = Fabric::default();
        for kind_spec in [
            CollectiveSpec::all_gather(64 * KIB, DType::F16),
            CollectiveSpec::all_gather(128 * KIB, DType::F16),
            CollectiveSpec::all_reduce(64 * KIB, DType::F16),
            CollectiveSpec::all_reduce(128 * KIB, DType::F16),
        ] {
            assert_eq!(
                kind_spec.classify(&fabric),
                CommBoundedness::LatencyBound,
                "{}",
                kind_spec.label()
            );
        }
        for kind_spec in [
            CollectiveSpec::all_gather(512 * MIB, DType::F16),
            CollectiveSpec::all_gather(GIB, DType::F16),
            CollectiveSpec::all_reduce(512 * MIB, DType::F16),
            CollectiveSpec::all_reduce(GIB, DType::F16),
        ] {
            assert_eq!(
                kind_spec.classify(&fabric),
                CommBoundedness::BandwidthBound,
                "{}",
                kind_spec.label()
            );
        }
    }

    #[test]
    fn full_labels_carry_boundedness() {
        let fabric = Fabric::default();
        assert_eq!(
            CollectiveSpec::all_gather(64 * KIB, DType::F16).full_label(&fabric),
            "LB-AG-64KB"
        );
        assert_eq!(
            CollectiveSpec::all_reduce(512 * MIB, DType::F16).full_label(&fabric),
            "BB-AR-512MB"
        );
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(64 * KIB), "64KB");
        assert_eq!(format_bytes(512 * MIB), "512MB");
        assert_eq!(format_bytes(GIB), "1GB");
        assert_eq!(format_bytes(500), "500B");
        assert_eq!(format_bytes(3 * KIB * KIB), "3MB");
    }

    #[test]
    fn prefixes() {
        assert_eq!(CommBoundedness::LatencyBound.prefix(), "LB");
        assert_eq!(CommBoundedness::BandwidthBound.prefix(), "BB");
    }
}
