//! GEMM/GEMV shape arithmetic.
//!
//! The paper studies general matrix-matrix multiplication
//! `M×K * K×N = M×N` and its memory-bound degenerate case GEMV (`N = 1`,
//! `M = K`). Everything the power analysis needs from a shape is its flop
//! count, memory footprint, and operational intensity (op-to-byte ratio).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dtype::DType;

/// A GEMM problem shape: `M×K * K×N = M×N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of the output.
    pub m: u64,
    /// Columns of the output.
    pub n: u64,
    /// Shared (contraction) dimension.
    pub k: u64,
    /// Element type of all operands.
    pub dtype: DType,
}

impl GemmShape {
    /// A square GEMM (`M = N = K = n`), the paper's compute-bound case.
    pub const fn square(n: u64, dtype: DType) -> Self {
        GemmShape {
            m: n,
            n,
            k: n,
            dtype,
        }
    }

    /// A GEMV for the same matrix (`M = K = n`, `N = 1`), the paper's
    /// memory-bound case.
    pub const fn gemv(n: u64, dtype: DType) -> Self {
        GemmShape {
            m: n,
            n: 1,
            k: n,
            dtype,
        }
    }

    /// True if this shape is a matrix-vector product.
    pub const fn is_gemv(&self) -> bool {
        self.n == 1
    }

    /// Algorithmic floating-point operations (one multiply + one add per
    /// MAC).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes of all three operands (`A`, `B`, `C`).
    pub fn footprint_bytes(&self) -> f64 {
        let elems = self.m * self.k + self.k * self.n + self.m * self.n;
        (elems * self.dtype.bytes()) as f64
    }

    /// Algorithmic operational intensity: flops per byte of cold traffic
    /// (each operand touched once).
    pub fn op_to_byte(&self) -> f64 {
        self.flops() / self.footprint_bytes()
    }

    /// Canonical size label used in the paper, e.g. `8K`, `4K`, `2K`.
    pub fn size_label(&self) -> String {
        let n = self.m.max(self.k);
        if n.is_multiple_of(1024) {
            format!("{}K", n / 1024)
        } else {
            format!("{n}")
        }
    }

    /// Validates that all dimensions are positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.m == 0 || self.n == 0 || self.k == 0 {
            return Err(format!("GEMM dimensions must be positive: {self}"));
        }
        Ok(())
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{} ({})", self.m, self.n, self.k, self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_flops() {
        let s = GemmShape::square(8192, DType::F16);
        let expected = 2.0 * 8192f64.powi(3);
        assert!((s.flops() - expected).abs() < 1.0);
    }

    #[test]
    fn gemv_is_detected() {
        assert!(GemmShape::gemv(4096, DType::F16).is_gemv());
        assert!(!GemmShape::square(4096, DType::F16).is_gemv());
    }

    #[test]
    fn footprint_square() {
        let s = GemmShape::square(2048, DType::F16);
        let expected = (3 * 2048u64 * 2048 * 2) as f64;
        assert!((s.footprint_bytes() - expected).abs() < 1.0);
    }

    #[test]
    fn op_to_byte_grows_with_size() {
        let small = GemmShape::square(2048, DType::F16).op_to_byte();
        let large = GemmShape::square(8192, DType::F16).op_to_byte();
        assert!(large > small);
        // Square GEMM intensity is n/3 for 2-byte types: 2n^3 / (3n^2 * 2).
        assert!((large - 8192.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn gemv_intensity_is_near_one() {
        let v = GemmShape::gemv(8192, DType::F16);
        // 2*n^2 flops over ~n^2 elements * 2 bytes -> ~1 flop/byte.
        assert!((v.op_to_byte() - 1.0).abs() < 0.01, "{}", v.op_to_byte());
    }

    #[test]
    fn size_labels() {
        assert_eq!(GemmShape::square(8192, DType::F16).size_label(), "8K");
        assert_eq!(GemmShape::gemv(4096, DType::F16).size_label(), "4K");
        assert_eq!(GemmShape::square(1000, DType::F16).size_label(), "1000");
    }

    #[test]
    fn validation() {
        assert!(GemmShape::square(128, DType::F16).validate().is_ok());
        assert!(GemmShape {
            m: 0,
            n: 1,
            k: 1,
            dtype: DType::F16
        }
        .validate()
        .is_err());
    }

    #[test]
    fn display_contains_dims() {
        let s = format!("{}", GemmShape::square(4096, DType::Bf16));
        assert!(s.contains("4096"));
        assert!(s.contains("bf16"));
    }
}
