//! A rocBLAS-like GEMM library model.
//!
//! Maps a [`GemmShape`] to the [`KernelDesc`] the simulator executes:
//! execution time from a size-dependent efficiency model over the machine
//! roofline, and per-component power activities from an empirical activity
//! model. The activity anchors are calibrated so the simulated platform
//! reproduces the component-level orderings the paper reports in Fig. 6–8
//! (see DESIGN.md):
//!
//! * all compute-bound GEMMs toggle the XCDs near-maximally even though the
//!   2K GEMM achieves roughly half the compute utilization (takeaway #4 —
//!   GPU power is not proportional to delivered work);
//! * HBM activity is driven by LLC residency: only CB-8K-GEMM's 402 MB
//!   working set spills the 256 MB Infinity Cache (Fig. 7's HBM standout);
//! * GEMVs barely load the XCDs but the LLC-resident 8K GEMV streams the
//!   IOD hard (Fig. 7's IOD standout).

use fingrav_sim::config::MachineConfig;
use fingrav_sim::kernel::KernelDesc;
use fingrav_sim::power::Activity;
use fingrav_sim::time::SimDuration;

use crate::cache::CacheModel;
use crate::gemm::GemmShape;
use crate::roofline::{Boundedness, Roofline};

/// Piecewise-linear interpolation over `(x, y)` anchors, clamped at the
/// ends. Anchors must be sorted by `x`.
fn interp(anchors: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(!anchors.is_empty());
    if x <= anchors[0].0 {
        return anchors[0].1;
    }
    for w in anchors.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            let t = (x - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    anchors[anchors.len() - 1].1
}

/// GEMM compute efficiency (fraction of roofline-attainable throughput) by
/// log2 of the dominant dimension.
const GEMM_EFFICIENCY: &[(f64, f64)] = &[
    (10.0, 0.12),
    (11.0, 0.28),
    (12.0, 0.55),
    (13.0, 0.62),
    (14.0, 0.65),
];

/// GEMM XCD power activity by log2 size — intentionally much flatter than
/// the efficiency curve (power non-proportionality). The 2K point is tuned
/// so CB-2K-GEMM's duty-cycled power settles just below the socket cap:
/// the paper's Fig. 8 shows it ramping to SSP without a throttle spike,
/// and Fig. 9 relies on heavier GEMMs pushing it *above* its own SSP.
const GEMM_XCD_ACTIVITY: &[(f64, f64)] = &[
    (10.0, 0.60),
    (11.0, 0.66),
    (12.0, 0.93),
    (13.0, 0.95),
    (14.0, 0.95),
];

/// GEMM IOD (LLC) power activity by log2 size.
const GEMM_IOD_ACTIVITY: &[(f64, f64)] = &[
    (10.0, 0.44),
    (11.0, 0.48),
    (12.0, 0.55),
    (13.0, 0.52),
    (14.0, 0.50),
];

/// GEMM frequency-insensitive runtime fraction by log2 size.
const GEMM_FREQ_INSENSITIVE: &[(f64, f64)] = &[
    (10.0, 0.22),
    (11.0, 0.18),
    (12.0, 0.14),
    (13.0, 0.12),
    (14.0, 0.10),
];

/// GEMV streaming efficiency (fraction of on-chip bandwidth) by log2 size.
const GEMV_EFFICIENCY: &[(f64, f64)] = &[
    (10.0, 0.35),
    (11.0, 0.45),
    (12.0, 0.60),
    (13.0, 0.75),
    (14.0, 0.80),
];

/// GEMV XCD power activity by log2 size.
const GEMV_XCD_ACTIVITY: &[(f64, f64)] = &[
    (10.0, 0.16),
    (11.0, 0.18),
    (12.0, 0.20),
    (13.0, 0.22),
    (14.0, 0.22),
];

/// GEMV IOD power activity by log2 size (the 8K GEMV streams the LLC).
const GEMV_IOD_ACTIVITY: &[(f64, f64)] = &[
    (10.0, 0.38),
    (11.0, 0.45),
    (12.0, 0.62),
    (13.0, 0.88),
    (14.0, 0.90),
];

/// GEMV HBM power activity by log2 size.
const GEMV_HBM_ACTIVITY: &[(f64, f64)] = &[
    (10.0, 0.34),
    (11.0, 0.36),
    (12.0, 0.38),
    (13.0, 0.40),
    (14.0, 0.42),
];

/// Effective LLC streaming bandwidth for memory-bound kernels, bytes/s.
const LLC_STREAM_BW: f64 = 12.0e12;

/// The rocBLAS-like kernel library for one machine.
///
/// # Examples
///
/// ```
/// use fingrav_sim::config::MachineConfig;
/// use fingrav_workloads::dtype::DType;
/// use fingrav_workloads::gemm::GemmShape;
/// use fingrav_workloads::rocblas::RocBlas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = RocBlas::new(MachineConfig::default());
/// let kernel = lib.kernel_for(&GemmShape::square(4096, DType::F16))?;
/// assert_eq!(kernel.name, "CB-4K-GEMM");
/// // ~200 us on an MI300X-class device.
/// let us = kernel.base_exec.as_micros_f64();
/// assert!(us > 100.0 && us < 400.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RocBlas {
    machine: MachineConfig,
    cache: CacheModel,
}

impl RocBlas {
    /// Creates the library model for a machine.
    pub fn new(machine: MachineConfig) -> Self {
        let cache = CacheModel::new(machine.llc_mib);
        RocBlas { machine, cache }
    }

    /// The machine this library targets.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The paper-style label for a shape, e.g. `CB-4K-GEMM` / `MB-8K-GEMV`.
    pub fn label(&self, shape: &GemmShape) -> String {
        let roofline = Roofline::for_machine(&self.machine, shape.dtype);
        let bound = roofline.classify(shape);
        let kind = if shape.is_gemv() { "GEMV" } else { "GEMM" };
        format!("{}-{}-{}", bound.prefix(), shape.size_label(), kind)
    }

    /// Selects and models the kernel for a GEMM shape.
    ///
    /// # Errors
    ///
    /// Returns an error string if the shape is degenerate.
    pub fn kernel_for(&self, shape: &GemmShape) -> Result<KernelDesc, String> {
        shape.validate()?;
        let roofline = Roofline::for_machine(&self.machine, shape.dtype);
        let bound = roofline.classify(shape);
        let log_n = (shape.m.max(shape.k) as f64).log2();
        let footprint = shape.footprint_bytes();

        let desc = match bound {
            Boundedness::ComputeBound => {
                let eff = interp(GEMM_EFFICIENCY, log_n);
                let attainable = roofline.attainable_flops(shape.op_to_byte());
                let achieved = eff * attainable;
                let time_s = shape.flops() / achieved;

                // Steady-state (repeated-execution) traffic: the working set
                // once per execution, split between LLC and HBM by residency.
                let (hbm_bytes, llc_bytes) = self.cache.split_traffic(footprint, footprint * 2.2);
                let hbm_act = (0.32 + 0.93 * self.cache.hbm_traffic_fraction(footprint)).min(0.95);

                KernelDesc {
                    name: self.label(shape),
                    base_exec: SimDuration::from_secs_f64(time_s),
                    freq_insensitive_frac: interp(GEMM_FREQ_INSENSITIVE, log_n),
                    activity: Activity::new(
                        interp(GEMM_XCD_ACTIVITY, log_n),
                        interp(GEMM_IOD_ACTIVITY, log_n),
                        hbm_act,
                    ),
                    compute_utilization: (achieved / roofline.peak_flops).min(1.0),
                    flops: shape.flops(),
                    hbm_bytes,
                    llc_bytes,
                    workgroups: (shape.m.div_ceil(256) * shape.n.div_ceil(256)).max(1) as u32,
                }
            }
            Boundedness::MemoryBound => {
                let eff = interp(GEMV_EFFICIENCY, log_n);
                let residency = self.cache.residency(footprint);
                // Resident traffic streams from LLC; the remainder from HBM.
                let bw = eff
                    * (residency * LLC_STREAM_BW
                        + (1.0 - residency) * self.machine.hbm_peak_gbps * 1e9 * 0.8);
                let time_s = footprint / bw;
                let (hbm_bytes, llc_bytes) = self.cache.split_traffic(footprint, footprint);

                KernelDesc {
                    name: self.label(shape),
                    base_exec: SimDuration::from_secs_f64(time_s),
                    freq_insensitive_frac: 0.92,
                    activity: Activity::new(
                        interp(GEMV_XCD_ACTIVITY, log_n),
                        interp(GEMV_IOD_ACTIVITY, log_n),
                        interp(GEMV_HBM_ACTIVITY, log_n),
                    ),
                    compute_utilization: (shape.flops() / (time_s * roofline.peak_flops)).min(1.0),
                    flops: shape.flops(),
                    hbm_bytes,
                    llc_bytes,
                    workgroups: (shape.m.div_ceil(512)).max(1) as u32,
                }
            }
        };
        debug_assert!(desc.validate().is_ok());
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn lib() -> RocBlas {
        RocBlas::new(MachineConfig::default())
    }

    #[test]
    fn interp_clamps_and_interpolates() {
        let anchors = [(0.0, 0.0), (1.0, 10.0), (2.0, 30.0)];
        assert_eq!(interp(&anchors, -1.0), 0.0);
        assert_eq!(interp(&anchors, 3.0), 30.0);
        assert!((interp(&anchors, 0.5) - 5.0).abs() < 1e-12);
        assert!((interp(&anchors, 1.5) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_paper_naming() {
        let l = lib();
        assert_eq!(l.label(&GemmShape::square(8192, DType::F16)), "CB-8K-GEMM");
        assert_eq!(l.label(&GemmShape::square(2048, DType::F16)), "CB-2K-GEMM");
        assert_eq!(l.label(&GemmShape::gemv(4096, DType::F16)), "MB-4K-GEMV");
    }

    #[test]
    fn cb_8k_runs_longer_than_the_averaging_window() {
        let k = lib()
            .kernel_for(&GemmShape::square(8192, DType::F16))
            .unwrap();
        let ms = k.base_exec.as_millis_f64();
        assert!(ms > 1.0 && ms < 3.0, "CB-8K-GEMM time {ms} ms");
    }

    #[test]
    fn cb_2k_lands_in_the_smallest_guidance_bin() {
        let k = lib()
            .kernel_for(&GemmShape::square(2048, DType::F16))
            .unwrap();
        let us = k.base_exec.as_micros_f64();
        assert!((25.0..=60.0).contains(&us), "CB-2K-GEMM time {us} us");
    }

    #[test]
    fn gemm_times_scale_with_size() {
        let l = lib();
        let t2 = l
            .kernel_for(&GemmShape::square(2048, DType::F16))
            .unwrap()
            .base_exec;
        let t4 = l
            .kernel_for(&GemmShape::square(4096, DType::F16))
            .unwrap()
            .base_exec;
        let t8 = l
            .kernel_for(&GemmShape::square(8192, DType::F16))
            .unwrap()
            .base_exec;
        assert!(t2 < t4 && t4 < t8);
    }

    #[test]
    fn gemvs_are_short_and_memory_bound() {
        let l = lib();
        for n in [2048u64, 4096, 8192] {
            let k = l.kernel_for(&GemmShape::gemv(n, DType::F16)).unwrap();
            assert!(k.base_exec.as_micros_f64() < 40.0, "{}", k.name);
            assert!(k.freq_insensitive_frac > 0.8, "{}", k.name);
            assert!(k.compute_utilization < 0.01, "{}", k.name);
        }
    }

    #[test]
    fn xcd_activity_flat_despite_utilization_gap() {
        // Paper takeaway #4: CB-2K achieves ~half the utilization of
        // CB-8K but similar XCD power activity.
        let l = lib();
        let k2 = l.kernel_for(&GemmShape::square(2048, DType::F16)).unwrap();
        let k8 = l.kernel_for(&GemmShape::square(8192, DType::F16)).unwrap();
        assert!(
            k2.compute_utilization < 0.55 * k8.compute_utilization,
            "2K util {} vs 8K util {}",
            k2.compute_utilization,
            k8.compute_utilization
        );
        // "In the ballpark": the activity gap is far smaller than the 2x
        // utilization gap, and at runtime the heavier GEMMs run throttled
        // while 2K runs at boost, bringing measured XCD power even closer
        // (the measured Fig. 7 XCD ratio lands near 0.85).
        assert!(
            k2.activity.xcd > 0.65 * k8.activity.xcd,
            "2K xcd {} vs 8K xcd {}",
            k2.activity.xcd,
            k8.activity.xcd
        );
    }

    #[test]
    fn only_8k_gemm_spills_the_llc() {
        let l = lib();
        let k8 = l.kernel_for(&GemmShape::square(8192, DType::F16)).unwrap();
        let k4 = l.kernel_for(&GemmShape::square(4096, DType::F16)).unwrap();
        let k2 = l.kernel_for(&GemmShape::square(2048, DType::F16)).unwrap();
        assert!(
            k8.activity.hbm > k4.activity.hbm + 0.15,
            "8K must stand out"
        );
        assert!((k4.activity.hbm - k2.activity.hbm).abs() < 0.1, "4K ~ 2K");
    }

    #[test]
    fn gemv_iod_activity_peaks_at_8k() {
        let l = lib();
        let v8 = l.kernel_for(&GemmShape::gemv(8192, DType::F16)).unwrap();
        let v4 = l.kernel_for(&GemmShape::gemv(4096, DType::F16)).unwrap();
        let v2 = l.kernel_for(&GemmShape::gemv(2048, DType::F16)).unwrap();
        assert!(v8.activity.iod > v4.activity.iod);
        assert!(v4.activity.iod > v2.activity.iod);
        assert!(v8.activity.iod > 0.8, "8K GEMV must stress the IOD");
    }

    #[test]
    fn gemv_xcd_far_below_gemm_xcd() {
        let l = lib();
        let g = l.kernel_for(&GemmShape::square(4096, DType::F16)).unwrap();
        let v = l.kernel_for(&GemmShape::gemv(4096, DType::F16)).unwrap();
        assert!(v.activity.xcd < 0.3 * g.activity.xcd);
    }

    #[test]
    fn degenerate_shape_rejected() {
        let l = lib();
        let bad = GemmShape {
            m: 0,
            n: 1,
            k: 1,
            dtype: DType::F16,
        };
        assert!(l.kernel_for(&bad).is_err());
    }

    #[test]
    fn descriptors_validate() {
        let l = lib();
        for n in [2048u64, 4096, 8192] {
            assert!(l
                .kernel_for(&GemmShape::square(n, DType::F16))
                .unwrap()
                .validate()
                .is_ok());
            assert!(l
                .kernel_for(&GemmShape::gemv(n, DType::F16))
                .unwrap()
                .validate()
                .is_ok());
        }
    }
}
