//! Numeric datatypes for workload sizing.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Element datatypes used by the AI kernels under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// IEEE half precision.
    F16,
    /// bfloat16.
    Bf16,
    /// IEEE single precision.
    F32,
    /// IEEE double precision.
    F64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn bytes(&self) -> u64 {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// Whether the MI300X matrix cores run this type at the headline
    /// (FP16-class) rate.
    pub const fn matrix_rate_class(&self) -> MatrixRate {
        match self {
            DType::F16 | DType::Bf16 => MatrixRate::Full,
            DType::F32 => MatrixRate::Eighth,
            DType::F64 => MatrixRate::Sixteenth,
        }
    }
}

/// Relative matrix-core throughput class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixRate {
    /// Full (FP16/BF16) rate.
    Full,
    /// One eighth of the FP16 rate (FP32-class).
    Eighth,
    /// One sixteenth of the FP16 rate (FP64-class).
    Sixteenth,
}

impl MatrixRate {
    /// Fraction of peak FP16 matrix throughput.
    pub const fn fraction(&self) -> f64 {
        match self {
            MatrixRate::Full => 1.0,
            MatrixRate::Eighth => 0.125,
            MatrixRate::Sixteenth => 0.0625,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::F32 => "f32",
            DType::F64 => "f64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F64.bytes(), 8);
    }

    #[test]
    fn rate_classes_are_ordered() {
        assert!(
            DType::F16.matrix_rate_class().fraction() > DType::F32.matrix_rate_class().fraction()
        );
        assert!(
            DType::F32.matrix_rate_class().fraction() > DType::F64.matrix_rate_class().fraction()
        );
    }

    #[test]
    fn display_nonempty() {
        for d in [DType::F16, DType::Bf16, DType::F32, DType::F64] {
            assert!(!format!("{d}").is_empty());
        }
    }
}
