//! The paper's kernel suite.
//!
//! Section V-A fixes the operator space: compute-bound square GEMMs at
//! 8K/4K/2K, memory-bound GEMVs for the same matrices, and all-gather /
//! all-reduce collectives at latency-bound (64 KB, 128 KB) and
//! bandwidth-bound (512 MB, 1 GB) sizes — fourteen kernels in all. This
//! module builds them against a machine configuration with stable labels so
//! experiments, tests, and figures all agree on identity.

use fingrav_sim::config::MachineConfig;
use fingrav_sim::fabric::Fabric;
use fingrav_sim::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

use crate::collectives::{CollectiveSpec, CommBoundedness};
use crate::dtype::DType;
use crate::gemm::GemmShape;
use crate::rccl::Rccl;
use crate::rocblas::RocBlas;
use crate::roofline::{Boundedness, Roofline};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * 1024 * 1024;

/// Workload category of a suite kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteClass {
    /// Matrix-matrix multiplication.
    Gemm(Boundedness),
    /// Matrix-vector multiplication.
    Gemv(Boundedness),
    /// Multi-GPU collective.
    Collective(CommBoundedness),
}

impl SuiteClass {
    /// True for compute-bound GEMM kernels.
    pub fn is_compute_bound_gemm(&self) -> bool {
        matches!(self, SuiteClass::Gemm(Boundedness::ComputeBound))
    }

    /// True for memory-bound GEMV kernels.
    pub fn is_memory_bound_gemv(&self) -> bool {
        matches!(self, SuiteClass::Gemv(Boundedness::MemoryBound))
    }

    /// True for any collective.
    pub fn is_collective(&self) -> bool {
        matches!(self, SuiteClass::Collective(_))
    }
}

/// One kernel of the paper's suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteKernel {
    /// Stable label, e.g. `CB-4K-GEMM`, `AG-64KB`.
    pub label: String,
    /// Category.
    pub class: SuiteClass,
    /// The simulator kernel descriptor.
    pub desc: KernelDesc,
}

/// Builds the six GEMM/GEMV kernels (CB-{8K,4K,2K}-GEMM, MB-{8K,4K,2K}-GEMV).
pub fn gemm_suite(machine: &MachineConfig) -> Vec<SuiteKernel> {
    let lib = RocBlas::new(machine.clone());
    let roofline = Roofline::for_machine(machine, DType::F16);
    let mut out = Vec::new();
    for n in [8192u64, 4096, 2048] {
        let shape = GemmShape::square(n, DType::F16);
        let desc = lib.kernel_for(&shape).expect("paper shape is valid");
        out.push(SuiteKernel {
            label: desc.name.clone(),
            class: SuiteClass::Gemm(roofline.classify(&shape)),
            desc,
        });
    }
    for n in [8192u64, 4096, 2048] {
        let shape = GemmShape::gemv(n, DType::F16);
        let desc = lib.kernel_for(&shape).expect("paper shape is valid");
        out.push(SuiteKernel {
            label: desc.name.clone(),
            class: SuiteClass::Gemv(roofline.classify(&shape)),
            desc,
        });
    }
    out
}

/// Builds the eight collectives ({AG,AR} × {64KB, 128KB, 512MB, 1GB}).
pub fn collective_suite(machine: &MachineConfig, fabric: Fabric) -> Vec<SuiteKernel> {
    let lib = Rccl::new(machine.clone(), fabric);
    let mut out = Vec::new();
    for spec in [
        CollectiveSpec::all_gather(64 * KIB, DType::F16),
        CollectiveSpec::all_gather(128 * KIB, DType::F16),
        CollectiveSpec::all_gather(512 * MIB, DType::F16),
        CollectiveSpec::all_gather(GIB, DType::F16),
        CollectiveSpec::all_reduce(64 * KIB, DType::F16),
        CollectiveSpec::all_reduce(128 * KIB, DType::F16),
        CollectiveSpec::all_reduce(512 * MIB, DType::F16),
        CollectiveSpec::all_reduce(GIB, DType::F16),
    ] {
        let desc = lib.kernel_for(&spec);
        out.push(SuiteKernel {
            label: desc.name.clone(),
            class: SuiteClass::Collective(spec.classify(lib.fabric())),
            desc,
        });
    }
    out
}

/// The full fourteen-kernel paper suite.
pub fn full_suite(machine: &MachineConfig) -> Vec<SuiteKernel> {
    let mut out = gemm_suite(machine);
    out.extend(collective_suite(machine, Fabric::default()));
    out
}

/// Finds a suite kernel by label.
pub fn find<'a>(suite: &'a [SuiteKernel], label: &str) -> Option<&'a SuiteKernel> {
    suite.iter().find(|k| k.label == label)
}

/// Shorthand: the CB GEMM descriptor for size `n` (e.g. 4096).
pub fn cb_gemm(machine: &MachineConfig, n: u64) -> KernelDesc {
    RocBlas::new(machine.clone())
        .kernel_for(&GemmShape::square(n, DType::F16))
        .expect("square GEMM is valid")
}

/// Shorthand: the MB GEMV descriptor for size `n`.
pub fn mb_gemv(machine: &MachineConfig, n: u64) -> KernelDesc {
    RocBlas::new(machine.clone())
        .kernel_for(&GemmShape::gemv(n, DType::F16))
        .expect("GEMV is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_fourteen_kernels() {
        let suite = full_suite(&MachineConfig::default());
        assert_eq!(suite.len(), 14);
    }

    #[test]
    fn labels_are_unique_and_paper_shaped() {
        let suite = full_suite(&MachineConfig::default());
        let mut labels: Vec<&str> = suite.iter().map(|k| k.label.as_str()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "labels must be unique");
        for expected in [
            "CB-8K-GEMM",
            "CB-4K-GEMM",
            "CB-2K-GEMM",
            "MB-8K-GEMV",
            "MB-4K-GEMV",
            "MB-2K-GEMV",
            "AG-64KB",
            "AG-128KB",
            "AG-512MB",
            "AG-1GB",
            "AR-64KB",
            "AR-128KB",
            "AR-512MB",
            "AR-1GB",
        ] {
            assert!(
                find(&suite, expected).is_some(),
                "missing suite kernel {expected}"
            );
        }
    }

    #[test]
    fn classes_match_labels() {
        let suite = full_suite(&MachineConfig::default());
        assert!(find(&suite, "CB-8K-GEMM")
            .unwrap()
            .class
            .is_compute_bound_gemm());
        assert!(find(&suite, "MB-4K-GEMV")
            .unwrap()
            .class
            .is_memory_bound_gemv());
        assert!(find(&suite, "AG-1GB").unwrap().class.is_collective());
        match find(&suite, "AG-1GB").unwrap().class {
            SuiteClass::Collective(b) => assert_eq!(b, CommBoundedness::BandwidthBound),
            _ => unreachable!(),
        }
        match find(&suite, "AR-64KB").unwrap().class {
            SuiteClass::Collective(b) => assert_eq!(b, CommBoundedness::LatencyBound),
            _ => unreachable!(),
        }
    }

    #[test]
    fn shorthand_constructors_agree_with_suite() {
        let m = MachineConfig::default();
        let suite = full_suite(&m);
        assert_eq!(cb_gemm(&m, 4096), find(&suite, "CB-4K-GEMM").unwrap().desc);
        assert_eq!(mb_gemv(&m, 8192), find(&suite, "MB-8K-GEMV").unwrap().desc);
    }

    #[test]
    fn find_misses_cleanly() {
        let suite = gemm_suite(&MachineConfig::default());
        assert!(find(&suite, "NOT-A-KERNEL").is_none());
    }
}
