//! Concurrent execution of complementary kernels (paper recommendation #1).
//!
//! Table II's first recommendation: "Available power headroom can be fully
//! utilized by concurrently executing computations with complementary
//! algorithmic and hence complementary power profiles" — e.g. a
//! memory-bound attention kernel alongside compute-bound fully-connected
//! layers. This module models such co-schedules at the kernel-descriptor
//! level: the combined kernel's per-component activity is the (saturating)
//! sum of its parts, and each part slows down by the oversubscription of
//! its most contended component.

use fingrav_sim::kernel::KernelDesc;
use fingrav_sim::power::Activity;
use serde::{Deserialize, Serialize};

/// Analysis of one co-schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoScheduleAnalysis {
    /// The fused descriptor to simulate/profile.
    pub combined: KernelDesc,
    /// Oversubscription factor of the most contended component
    /// (1.0 = no contention).
    pub contention: f64,
    /// Predicted throughput gain over running the same work serially,
    /// assuming both kernels stream back-to-back through the co-schedule
    /// period: `2 / contention` (2.0 for perfectly complementary pairs,
    /// approaching 1.0 as the pair fights over one component).
    pub speedup_vs_serial: f64,
}

/// Builds the co-scheduled descriptor for kernels `a` and `b` running
/// concurrently, each repeated for one co-schedule period.
///
/// The model: each component's demand is the sum of the two kernels'
/// activities; demand beyond 1.0 is contention that stretches both kernels
/// proportionally. The combined execution time covers the longer of the
/// two (stretched) kernels.
///
/// # Errors
///
/// Returns an error if either descriptor is invalid.
///
/// # Examples
///
/// ```
/// use fingrav_sim::config::MachineConfig;
/// use fingrav_workloads::concurrent::co_schedule;
/// use fingrav_workloads::suite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = MachineConfig::default();
/// let gemm = suite::cb_gemm(&m, 4096);
/// let gemv = suite::mb_gemv(&m, 4096);
/// let analysis = co_schedule(&gemm, &gemv)?;
/// // Complementary profiles: little contention, near-2x utilization of
/// // the period that would otherwise idle one side.
/// assert!(analysis.contention < 1.3);
/// assert!(analysis.speedup_vs_serial > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn co_schedule(a: &KernelDesc, b: &KernelDesc) -> Result<CoScheduleAnalysis, String> {
    a.validate()?;
    b.validate()?;

    let demand = Activity {
        xcd: a.activity.xcd + b.activity.xcd,
        iod: a.activity.iod + b.activity.iod,
        hbm: a.activity.hbm + b.activity.hbm,
    };
    let contention = demand.xcd.max(demand.iod).max(demand.hbm).max(1.0);

    // Both kernels stretch by the contention on their shared bottleneck.
    let t_a = a.base_exec.as_secs_f64() * contention;
    let t_b = b.base_exec.as_secs_f64() * contention;
    let t_combined = t_a.max(t_b);
    // Throughput gain with both sides streaming: during one period the
    // longer kernel completes once and the shorter completes
    // `t_combined / t_short` times; the same work done serially takes
    // `t_long_solo + t_combined / contention`, which simplifies to a
    // speed-up of exactly `2 / contention`.
    let speedup_vs_serial = 2.0 / contention;

    // The combined kernel: saturating activities, duration of the longer
    // stretched member (the shorter one is assumed re-issued to fill the
    // period, as co-scheduled workloads do in practice).
    let combined = KernelDesc {
        name: format!("{}+{}", a.name, b.name),
        base_exec: fingrav_sim::time::SimDuration::from_secs_f64(t_combined),
        freq_insensitive_frac: (a.freq_insensitive_frac * t_a + b.freq_insensitive_frac * t_b)
            / (t_a + t_b),
        activity: Activity::new(demand.xcd, demand.iod, demand.hbm),
        compute_utilization: (a.compute_utilization + b.compute_utilization).min(1.0),
        flops: a.flops + b.flops,
        hbm_bytes: a.hbm_bytes + b.hbm_bytes,
        llc_bytes: a.llc_bytes + b.llc_bytes,
        workgroups: a.workgroups.saturating_add(b.workgroups),
    };
    debug_assert!(combined.validate().is_ok());

    Ok(CoScheduleAnalysis {
        combined,
        contention,
        speedup_vs_serial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use fingrav_sim::config::MachineConfig;

    fn machine() -> MachineConfig {
        MachineConfig::default()
    }

    #[test]
    fn complementary_kernels_compose_cheaply() {
        // CB GEMM (XCD-heavy) + a mid-size MB GEMV: little overlap. (The
        // 8K GEMV saturates the IOD on its own, so it is *not* the cheap
        // partner for an IOD-using GEMM — see the contention test below.)
        let a = suite::cb_gemm(&machine(), 4096);
        let b = suite::mb_gemv(&machine(), 4096);
        let c = co_schedule(&a, &b).expect("valid");
        assert!(c.contention < 1.3, "contention {}", c.contention);
        assert!(c.speedup_vs_serial > 1.0);
        assert!(c.combined.activity.xcd >= a.activity.xcd);
        assert!(c.combined.activity.iod >= b.activity.iod);
    }

    #[test]
    fn conflicting_kernels_contend() {
        // Two copies of the same XCD-saturating GEMM: heavy contention.
        let a = suite::cb_gemm(&machine(), 8192);
        let c = co_schedule(&a, &a).expect("valid");
        assert!(c.contention > 1.7, "contention {}", c.contention);
        // Contention eats the concurrency benefit: 2/contention -> ~1.
        assert!(c.speedup_vs_serial < 1.2, "speedup {}", c.speedup_vs_serial);
        assert!((c.speedup_vs_serial - 2.0 / c.contention).abs() < 1e-12);
    }

    #[test]
    fn combined_activities_saturate_at_one() {
        let a = suite::cb_gemm(&machine(), 8192);
        let c = co_schedule(&a, &a).expect("valid");
        assert!(c.combined.activity.xcd <= 1.0);
        assert!(c.combined.activity.iod <= 1.0);
        assert!(c.combined.activity.hbm <= 1.0);
    }

    #[test]
    fn work_quantities_are_additive() {
        let a = suite::cb_gemm(&machine(), 4096);
        let b = suite::mb_gemv(&machine(), 4096);
        let c = co_schedule(&a, &b).expect("valid");
        assert!((c.combined.flops - (a.flops + b.flops)).abs() < 1.0);
        assert_eq!(c.combined.workgroups, a.workgroups + b.workgroups);
        assert!(c.combined.name.contains(&a.name));
        assert!(c.combined.name.contains(&b.name));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut bad = suite::cb_gemm(&machine(), 4096);
        bad.workgroups = 0;
        assert!(co_schedule(&bad, &suite::mb_gemv(&machine(), 4096)).is_err());
    }
}
