//! Comparative-analysis metrics behind the paper's Table II insights.
//!
//! These helpers quantify the observations the paper draws from FinGraV
//! profiles: which sub-component dominates a kernel's power, how power
//! scales (or fails to scale) with delivered work, and how much a kernel's
//! measured power is contaminated by whatever ran before it.

use fingrav_sim::power::{Component, ComponentPower};
use serde::{Deserialize, Serialize};

use crate::profile::PowerProfile;

/// Per-component share of a profile's mean power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentBreakdown {
    /// Mean component powers, watts.
    pub mean: ComponentPower,
}

impl ComponentBreakdown {
    /// Builds a breakdown from a profile; `None` if the profile is empty.
    pub fn from_profile(profile: &PowerProfile) -> Option<Self> {
        profile.mean_power().map(|mean| ComponentBreakdown { mean })
    }

    /// Fraction of total power drawn by `c`.
    pub fn share(&self, c: Component) -> f64 {
        let total = self.mean.total();
        if total <= 0.0 {
            0.0
        } else {
            self.mean.get(c) / total
        }
    }

    /// The component with the largest share (the paper's takeaway #3:
    /// compute-heavy kernels are XCD-dominated).
    pub fn dominant(&self) -> Component {
        Component::ALL
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.mean
                    .get(a)
                    .partial_cmp(&self.mean.get(b))
                    .expect("finite powers")
            })
            .expect("four components")
    }
}

/// A point in the power-proportionality analysis (takeaway #4): how much
/// useful work a kernel delivers per unit of component power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProportionalityPoint {
    /// Kernel label.
    pub label: String,
    /// Achieved fraction of peak compute throughput.
    pub compute_utilization: f64,
    /// Mean XCD power, watts.
    pub xcd_power_w: f64,
}

impl ProportionalityPoint {
    /// Utilization delivered per XCD watt — equal values across kernels
    /// would indicate perfect power proportionality.
    pub fn utilization_per_watt(&self) -> f64 {
        if self.xcd_power_w <= 0.0 {
            0.0
        } else {
            self.compute_utilization / self.xcd_power_w
        }
    }
}

/// Quantifies power (non-)proportionality across kernels: the ratio of the
/// best to worst utilization-per-XCD-watt. 1.0 = perfectly proportional;
/// the paper observes ~2× between CB-2K and CB-8K GEMMs.
pub fn proportionality_spread(points: &[ProportionalityPoint]) -> Option<f64> {
    let uppw: Vec<f64> = points
        .iter()
        .map(ProportionalityPoint::utilization_per_watt)
        .filter(|&x| x > 0.0)
        .collect();
    if uppw.is_empty() {
        return None;
    }
    let max = uppw.iter().cloned().fold(f64::MIN, f64::max);
    let min = uppw.iter().cloned().fold(f64::MAX, f64::min);
    Some(max / min)
}

/// Contamination of a kernel's measured power by its predecessor
/// (takeaway #5): relative difference between the kernel's power when
/// interleaved after other kernels and its isolated SSP power.
/// Positive = the predecessor inflated the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterleaveEffect {
    /// Isolated SSP mean total power, watts.
    pub isolated_w: f64,
    /// Mean total power measured when interleaved, watts.
    pub interleaved_w: f64,
}

impl InterleaveEffect {
    /// Signed relative effect `(interleaved - isolated) / isolated`.
    pub fn relative(&self) -> f64 {
        if self.isolated_w == 0.0 {
            0.0
        } else {
            (self.interleaved_w - self.isolated_w) / self.isolated_w
        }
    }

    /// True if the contamination exceeds `threshold` in magnitude — the
    /// paper's criterion for "affected by kernels preceding them".
    pub fn is_significant(&self, threshold: f64) -> bool {
        self.relative().abs() > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileKind, ProfilePoint};

    fn profile_with_power(p: ComponentPower) -> PowerProfile {
        let mut prof = PowerProfile::new("k", ProfileKind::Ssp);
        prof.push(ProfilePoint {
            run: 0,
            exec_pos: Some(0),
            toi_ns: Some(0.0),
            run_time_ns: 0.0,
            power: p,
        });
        prof
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let b = ComponentBreakdown::from_profile(&profile_with_power(ComponentPower::new(
            500.0, 100.0, 80.0, 40.0,
        )))
        .unwrap();
        let sum: f64 = Component::ALL.iter().map(|&c| b.share(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b.dominant(), Component::Xcd);
    }

    #[test]
    fn breakdown_empty_profile() {
        let prof = PowerProfile::new("k", ProfileKind::Ssp);
        assert!(ComponentBreakdown::from_profile(&prof).is_none());
    }

    #[test]
    fn iod_dominant_when_largest() {
        let b = ComponentBreakdown::from_profile(&profile_with_power(ComponentPower::new(
            50.0, 120.0, 80.0, 40.0,
        )))
        .unwrap();
        assert_eq!(b.dominant(), Component::Iod);
    }

    #[test]
    fn proportionality_spread_detects_imbalance() {
        let points = vec![
            ProportionalityPoint {
                label: "CB-8K".into(),
                compute_utilization: 0.62,
                xcd_power_w: 500.0,
            },
            ProportionalityPoint {
                label: "CB-2K".into(),
                compute_utilization: 0.28,
                xcd_power_w: 470.0,
            },
        ];
        let spread = proportionality_spread(&points).unwrap();
        assert!(spread > 1.8 && spread < 2.6, "spread {spread}");
    }

    #[test]
    fn proportionality_spread_perfect() {
        let points = vec![
            ProportionalityPoint {
                label: "a".into(),
                compute_utilization: 0.5,
                xcd_power_w: 100.0,
            },
            ProportionalityPoint {
                label: "b".into(),
                compute_utilization: 0.25,
                xcd_power_w: 50.0,
            },
        ];
        assert!((proportionality_spread(&points).unwrap() - 1.0).abs() < 1e-12);
        assert!(proportionality_spread(&[]).is_none());
    }

    #[test]
    fn interleave_effect_signs() {
        let inflated = InterleaveEffect {
            isolated_w: 400.0,
            interleaved_w: 500.0,
        };
        assert!((inflated.relative() - 0.25).abs() < 1e-12);
        assert!(inflated.is_significant(0.1));

        let deflated = InterleaveEffect {
            isolated_w: 400.0,
            interleaved_w: 340.0,
        };
        assert!(deflated.relative() < 0.0);
        assert!(deflated.is_significant(0.1));

        let unaffected = InterleaveEffect {
            isolated_w: 700.0,
            interleaved_w: 710.0,
        };
        assert!(!unaffected.is_significant(0.1));
    }
}
