//! Methodology error types.

use std::error::Error;
use std::fmt;

use fingrav_sim::SimError;

/// Errors produced by the FinGraV methodology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MethodologyError {
    /// The profiled device rejected an operation.
    Backend(String),
    /// Not enough timestamp reads to synchronize CPU and GPU time.
    InsufficientSyncData,
    /// No executions survived binning (margin too tight or data degenerate).
    NoGoldenRuns,
    /// A probe run produced no usable measurements.
    EmptyProbe,
    /// Configuration inconsistency.
    InvalidConfig(String),
    /// A script session was cancelled mid-measurement (cooperative abort
    /// via an [`fingrav_sim::session::AbortHandle`] or a campaign
    /// cancellation token); partial measurements are discarded because the
    /// methodology's statistics need complete runs.
    Aborted,
    /// A campaign checkpoint could not be written, read, or trusted (see
    /// [`crate::checkpoint::CheckpointError`] for the typed causes; this
    /// variant carries its rendered message through executor APIs).
    Checkpoint(String),
    /// A cross-node campaign connection failed or spoke the protocol
    /// wrong (see [`crate::transport::TransportError`] for the typed
    /// causes; this variant carries its rendered message through the
    /// coordinator/worker APIs).
    Transport(String),
}

impl fmt::Display for MethodologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodologyError::Backend(msg) => write!(f, "backend error: {msg}"),
            MethodologyError::InsufficientSyncData => {
                f.write_str("insufficient timestamp reads for CPU-GPU sync")
            }
            MethodologyError::NoGoldenRuns => {
                f.write_str("no golden runs survived execution-time binning")
            }
            MethodologyError::EmptyProbe => f.write_str("probe run produced no measurements"),
            MethodologyError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MethodologyError::Aborted => f.write_str("measurement aborted mid-script"),
            MethodologyError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            MethodologyError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl Error for MethodologyError {}

impl From<SimError> for MethodologyError {
    fn from(e: SimError) -> Self {
        MethodologyError::Backend(e.to_string())
    }
}

/// Convenience result alias.
pub type MethodologyResult<T> = Result<T, MethodologyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(format!("{}", MethodologyError::Backend("x".into())).contains('x'));
        assert!(!format!("{}", MethodologyError::InsufficientSyncData).is_empty());
        assert!(!format!("{}", MethodologyError::NoGoldenRuns).is_empty());
        assert!(!format!("{}", MethodologyError::EmptyProbe).is_empty());
        assert!(format!("{}", MethodologyError::InvalidConfig("y".into())).contains('y'));
        assert!(format!("{}", MethodologyError::Aborted).contains("aborted"));
        assert!(format!("{}", MethodologyError::Checkpoint("z".into())).contains('z'));
    }

    #[test]
    fn converts_sim_errors() {
        let e: MethodologyError = SimError::UnknownKernel { index: 3 }.into();
        assert!(matches!(e, MethodologyError::Backend(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<MethodologyError>();
    }
}
