//! Campaign checkpoints: the versioned `FGRVCKPT` on-disk format plus the
//! scatter/gather directory layout the sharded executor persists into.
//!
//! A campaign checkpoint makes multi-kernel campaigns *durable and
//! restartable*: every entry that finishes is written to disk the moment
//! its report exists, so a cancelled (or crashed) campaign resumes from
//! where it stopped and finishes with artifacts byte-identical to an
//! uninterrupted run — the executor's determinism guarantee extended
//! across process boundaries.
//!
//! ## On-disk layout
//!
//! ```text
//! <checkpoint-dir>/
//! ├── manifest.fgrvckpt            # CampaignManifest: digest, statuses, seeds
//! ├── shard-00/
//! │   ├── entry-0000.fgrvckpt      # EntryArtifact: full KernelPowerReport
//! │   └── entry-0002.fgrvckpt      #   (profiles embedded as FGRVPROF blocks)
//! └── shard-01/
//!     └── entry-0001.fgrvckpt
//! ```
//!
//! Entries are planned round-robin onto shards (`index % workers`); a
//! resume re-plans only the unfinished entries, so the same entry can
//! legitimately appear under two shards after a crash between the entry
//! write and the manifest update — [`gather`] detects such duplicates and
//! verifies them against each other with [`ProfileStore::diff`], naming
//! the shards and the first differing column if they ever disagree.
//!
//! ## The `FGRVCKPT` format
//!
//! Every checkpoint file follows the `FGRVPROF` codec conventions
//! established by [`crate::store`]: an 8-byte magic, a `u32` version, a
//! section tag, then a little-endian payload; decoding surfaces
//! [`CheckpointError::BadMagic`] / [`CheckpointError::UnsupportedVersion`]
//! / [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`] —
//! never a panic — and bounds every allocation before trusting a length
//! field, so a corrupt header cannot drive memory commitment.
//!
//! Three section kinds exist:
//!
//! * **Manifest** ([`CampaignManifest`]) — the campaign plan: config
//!   digest, worker count, and per-entry label/seed/status/shard rows;
//! * **Entry artifact** ([`EntryArtifact`]) — one finished entry's
//!   [`KernelPowerReport`], its stitched profiles embedded in their
//!   native `FGRVPROF` binary form via [`ProfileStore::write_to`];
//! * **Stage state** ([`StageCheckpoint`]) — the mid-entry boundary: the
//!   typed pipeline artifacts ([`TimingArtifact`], [`SspArtifact`],
//!   [`RunCollection`]) persisted between stages, for runners that want
//!   to checkpoint *inside* an entry.
//!
//! # Example: manifest round trip and damage rejection
//!
//! ```
//! use fingrav_core::backend::SimulationFactory;
//! use fingrav_core::campaign::Campaign;
//! use fingrav_core::checkpoint::{CampaignManifest, CheckpointError, EntryStatus};
//! use fingrav_core::runner::RunnerConfig;
//! use fingrav_sim::config::SimConfig;
//! use fingrav_workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = SimConfig::default().machine.clone();
//! let mut campaign = Campaign::new(RunnerConfig::quick(6));
//! campaign.add_all(suite::gemm_suite(&machine).into_iter().take(3).map(|k| k.desc));
//! let factory = SimulationFactory::new(SimConfig::default(), 42);
//!
//! // Plan a fresh checkpoint: every entry pending, sharded round-robin.
//! let mut manifest = CampaignManifest::plan(&campaign, &factory, 2);
//! assert_eq!(manifest.entries[2].shard, 0);
//! manifest.entries[0].status = EntryStatus::Done;
//!
//! // The FGRVCKPT encoding round-trips exactly and knows its campaign.
//! let bytes = manifest.to_bytes();
//! let restored = CampaignManifest::from_bytes(&bytes)?;
//! assert_eq!(restored, manifest);
//! assert_eq!(restored.rerun_indices(), vec![1, 2]);
//! restored.verify_against(&campaign)?;
//!
//! // Damage decodes to a typed error, never a panic or a wrong value.
//! let mut damaged = bytes.clone();
//! damaged[0] ^= 0xff;
//! assert!(matches!(
//!     CampaignManifest::from_bytes(&damaged),
//!     Err(CheckpointError::BadMagic(_))
//! ));
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use fingrav_sim::kernel::KernelHandle;
use fingrav_sim::power::ComponentPower;
use fingrav_sim::script::HostOp;
use fingrav_sim::session::TelemetryEvent;
use fingrav_sim::telemetry::PowerLog;
use fingrav_sim::time::{CpuTime, GpuTicks, SimDuration, SimTime};
use fingrav_sim::trace::{GroundTruth, RunTrace, TimedExecution, TimestampRead, TrueExecution};

use crate::binning::{Bin, Binning};
use crate::campaign::{Campaign, CampaignReport};
use crate::cover;
use crate::error::MethodologyError;
use crate::guidance::GuidanceEntry;
use crate::mmap::MappedProfile;
use crate::profile::{PowerProfile, ProfileKind};
use crate::runner::{CollectedRun, KernelPowerReport};
use crate::stages::{RunCollection, SspArtifact, StitchedProfiles, TimingArtifact};
use crate::store::{ProfileStore, ProfileStoreView, StoreCodecError};
use crate::sync::{ReadDelayCalibration, TimeSync};

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"FGRVCKPT";
/// Current checkpoint-format version.
pub const CKPT_VERSION: u32 = 1;

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.fgrvckpt";

/// Section tags distinguishing the payload kinds of a checkpoint file.
const SECTION_MANIFEST: u32 = 1;
const SECTION_ENTRY: u32 = 2;
const SECTION_STAGE: u32 = 3;

/// Hard ceiling on any decoded collection length: 2^32 elements of the
/// smallest element would already be a multi-GiB checkpoint; anything
/// larger is a corrupt length field, not data.
const MAX_SEQ_LEN: usize = u32::MAX as usize;
/// Elements of capacity committed ahead of decoding a sequence. Bounds the
/// memory a corrupt length field can commit before the first short read
/// surfaces as `Truncated` (mirrors the `FGRVPROF` chunked column reads).
const PREALLOC_ELEMS: usize = 64 * 1024;
/// Ceiling on decoded string lengths (labels are tens of bytes).
const MAX_STR_LEN: usize = 1 << 20;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Failure writing, reading, or trusting a campaign checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The reader or writer failed below the format layer.
    Io(io::Error),
    /// The stream does not start with [`CKPT_MAGIC`].
    BadMagic([u8; 8]),
    /// The stream's format version is not [`CKPT_VERSION`].
    UnsupportedVersion(u32),
    /// The stream ended inside the named block.
    Truncated(&'static str),
    /// The stream decoded but violates a format invariant.
    Corrupt(String),
    /// An embedded `FGRVPROF` profile block failed to decode.
    Store(StoreCodecError),
    /// The checkpoint was taken under a different campaign configuration
    /// (config, entry list, or per-entry overrides changed); resuming it
    /// would silently mix incompatible measurements.
    ConfigMismatch {
        /// Digest of the campaign being resumed.
        expected: u64,
        /// Digest recorded in the manifest.
        found: u64,
    },
    /// The checkpoint is valid but does not cover every campaign entry
    /// (gathering requires a complete campaign; resume the checkpoint
    /// first).
    Incomplete {
        /// Campaign indices with no persisted report.
        missing: Vec<usize>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error on checkpoint: {e}"),
            CheckpointError::BadMagic(m) => {
                write!(f, "not a campaign checkpoint (magic {m:02x?})")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {CKPT_VERSION})"
                )
            }
            CheckpointError::Truncated(block) => {
                write!(f, "checkpoint truncated inside the {block} block")
            }
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::Store(e) => write!(f, "embedded profile store: {e}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different campaign \
                 (config digest {found:016x}, campaign digests to {expected:016x})"
            ),
            CheckpointError::Incomplete { missing } => write!(
                f,
                "checkpoint covers only part of the campaign ({} entries missing: {:?})",
                missing.len(),
                missing
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<StoreCodecError> for CheckpointError {
    fn from(e: StoreCodecError) -> Self {
        // A truncation inside an embedded FGRVPROF block is a truncation
        // of the checkpoint stream itself.
        match e {
            StoreCodecError::Truncated(block) => CheckpointError::Truncated(block),
            StoreCodecError::Io(io) if io.kind() == io::ErrorKind::UnexpectedEof => {
                CheckpointError::Truncated("embedded profile store")
            }
            other => CheckpointError::Store(other),
        }
    }
}

impl From<CheckpointError> for MethodologyError {
    fn from(e: CheckpointError) -> Self {
        MethodologyError::Checkpoint(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Low-level codec plumbing
// ---------------------------------------------------------------------

pub(crate) fn read_exact_ck<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    block: &'static str,
) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated(block)
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// Decodes a `u64` count/index and converts it to `usize`, surfacing
/// values that do not fit the host address width as typed corruption
/// instead of silently truncating (a 32-bit host reading a 64-bit
/// producer's checkpoint).
fn decode_usize<R: Read>(r: &mut R) -> Result<usize, CheckpointError> {
    let v = u64::decode(r)?;
    usize::try_from(v).map_err(|_| {
        cover::hit(cover::CKPT_COUNT_OVERFLOW);
        CheckpointError::Corrupt(format!("count {v} does not fit the host address width"))
    })
}

/// Decodes a `u64` count/index and additionally enforces the
/// format-wide [`MAX_SEQ_LEN`] ceiling: every count or index travelling
/// in a checkpoint refers to a sequence the format already bounds, so a
/// larger value is a corrupt field — rejecting it here keeps a hostile
/// stream from planting absurd counts that downstream code would loop
/// or allocate over.
fn decode_count<R: Read>(r: &mut R, what: &'static str) -> Result<usize, CheckpointError> {
    let v = decode_usize(r)?;
    if v > MAX_SEQ_LEN {
        cover::hit(cover::CKPT_COUNT_IMPLAUSIBLE);
        return Err(CheckpointError::Corrupt(format!("implausible {what} {v}")));
    }
    Ok(v)
}

/// Binary little-endian encode/decode of one checkpoint field.
///
/// Floats travel as raw bit patterns, so every round trip is bit-exact —
/// the property the resume guarantee ("byte-identical to an uninterrupted
/// run") reduces to. The same field encodings double as the payload
/// grammar of the [`crate::transport`] wire frames, which is why the
/// trait is crate-visible: the on-disk format *is* the wire format.
pub(crate) trait Codec: Sized {
    /// Static block label used in [`CheckpointError::Truncated`].
    const BLOCK: &'static str;
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()>;
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError>;
}

macro_rules! int_codec {
    ($t:ty, $label:literal) => {
        impl Codec for $t {
            const BLOCK: &'static str = $label;
            fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
                w.write_all(&self.to_le_bytes())
            }
            fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                read_exact_ck(r, &mut b, Self::BLOCK)?;
                Ok(<$t>::from_le_bytes(b))
            }
        }
    };
}

int_codec!(u8, "u8 field");
int_codec!(u32, "u32 field");
int_codec!(u64, "u64 field");

impl Codec for f64 {
    const BLOCK: &'static str = "f64 field";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bits().to_le_bytes())
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        let mut b = [0u8; 8];
        read_exact_ck(r, &mut b, Self::BLOCK)?;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }
}

impl Codec for bool {
    const BLOCK: &'static str = "bool field";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&[u8::from(*self)])
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => {
                cover::hit(cover::CKPT_BOOL_BAD);
                Err(CheckpointError::Corrupt(format!(
                    "bool field holds {other} (expected 0 or 1)"
                )))
            }
        }
    }
}

impl Codec for String {
    const BLOCK: &'static str = "string";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        (self.len() as u64).encode(w)?;
        w.write_all(self.as_bytes())
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        let len = decode_usize(r)?;
        if len > MAX_STR_LEN {
            cover::hit(cover::CKPT_STR_IMPLAUSIBLE);
            return Err(CheckpointError::Corrupt(format!(
                "implausible string length {len}"
            )));
        }
        let mut buf = vec![0u8; len];
        read_exact_ck(r, &mut buf, Self::BLOCK)?;
        String::from_utf8(buf).map_err(|_| {
            cover::hit(cover::CKPT_STR_BAD_UTF8);
            CheckpointError::Corrupt("string is not valid UTF-8".into())
        })
    }
}

impl<T: Codec> Codec for Option<T> {
    const BLOCK: &'static str = "option tag";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            None => 0u8.encode(w),
            Some(v) => {
                1u8.encode(w)?;
                v.encode(w)
            }
        }
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => {
                cover::hit(cover::CKPT_OPT_BAD);
                Err(CheckpointError::Corrupt(format!(
                    "option tag holds {other} (expected 0 or 1)"
                )))
            }
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    const BLOCK: &'static str = "sequence length";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        (self.len() as u64).encode(w)?;
        for v in self {
            v.encode(w)?;
        }
        Ok(())
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        let len = decode_usize(r)?;
        if len > MAX_SEQ_LEN {
            cover::hit(cover::CKPT_SEQ_IMPLAUSIBLE);
            return Err(CheckpointError::Corrupt(format!(
                "implausible sequence length {len}"
            )));
        }
        // Capacity is committed ahead only up to a chunk: a corrupt length
        // cannot drive allocation past what the stream actually delivers.
        let mut out = Vec::with_capacity(len.min(PREALLOC_ELEMS));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    const BLOCK: &'static str = "pair";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.0.encode(w)?;
        self.1.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------
// Domain-type codecs (simulator observables)
// ---------------------------------------------------------------------

macro_rules! u64_newtype_codec {
    ($t:ty, $label:literal, $get:expr, $make:expr) => {
        impl Codec for $t {
            const BLOCK: &'static str = $label;
            fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
                #[allow(clippy::redundant_closure_call)] // macro-passed closure, called once
                ($get)(self).encode(w)
            }
            fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
                #[allow(clippy::redundant_closure_call)] // macro-passed closure, called once
                Ok(($make)(u64::decode(r)?))
            }
        }
    };
}

u64_newtype_codec!(CpuTime, "cpu time", |t: &CpuTime| t.as_nanos(), |ns| {
    CpuTime::from_nanos(ns)
});
u64_newtype_codec!(GpuTicks, "gpu ticks", |t: &GpuTicks| t.as_raw(), |v| {
    GpuTicks::from_raw(v)
});
u64_newtype_codec!(SimTime, "sim time", |t: &SimTime| t.as_nanos(), |ns| {
    SimTime::from_nanos(ns)
});
u64_newtype_codec!(
    SimDuration,
    "sim duration",
    |t: &SimDuration| t.as_nanos(),
    SimDuration::from_nanos
);
impl Codec for KernelHandle {
    const BLOCK: &'static str = "kernel handle";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        (self.index() as u64).encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        // A handle indexes the campaign's kernel table, which is itself
        // a decoded sequence bounded by `MAX_SEQ_LEN` — so a larger (or
        // non-address-width) value is corruption, not data. Checked
        // here instead of `as usize` so a 64-bit producer's handle can
        // never silently truncate on a 32-bit consumer.
        let v = u64::decode(r)?;
        let index = usize::try_from(v)
            .ok()
            .filter(|&i| i <= MAX_SEQ_LEN)
            .ok_or_else(|| {
                cover::hit(cover::CKPT_HANDLE_IMPLAUSIBLE);
                CheckpointError::Corrupt(format!("implausible kernel-handle index {v}"))
            })?;
        Ok(KernelHandle::from_index(index))
    }
}

impl Codec for ComponentPower {
    const BLOCK: &'static str = "component power";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for v in [self.xcd, self.iod, self.hbm, self.rest] {
            v.encode(w)?;
        }
        Ok(())
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(ComponentPower::new(
            f64::decode(r)?,
            f64::decode(r)?,
            f64::decode(r)?,
            f64::decode(r)?,
        ))
    }
}

impl Codec for PowerLog {
    const BLOCK: &'static str = "power log";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.ticks.encode(w)?;
        self.avg.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(PowerLog {
            ticks: GpuTicks::decode(r)?,
            avg: ComponentPower::decode(r)?,
        })
    }
}

impl Codec for TimedExecution {
    const BLOCK: &'static str = "timed execution";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.kernel.encode(w)?;
        self.index.encode(w)?;
        self.cpu_start.encode(w)?;
        self.cpu_end.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(TimedExecution {
            kernel: KernelHandle::decode(r)?,
            index: u32::decode(r)?,
            cpu_start: CpuTime::decode(r)?,
            cpu_end: CpuTime::decode(r)?,
        })
    }
}

impl Codec for TimestampRead {
    const BLOCK: &'static str = "timestamp read";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.cpu_before.encode(w)?;
        self.cpu_after.encode(w)?;
        self.ticks.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(TimestampRead {
            cpu_before: CpuTime::decode(r)?,
            cpu_after: CpuTime::decode(r)?,
            ticks: GpuTicks::decode(r)?,
        })
    }
}

impl Codec for TrueExecution {
    const BLOCK: &'static str = "true execution";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.kernel.encode(w)?;
        self.start.encode(w)?;
        self.end.encode(w)?;
        self.index.encode(w)?;
        self.execs_since_cold.encode(w)?;
        self.outlier.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(TrueExecution {
            kernel: KernelHandle::decode(r)?,
            start: SimTime::decode(r)?,
            end: SimTime::decode(r)?,
            index: u32::decode(r)?,
            execs_since_cold: u32::decode(r)?,
            outlier: bool::decode(r)?,
        })
    }
}

impl Codec for GroundTruth {
    const BLOCK: &'static str = "ground truth";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.executions.encode(w)?;
        self.freq_changes.encode(w)?;
        self.final_temp_c.encode(w)?;
        self.instant_power.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(GroundTruth {
            executions: Vec::decode(r)?,
            freq_changes: Vec::decode(r)?,
            final_temp_c: f64::decode(r)?,
            instant_power: Vec::decode(r)?,
        })
    }
}

impl Codec for RunTrace {
    const BLOCK: &'static str = "run trace";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.executions.encode(w)?;
        self.timestamp_reads.encode(w)?;
        self.power_logs.encode(w)?;
        self.coarse_logs.encode(w)?;
        self.aborted.encode(w)?;
        self.truth.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(RunTrace {
            executions: Vec::decode(r)?,
            timestamp_reads: Vec::decode(r)?,
            power_logs: Vec::decode(r)?,
            coarse_logs: Vec::decode(r)?,
            aborted: bool::decode(r)?,
            truth: GroundTruth::decode(r)?,
        })
    }
}

impl Codec for HostOp {
    const BLOCK: &'static str = "host op";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            HostOp::Sleep(d) => {
                0u8.encode(w)?;
                d.encode(w)
            }
            HostOp::SleepUniform { min, max } => {
                1u8.encode(w)?;
                min.encode(w)?;
                max.encode(w)
            }
            HostOp::ReadGpuTimestamp => 2u8.encode(w),
            HostOp::LaunchTimed { kernel, executions } => {
                3u8.encode(w)?;
                kernel.encode(w)?;
                executions.encode(w)
            }
            HostOp::StartPowerLogger => 4u8.encode(w),
            HostOp::StopPowerLogger => 5u8.encode(w),
            HostOp::StartCoarseLogger => 6u8.encode(w),
            HostOp::StopCoarseLogger => 7u8.encode(w),
            HostOp::BeginRun => 8u8.encode(w),
        }
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(HostOp::Sleep(SimDuration::decode(r)?)),
            1 => Ok(HostOp::SleepUniform {
                min: SimDuration::decode(r)?,
                max: SimDuration::decode(r)?,
            }),
            2 => Ok(HostOp::ReadGpuTimestamp),
            3 => Ok(HostOp::LaunchTimed {
                kernel: KernelHandle::decode(r)?,
                executions: u32::decode(r)?,
            }),
            4 => Ok(HostOp::StartPowerLogger),
            5 => Ok(HostOp::StopPowerLogger),
            6 => Ok(HostOp::StartCoarseLogger),
            7 => Ok(HostOp::StopCoarseLogger),
            8 => Ok(HostOp::BeginRun),
            other => {
                cover::hit(cover::CKPT_HOSTOP_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown host-op tag {other}"
                )))
            }
        }
    }
}

impl Codec for TelemetryEvent {
    const BLOCK: &'static str = "telemetry event";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            TelemetryEvent::ScriptStarted { ops } => {
                0u8.encode(w)?;
                (*ops as u64).encode(w)
            }
            TelemetryEvent::OpStarted { index, op } => {
                1u8.encode(w)?;
                (*index as u64).encode(w)?;
                op.encode(w)
            }
            TelemetryEvent::OpFinished { index } => {
                2u8.encode(w)?;
                (*index as u64).encode(w)
            }
            TelemetryEvent::PowerLogEmitted { coarse, log } => {
                3u8.encode(w)?;
                coarse.encode(w)?;
                log.encode(w)
            }
            TelemetryEvent::LaunchCompleted { execution } => {
                4u8.encode(w)?;
                execution.encode(w)
            }
            TelemetryEvent::GpuTimestampRead { read } => {
                5u8.encode(w)?;
                read.encode(w)
            }
            TelemetryEvent::ScriptDone { aborted } => {
                6u8.encode(w)?;
                aborted.encode(w)
            }
            // `TelemetryEvent` is non-exhaustive upstream: a variant this
            // version has no tag for cannot travel, and silently dropping
            // it would break the per-slot event-stream determinism the
            // wire inherits — surface the gap as an encode error instead.
            other => Err(io::Error::other(format!(
                "telemetry event {other:?} has no wire encoding in this version"
            ))),
        }
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(TelemetryEvent::ScriptStarted {
                ops: decode_count(r, "script op count")?,
            }),
            1 => Ok(TelemetryEvent::OpStarted {
                index: decode_count(r, "script op index")?,
                op: HostOp::decode(r)?,
            }),
            2 => Ok(TelemetryEvent::OpFinished {
                index: decode_count(r, "script op index")?,
            }),
            3 => Ok(TelemetryEvent::PowerLogEmitted {
                coarse: bool::decode(r)?,
                log: PowerLog::decode(r)?,
            }),
            4 => Ok(TelemetryEvent::LaunchCompleted {
                execution: TimedExecution::decode(r)?,
            }),
            5 => Ok(TelemetryEvent::GpuTimestampRead {
                read: TimestampRead::decode(r)?,
            }),
            6 => Ok(TelemetryEvent::ScriptDone {
                aborted: bool::decode(r)?,
            }),
            other => {
                cover::hit(cover::CKPT_EVENT_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown telemetry-event tag {other}"
                )))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Domain-type codecs (methodology artifacts)
// ---------------------------------------------------------------------

impl Codec for TimeSync {
    const BLOCK: &'static str = "time sync";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let (anchor_cpu_ns, anchor_ticks, ns_per_tick) = self.to_parts();
        anchor_cpu_ns.encode(w)?;
        anchor_ticks.encode(w)?;
        ns_per_tick.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(TimeSync::from_parts(
            f64::decode(r)?,
            f64::decode(r)?,
            f64::decode(r)?,
        ))
    }
}

impl Codec for ReadDelayCalibration {
    const BLOCK: &'static str = "read-delay calibration";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.median_rtt_ns.encode(w)?;
        self.assumed_sample_frac.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(ReadDelayCalibration {
            median_rtt_ns: u64::decode(r)?,
            assumed_sample_frac: f64::decode(r)?,
        })
    }
}

impl Codec for GuidanceEntry {
    const BLOCK: &'static str = "guidance entry";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.min_exec.encode(w)?;
        self.max_exec.encode(w)?;
        self.runs.encode(w)?;
        self.loi_interval.encode(w)?;
        self.margin_frac.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(GuidanceEntry {
            min_exec: SimDuration::decode(r)?,
            max_exec: Option::decode(r)?,
            runs: u32::decode(r)?,
            loi_interval: SimDuration::decode(r)?,
            margin_frac: f64::decode(r)?,
        })
    }
}

impl Codec for TimingArtifact {
    const BLOCK: &'static str = "timing artifact";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.sse_index.encode(w)?;
        self.exec_time_ns.encode(w)?;
        self.guidance.encode(w)?;
        self.runs.encode(w)?;
        self.margin_frac.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(TimingArtifact {
            sse_index: u32::decode(r)?,
            exec_time_ns: u64::decode(r)?,
            guidance: GuidanceEntry::decode(r)?,
            runs: u32::decode(r)?,
            margin_frac: f64::decode(r)?,
        })
    }
}

impl Codec for SspArtifact {
    const BLOCK: &'static str = "ssp artifact";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.ssp_index.encode(w)?;
        self.throttle_detected.encode(w)?;
        self.executions_per_run.encode(w)?;
        self.loi_target.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(SspArtifact {
            ssp_index: u32::decode(r)?,
            throttle_detected: bool::decode(r)?,
            executions_per_run: u32::decode(r)?,
            loi_target: u32::decode(r)?,
        })
    }
}

impl Codec for Bin {
    const BLOCK: &'static str = "bin";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.low_ns.encode(w)?;
        self.high_ns.encode(w)?;
        let members: Vec<u64> = self.members.iter().map(|&m| m as u64).collect();
        members.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        let low_ns = u64::decode(r)?;
        let high_ns = u64::decode(r)?;
        let raw = Vec::<u64>::decode(r)?;
        // Members index the entry's run list, itself a `MAX_SEQ_LEN`-
        // bounded sequence; convert checked instead of `as usize` so a
        // wide index can neither truncate on 32-bit hosts nor smuggle
        // an absurd run number past the decoder.
        let mut members = Vec::with_capacity(raw.len());
        for m in raw {
            let index = usize::try_from(m)
                .ok()
                .filter(|&i| i <= MAX_SEQ_LEN)
                .ok_or_else(|| {
                    cover::hit(cover::CKPT_BIN_BAD_MEMBER);
                    CheckpointError::Corrupt(format!("implausible bin member index {m}"))
                })?;
            members.push(index);
        }
        Ok(Bin {
            low_ns,
            high_ns,
            members,
        })
    }
}

impl Codec for Binning {
    const BLOCK: &'static str = "binning";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.bins.encode(w)?;
        (self.golden as u64).encode(w)?;
        self.margin_frac.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        let bins: Vec<Bin> = Vec::decode(r)?;
        let golden = decode_usize(r)?;
        // A valid binning always holds at least one bin (the golden one),
        // so an empty bin list is rejected here too — `golden_bin()`
        // indexes `bins[golden]` and must never panic on decoded data.
        if golden >= bins.len() {
            cover::hit(cover::CKPT_BINNING_BAD_GOLDEN);
            return Err(CheckpointError::Corrupt(format!(
                "golden-bin index {golden} out of range for {} bins",
                bins.len()
            )));
        }
        Ok(Binning {
            bins,
            golden,
            margin_frac: f64::decode(r)?,
        })
    }
}

impl Codec for ProfileKind {
    const BLOCK: &'static str = "profile kind";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            ProfileKind::Run => 0u8.encode(w),
            ProfileKind::Sse => 1u8.encode(w),
            ProfileKind::Ssp => 2u8.encode(w),
            ProfileKind::Outlier => 3u8.encode(w),
            ProfileKind::Custom(s) => {
                4u8.encode(w)?;
                s.encode(w)
            }
        }
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(ProfileKind::Run),
            1 => Ok(ProfileKind::Sse),
            2 => Ok(ProfileKind::Ssp),
            3 => Ok(ProfileKind::Outlier),
            4 => Ok(ProfileKind::Custom(String::decode(r)?)),
            other => {
                cover::hit(cover::CKPT_KIND_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown profile-kind tag {other}"
                )))
            }
        }
    }
}

impl Codec for PowerProfile {
    const BLOCK: &'static str = "power profile";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.label.encode(w)?;
        self.kind.encode(w)?;
        // Profiles embed in their native FGRVPROF binary form, so the
        // persisted bytes are exactly what `ProfileStore::write_to` emits.
        self.store.write_to(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(PowerProfile {
            label: String::decode(r)?,
            kind: ProfileKind::decode(r)?,
            store: ProfileStore::read_from(r)?,
        })
    }
}

impl Codec for CollectedRun {
    const BLOCK: &'static str = "collected run";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.trace.encode(w)?;
        self.sync.encode(w)?;
        self.steady_median_ns.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(CollectedRun {
            trace: RunTrace::decode(r)?,
            sync: TimeSync::decode(r)?,
            steady_median_ns: u64::decode(r)?,
        })
    }
}

impl Codec for StitchedProfiles {
    const BLOCK: &'static str = "stitched profiles";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.run.encode(w)?;
        self.sse.encode(w)?;
        self.ssp.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(StitchedProfiles {
            run: PowerProfile::decode(r)?,
            sse: PowerProfile::decode(r)?,
            ssp: PowerProfile::decode(r)?,
        })
    }
}

impl Codec for RunCollection {
    const BLOCK: &'static str = "run collection";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.collected.encode(w)?;
        self.binning.encode(w)?;
        self.profiles.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(RunCollection {
            collected: Vec::decode(r)?,
            binning: Binning::decode(r)?,
            profiles: StitchedProfiles::decode(r)?,
        })
    }
}

impl Codec for KernelPowerReport {
    const BLOCK: &'static str = "kernel power report";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.label.encode(w)?;
        self.exec_time_ns.encode(w)?;
        self.guidance.encode(w)?;
        self.margin_frac.encode(w)?;
        self.sse_index.encode(w)?;
        self.ssp_index.encode(w)?;
        self.executions_per_run.encode(w)?;
        self.runs_executed.encode(w)?;
        self.golden_runs.encode(w)?;
        self.throttle_detected.encode(w)?;
        self.read_delay_ns.encode(w)?;
        self.estimated_drift_ppm.encode(w)?;
        self.run_profile.encode(w)?;
        self.sse_profile.encode(w)?;
        self.ssp_profile.encode(w)?;
        self.sse_mean_total_w.encode(w)?;
        self.ssp_mean_total_w.encode(w)?;
        self.sse_vs_ssp_error.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(KernelPowerReport {
            label: String::decode(r)?,
            exec_time_ns: u64::decode(r)?,
            guidance: GuidanceEntry::decode(r)?,
            margin_frac: f64::decode(r)?,
            sse_index: u32::decode(r)?,
            ssp_index: u32::decode(r)?,
            executions_per_run: u32::decode(r)?,
            runs_executed: u32::decode(r)?,
            golden_runs: u32::decode(r)?,
            throttle_detected: bool::decode(r)?,
            read_delay_ns: f64::decode(r)?,
            estimated_drift_ppm: Option::decode(r)?,
            run_profile: PowerProfile::decode(r)?,
            sse_profile: PowerProfile::decode(r)?,
            ssp_profile: PowerProfile::decode(r)?,
            sse_mean_total_w: Option::decode(r)?,
            ssp_mean_total_w: Option::decode(r)?,
            sse_vs_ssp_error: Option::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// File headers
// ---------------------------------------------------------------------

fn write_header<W: Write>(w: &mut W, section: u32) -> io::Result<()> {
    w.write_all(&CKPT_MAGIC)?;
    w.write_all(&CKPT_VERSION.to_le_bytes())?;
    w.write_all(&section.to_le_bytes())
}

fn read_header<R: Read>(r: &mut R, expected_section: u32) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 8];
    read_exact_ck(r, &mut magic, "magic")?;
    if magic != CKPT_MAGIC {
        cover::hit(cover::CKPT_BAD_MAGIC);
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = u32::decode(r)?;
    if version != CKPT_VERSION {
        cover::hit(cover::CKPT_BAD_VERSION);
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let section = u32::decode(r)?;
    if section != expected_section {
        cover::hit(cover::CKPT_BAD_SECTION);
        return Err(CheckpointError::Corrupt(format!(
            "section tag {section} where {expected_section} was expected"
        )));
    }
    cover::hit(cover::CKPT_HEADER_OK);
    Ok(())
}

pub(crate) fn from_bytes_with<T>(
    bytes: &[u8],
    read: impl FnOnce(&mut &[u8]) -> Result<T, CheckpointError>,
) -> Result<T, CheckpointError> {
    let mut cursor = bytes;
    let value = read(&mut cursor)?;
    if !cursor.is_empty() {
        cover::hit(cover::CKPT_TRAILING);
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes after the payload",
            cursor.len()
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Campaign digest
// ---------------------------------------------------------------------

/// Digest of a campaign's methodology-relevant identity: the default
/// [`crate::runner::RunnerConfig`], every entry's kernel descriptor, and
/// every per-entry config override, in campaign order (FNV-1a over their
/// canonical JSON). Two campaigns digest equal iff a checkpoint taken
/// under one can be resumed under the other.
pub fn campaign_digest(campaign: &Campaign) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Field separator so adjacent strings cannot alias.
        h ^= 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(&serde_json::to_string(campaign.config()).expect("runner config serializes to JSON"));
    for entry in campaign.entries() {
        mix(&serde_json::to_string(&entry.desc).expect("kernel desc serializes"));
        match &entry.config {
            Some(cfg) => mix(&serde_json::to_string(cfg).expect("entry config serializes")),
            None => mix("<campaign-default>"),
        }
    }
    h
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

/// Lifecycle state of one campaign entry inside a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// Not started (or skipped by fail-fast / cancellation).
    Pending,
    /// Finished; its [`EntryArtifact`] is on disk.
    Done,
    /// Its measurement failed with a non-abort error.
    Failed,
    /// A cancellation cut its session mid-measurement.
    Aborted,
}

impl EntryStatus {
    /// True when a resume must (re-)measure the entry.
    pub fn needs_rerun(&self) -> bool {
        !matches!(self, EntryStatus::Done)
    }
}

impl fmt::Display for EntryStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EntryStatus::Pending => "pending",
            EntryStatus::Done => "done",
            EntryStatus::Failed => "failed",
            EntryStatus::Aborted => "aborted",
        })
    }
}

impl Codec for EntryStatus {
    const BLOCK: &'static str = "entry status";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let tag: u8 = match self {
            EntryStatus::Pending => 0,
            EntryStatus::Done => 1,
            EntryStatus::Failed => 2,
            EntryStatus::Aborted => 3,
        };
        tag.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(EntryStatus::Pending),
            1 => Ok(EntryStatus::Done),
            2 => Ok(EntryStatus::Failed),
            3 => Ok(EntryStatus::Aborted),
            other => {
                cover::hit(cover::CKPT_STATUS_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown entry-status tag {other}"
                )))
            }
        }
    }
}

/// One campaign entry's row in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Kernel label (must match the campaign entry at the same index).
    pub label: String,
    /// The deterministic backend seed behind the slot, when the factory
    /// exposes one ([`crate::backend::BackendFactory::slot_seed_hint`]).
    pub seed: Option<u64>,
    /// Lifecycle state.
    pub status: EntryStatus,
    /// Shard the entry is (or was last) planned onto.
    pub shard: u32,
}

impl Codec for ManifestEntry {
    const BLOCK: &'static str = "manifest entry";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.label.encode(w)?;
        self.seed.encode(w)?;
        self.status.encode(w)?;
        self.shard.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        Ok(ManifestEntry {
            label: String::decode(r)?,
            seed: Option::decode(r)?,
            status: EntryStatus::decode(r)?,
            shard: u32::decode(r)?,
        })
    }
}

/// The campaign plan persisted at the root of a checkpoint directory:
/// which campaign this is (config digest), how it was sharded, and where
/// every entry stands.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignManifest {
    /// [`campaign_digest`] of the campaign the checkpoint belongs to.
    pub config_digest: u64,
    /// Worker count the current plan round-robins entries across.
    pub workers: u32,
    /// One row per campaign entry, in campaign order.
    pub entries: Vec<ManifestEntry>,
}

impl CampaignManifest {
    /// Plans a fresh checkpoint for `campaign`: every entry `Pending`,
    /// sharded round-robin across `workers`, seeds recorded from the
    /// factory when it exposes them.
    pub fn plan<F: crate::backend::BackendFactory>(
        campaign: &Campaign,
        factory: &F,
        workers: usize,
    ) -> Self {
        let workers = workers.max(1);
        CampaignManifest {
            config_digest: campaign_digest(campaign),
            workers: workers as u32,
            entries: campaign
                .entries()
                .iter()
                .enumerate()
                .map(|(i, e)| ManifestEntry {
                    label: e.desc.name.clone(),
                    seed: factory.slot_seed_hint(i),
                    status: EntryStatus::Pending,
                    shard: (i % workers) as u32,
                })
                .collect(),
        }
    }

    /// Plans a fresh checkpoint for a campaign whose measurements will run
    /// on *remote* workers (see [`crate::transport`]): every entry
    /// `Pending` with no seed hint (the coordinator never constructs a
    /// backend, so it has no factory to ask), sharded onto shard 0 until a
    /// worker claims it — the coordinator reassigns `shard` to the
    /// completing worker's id the moment an entry artifact arrives.
    pub fn plan_remote(campaign: &Campaign) -> Self {
        CampaignManifest {
            config_digest: campaign_digest(campaign),
            workers: 1,
            entries: campaign
                .entries()
                .iter()
                .map(|e| ManifestEntry {
                    label: e.desc.name.clone(),
                    seed: None,
                    status: EntryStatus::Pending,
                    shard: 0,
                })
                .collect(),
        }
    }

    /// Indices whose entries a resume must (re-)measure, ascending.
    pub fn rerun_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.status.needs_rerun())
            .map(|(i, _)| i)
            .collect()
    }

    /// True when every entry is `Done`.
    pub fn is_complete(&self) -> bool {
        self.entries.iter().all(|e| e.status == EntryStatus::Done)
    }

    /// Writes the manifest as an `FGRVCKPT` manifest section.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, SECTION_MANIFEST)?;
        self.config_digest.encode(w)?;
        self.workers.encode(w)?;
        self.entries.encode(w)
    }

    /// Reads a manifest previously written by [`CampaignManifest::write_to`].
    ///
    /// # Errors
    ///
    /// Returns the typed [`CheckpointError`] for foreign, newer, truncated,
    /// or invariant-violating streams.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        read_header(r, SECTION_MANIFEST)?;
        let manifest = CampaignManifest {
            config_digest: u64::decode(r)?,
            workers: u32::decode(r)?,
            entries: Vec::decode(r)?,
        };
        cover::hit(cover::CKPT_MANIFEST_OK);
        Ok(manifest)
    }

    /// Encodes to an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec writes are infallible");
        out
    }

    /// Decodes from an owned buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`CampaignManifest::read_from`], plus
    /// [`CheckpointError::Corrupt`] on trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        from_bytes_with(bytes, |r| CampaignManifest::read_from(r))
    }

    /// Checks that this manifest belongs to `campaign`: digest, entry
    /// count, and per-entry labels must all agree.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ConfigMismatch`] on a digest mismatch
    /// and [`CheckpointError::Corrupt`] on structural disagreement.
    pub fn verify_against(&self, campaign: &Campaign) -> Result<(), CheckpointError> {
        let expected = campaign_digest(campaign);
        if self.config_digest != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: self.config_digest,
            });
        }
        if self.entries.len() != campaign.len() {
            return Err(CheckpointError::Corrupt(format!(
                "manifest plans {} entries but the campaign has {}",
                self.entries.len(),
                campaign.len()
            )));
        }
        for (i, (row, entry)) in self.entries.iter().zip(campaign.entries()).enumerate() {
            if row.label != entry.desc.name {
                return Err(CheckpointError::Corrupt(format!(
                    "manifest entry {i} is labelled `{}` but the campaign says `{}`",
                    row.label, entry.desc.name
                )));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Entry artifact
// ---------------------------------------------------------------------

/// One finished campaign entry, persisted the moment its report exists.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryArtifact {
    /// Campaign index of the entry.
    pub index: u32,
    /// [`campaign_digest`] of the owning campaign, so a stray entry file
    /// can be validated without its manifest.
    pub config_digest: u64,
    /// The entry's full report, profiles included.
    pub report: KernelPowerReport,
}

impl EntryArtifact {
    /// Writes the artifact as an `FGRVCKPT` entry section.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_entry_to(w, self.index, self.config_digest, &self.report)
    }

    /// Reads an artifact previously written by [`EntryArtifact::write_to`].
    ///
    /// # Errors
    ///
    /// Returns the typed [`CheckpointError`] for foreign, newer, truncated,
    /// or invariant-violating streams.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        read_header(r, SECTION_ENTRY)?;
        let artifact = EntryArtifact {
            index: u32::decode(r)?,
            config_digest: u64::decode(r)?,
            report: KernelPowerReport::decode(r)?,
        };
        cover::hit(cover::CKPT_ENTRY_OK);
        Ok(artifact)
    }

    /// Encodes to an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec writes are infallible");
        out
    }

    /// Decodes from an owned buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`EntryArtifact::read_from`], plus [`CheckpointError::Corrupt`]
    /// on trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        from_bytes_with(bytes, |r| EntryArtifact::read_from(r))
    }
}

fn write_entry_to<W: Write>(
    w: &mut W,
    index: u32,
    config_digest: u64,
    report: &KernelPowerReport,
) -> io::Result<()> {
    write_header(w, SECTION_ENTRY)?;
    index.encode(w)?;
    config_digest.encode(w)?;
    report.encode(w)
}

/// Encodes an entry artifact straight from a borrowed report — the bytes
/// [`EntryArtifact::to_bytes`] would produce, without cloning the report
/// (and its embedded profile stores) into an owned [`EntryArtifact`]
/// first.
pub(crate) fn encode_entry_bytes(
    index: u32,
    config_digest: u64,
    report: &KernelPowerReport,
) -> Vec<u8> {
    let mut out = Vec::new();
    write_entry_to(&mut out, index, config_digest, report).expect("Vec writes are infallible");
    out
}

/// One embedded profile of an [`EntryArtifactView`]: the decoded label
/// and kind plus the borrowed store view.
#[derive(Debug, Clone)]
struct ProfileViewPart<'a> {
    label: String,
    kind: ProfileKind,
    store: ProfileStoreView<'a>,
}

impl<'a> ProfileViewPart<'a> {
    fn parse(r: &mut &'a [u8]) -> Result<ProfileViewPart<'a>, CheckpointError> {
        let label = String::decode(r)?;
        let kind = ProfileKind::decode(r)?;
        let (store, rest) = ProfileStoreView::split_prefix(r)?;
        *r = rest;
        Ok(ProfileViewPart { label, kind, store })
    }

    fn to_profile(&self) -> PowerProfile {
        PowerProfile {
            label: self.label.clone(),
            kind: self.kind.clone(),
            store: self.store.to_store(),
        }
    }
}

/// A zero-copy parse of one persisted [`EntryArtifact`]: the report's
/// scalar fields are decoded eagerly (they are tiny), but the three
/// embedded `FGRVPROF` profile blocks stay as borrowed
/// [`ProfileStoreView`]s over the source buffer — typically a
/// [`crate::mmap::MappedProfile`] of a `shard-NN/entry-NNNN.fgrvckpt`
/// file, or a transport frame payload straight off the wire — so
/// validating, diffing, or concatenating an entry never materialises its
/// per-column `Vec`s.
///
/// [`EntryArtifactView::parse`] performs exactly the validation of
/// [`EntryArtifact::from_bytes`] (same error taxonomy, including the
/// canonical-form scan of every embedded store), and
/// [`EntryArtifactView::to_artifact`] decodes to a value equal to what
/// `from_bytes` would have produced — the view is a lazier route to the
/// same artifact, not a weaker one.
#[derive(Debug, Clone)]
pub struct EntryArtifactView<'a> {
    /// Campaign index of the entry.
    pub index: u32,
    /// [`campaign_digest`] of the owning campaign, as recorded in the
    /// artifact.
    pub config_digest: u64,
    label: String,
    exec_time_ns: u64,
    guidance: GuidanceEntry,
    margin_frac: f64,
    sse_index: u32,
    ssp_index: u32,
    executions_per_run: u32,
    runs_executed: u32,
    golden_runs: u32,
    throttle_detected: bool,
    read_delay_ns: f64,
    estimated_drift_ppm: Option<f64>,
    run: ProfileViewPart<'a>,
    sse: ProfileViewPart<'a>,
    ssp: ProfileViewPart<'a>,
    sse_mean_total_w: Option<f64>,
    ssp_mean_total_w: Option<f64>,
    sse_vs_ssp_error: Option<f64>,
}

impl<'a> EntryArtifactView<'a> {
    /// Parses an encoded entry artifact, keeping the three profile stores
    /// as borrowed views over `bytes`.
    ///
    /// # Errors
    ///
    /// The same typed [`CheckpointError`]s as
    /// [`EntryArtifact::from_bytes`]: foreign magic, newer version,
    /// truncation (with the block name), invariant violations, and
    /// trailing bytes.
    pub fn parse(bytes: &'a [u8]) -> Result<EntryArtifactView<'a>, CheckpointError> {
        let mut r = bytes;
        read_header(&mut r, SECTION_ENTRY)?;
        let view = EntryArtifactView {
            index: u32::decode(&mut r)?,
            config_digest: u64::decode(&mut r)?,
            // The scalar prefix of `KernelPowerReport::decode`, field for
            // field (the equivalence is pinned by a unit test).
            label: String::decode(&mut r)?,
            exec_time_ns: u64::decode(&mut r)?,
            guidance: GuidanceEntry::decode(&mut r)?,
            margin_frac: f64::decode(&mut r)?,
            sse_index: u32::decode(&mut r)?,
            ssp_index: u32::decode(&mut r)?,
            executions_per_run: u32::decode(&mut r)?,
            runs_executed: u32::decode(&mut r)?,
            golden_runs: u32::decode(&mut r)?,
            throttle_detected: bool::decode(&mut r)?,
            read_delay_ns: f64::decode(&mut r)?,
            estimated_drift_ppm: Option::decode(&mut r)?,
            run: ProfileViewPart::parse(&mut r)?,
            sse: ProfileViewPart::parse(&mut r)?,
            ssp: ProfileViewPart::parse(&mut r)?,
            sse_mean_total_w: Option::decode(&mut r)?,
            ssp_mean_total_w: Option::decode(&mut r)?,
            sse_vs_ssp_error: Option::decode(&mut r)?,
        };
        if !r.is_empty() {
            cover::hit(cover::CKPT_TRAILING);
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after the payload",
                r.len()
            )));
        }
        cover::hit(cover::CKPT_ENTRY_VIEW_OK);
        Ok(view)
    }

    /// The report's kernel label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Borrowed view of the entry's run profile store.
    pub fn run_store(&self) -> &ProfileStoreView<'a> {
        &self.run.store
    }

    /// Borrowed view of the entry's SSE profile store.
    pub fn sse_store(&self) -> &ProfileStoreView<'a> {
        &self.sse.store
    }

    /// Borrowed view of the entry's SSP profile store.
    pub fn ssp_store(&self) -> &ProfileStoreView<'a> {
        &self.ssp.store
    }

    /// Decodes the full report, materialising the three profile stores.
    pub fn to_report(&self) -> KernelPowerReport {
        KernelPowerReport {
            label: self.label.clone(),
            exec_time_ns: self.exec_time_ns,
            guidance: self.guidance,
            margin_frac: self.margin_frac,
            sse_index: self.sse_index,
            ssp_index: self.ssp_index,
            executions_per_run: self.executions_per_run,
            runs_executed: self.runs_executed,
            golden_runs: self.golden_runs,
            throttle_detected: self.throttle_detected,
            read_delay_ns: self.read_delay_ns,
            estimated_drift_ppm: self.estimated_drift_ppm,
            run_profile: self.run.to_profile(),
            sse_profile: self.sse.to_profile(),
            ssp_profile: self.ssp.to_profile(),
            sse_mean_total_w: self.sse_mean_total_w,
            ssp_mean_total_w: self.ssp_mean_total_w,
            sse_vs_ssp_error: self.sse_vs_ssp_error,
        }
    }

    /// Decodes the whole artifact — equal to what
    /// [`EntryArtifact::from_bytes`] returns on the same bytes.
    pub fn to_artifact(&self) -> EntryArtifact {
        EntryArtifact {
            index: self.index,
            config_digest: self.config_digest,
            report: self.to_report(),
        }
    }
}

// ---------------------------------------------------------------------
// Stage checkpoint (mid-entry boundary)
// ---------------------------------------------------------------------

/// The mid-entry checkpoint boundary: every typed artifact the stage
/// pipeline has produced so far for one kernel. A runner that persists
/// this after each stage can resume *inside* an entry — rerun only the
/// stages whose artifact is absent, then [`crate::stages::StagePipeline::
/// finalize`] from the restored state.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCheckpoint {
    /// Kernel label.
    pub label: String,
    /// The read-delay calibration (always present; it is the first stage).
    pub calibration: ReadDelayCalibration,
    /// Timing-probe output, when that stage finished.
    pub timing: Option<TimingArtifact>,
    /// SSP-search output, when that stage finished.
    pub ssp: Option<SspArtifact>,
    /// Run-collection output (full traces, binning, stitched profiles),
    /// when that stage finished.
    pub collection: Option<RunCollection>,
}

impl StageCheckpoint {
    /// Writes the stage state as an `FGRVCKPT` stage section.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, SECTION_STAGE)?;
        self.label.encode(w)?;
        self.calibration.encode(w)?;
        self.timing.encode(w)?;
        self.ssp.encode(w)?;
        self.collection.encode(w)
    }

    /// Reads stage state previously written by [`StageCheckpoint::write_to`].
    ///
    /// # Errors
    ///
    /// Returns the typed [`CheckpointError`] for foreign, newer, truncated,
    /// or invariant-violating streams.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        read_header(r, SECTION_STAGE)?;
        let stage = StageCheckpoint {
            label: String::decode(r)?,
            calibration: ReadDelayCalibration::decode(r)?,
            timing: Option::decode(r)?,
            ssp: Option::decode(r)?,
            collection: Option::decode(r)?,
        };
        cover::hit(cover::CKPT_STAGE_OK);
        Ok(stage)
    }

    /// Encodes to an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec writes are infallible");
        out
    }

    /// Decodes from an owned buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`StageCheckpoint::read_from`], plus [`CheckpointError::Corrupt`]
    /// on trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        from_bytes_with(bytes, |r| StageCheckpoint::read_from(r))
    }
}

// ---------------------------------------------------------------------
// Checkpoint directory
// ---------------------------------------------------------------------

/// A campaign checkpoint directory: the manifest plus per-shard entry
/// artifacts (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    root: PathBuf,
}

impl CheckpointDir {
    /// Creates (or reuses) the directory at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(root: &Path) -> Result<Self, CheckpointError> {
        fs::create_dir_all(root)?;
        Ok(CheckpointDir {
            root: root.to_path_buf(),
        })
    }

    /// Opens an existing checkpoint directory; it must already hold a
    /// manifest.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when no manifest exists at `root`.
    pub fn open(root: &Path) -> Result<Self, CheckpointError> {
        let dir = CheckpointDir {
            root: root.to_path_buf(),
        };
        if !dir.manifest_path().is_file() {
            return Err(CheckpointError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no {MANIFEST_FILE} under {}", root.display()),
            )));
        }
        Ok(dir)
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join(MANIFEST_FILE)
    }

    /// Path of entry `index`'s artifact under shard `shard`.
    pub fn entry_path(&self, shard: u32, index: usize) -> PathBuf {
        self.root
            .join(format!("shard-{shard:02}"))
            .join(format!("entry-{index:04}.fgrvckpt"))
    }

    /// Atomically replaces the manifest (write-to-temp, then rename), so a
    /// crash mid-update leaves the previous manifest intact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_manifest(&self, manifest: &CampaignManifest) -> Result<(), CheckpointError> {
        let tmp = self.root.join(format!("{MANIFEST_FILE}.tmp"));
        let mut file = fs::File::create(&tmp)?;
        manifest.write_to(&mut file)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, self.manifest_path())?;
        Ok(())
    }

    /// Reads and decodes the manifest.
    ///
    /// # Errors
    ///
    /// Returns the typed [`CheckpointError`] on a missing, truncated, or
    /// corrupt manifest.
    pub fn read_manifest(&self) -> Result<CampaignManifest, CheckpointError> {
        CampaignManifest::from_bytes(&fs::read(self.manifest_path())?)
    }

    /// Writes entry `artifact` under shard `shard`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_entry(
        &self,
        shard: u32,
        artifact: &EntryArtifact,
    ) -> Result<PathBuf, CheckpointError> {
        self.write_entry_bytes(shard, artifact.index as usize, &artifact.to_bytes())
    }

    /// Writes an already-encoded entry artifact under shard `shard`,
    /// returning the path. This is the zero-copy persist path: a
    /// coordinator that received an entry's bytes over the wire (and
    /// validated them with [`EntryArtifactView::parse`]) stores the frame
    /// payload as-is instead of decoding and re-encoding it — the
    /// encoding is canonical, so the bytes a worker sends are exactly the
    /// bytes [`EntryArtifact::write_to`] would produce.
    ///
    /// The caller is responsible for `bytes` being a valid entry-section
    /// encoding whose artifact claims `index`; nothing is re-validated
    /// here.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_entry_bytes(
        &self,
        shard: u32,
        index: usize,
        bytes: &[u8],
    ) -> Result<PathBuf, CheckpointError> {
        let path = self.entry_path(shard, index);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-to-temp then rename, like the manifest: a crash mid-write
        // must never leave a truncated `entry-*.fgrvckpt` behind (the
        // `.tmp` suffix keeps it invisible to the entry-file scan, so a
        // half-written temp is simply ignored on resume).
        let tmp = path.with_extension("fgrvckpt.tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Reads and decodes one entry artifact file.
    ///
    /// # Errors
    ///
    /// Returns the typed [`CheckpointError`] on a missing, truncated, or
    /// corrupt file.
    pub fn read_entry(&self, path: &Path) -> Result<EntryArtifact, CheckpointError> {
        EntryArtifact::from_bytes(&fs::read(path)?)
    }

    /// Scans the shard directories for entry files, returning
    /// `(shard, index, path)` triples sorted by `(index, shard)`. Files
    /// that do not follow the naming scheme are ignored.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures.
    pub fn entry_files(&self) -> Result<Vec<(u32, usize, PathBuf)>, CheckpointError> {
        let mut out = Vec::new();
        for dir_entry in fs::read_dir(&self.root)? {
            let dir_entry = dir_entry?;
            let name = dir_entry.file_name();
            let Some(shard) = name
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            if !dir_entry.file_type()?.is_dir() {
                continue;
            }
            for file in fs::read_dir(dir_entry.path())? {
                let file = file?;
                let name = file.file_name();
                let Some(index) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("entry-"))
                    .and_then(|n| n.strip_suffix(".fgrvckpt"))
                    .and_then(|n| n.parse::<usize>().ok())
                else {
                    continue;
                };
                out.push((shard, index, file.path()));
            }
        }
        out.sort_by_key(|&(shard, index, _)| (index, shard));
        Ok(out)
    }

    /// Every persisted file of entry `index`, as `(shard, path)` pairs
    /// sorted by shard. Normally zero or one; more after a crash between
    /// an entry write and its manifest update (see [`gather`]).
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures.
    pub fn find_entry(&self, index: usize) -> Result<Vec<(u32, PathBuf)>, CheckpointError> {
        Ok(self
            .entry_files()?
            .into_iter()
            .filter(|&(_, i, _)| i == index)
            .map(|(shard, _, path)| (shard, path))
            .collect())
    }
}

// ---------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------

/// The merged result of gathering a completed checkpoint: the campaign
/// report in campaign order, plus the three campaign-wide profile stores
/// concatenated entry by entry with [`ProfileStore::extend_from`].
#[derive(Debug, Clone)]
pub struct GatheredCampaign {
    /// One report per entry, campaign order.
    pub report: CampaignReport,
    /// Every entry's run profile, concatenated in campaign order.
    pub run: ProfileStore,
    /// Every entry's SSE profile, concatenated in campaign order.
    pub sse: ProfileStore,
    /// Every entry's SSP profile, concatenated in campaign order.
    pub ssp: ProfileStore,
}

/// The three campaign-wide profile stores of [`gather_stores`]:
/// [`GatheredCampaign`] without the per-entry reports, for consumers that
/// only chart or export the concatenated profiles.
#[derive(Debug, Clone)]
pub struct GatheredStores {
    /// Every entry's run profile, concatenated in campaign order.
    pub run: ProfileStore,
    /// Every entry's SSE profile, concatenated in campaign order.
    pub sse: ProfileStore,
    /// Every entry's SSP profile, concatenated in campaign order.
    pub ssp: ProfileStore,
}

/// Verifies two persisted copies of the same entry against each other,
/// naming the shards and the first differing column on a mismatch. Also
/// used by the executor's persisting observer and the transport
/// coordinator to check a re-measured entry against a copy left by an
/// earlier run.
///
/// The encoding is canonical (a deterministic function of the artifact),
/// so byte-equal copies are identical copies — the common case costs one
/// `memcmp` over the two buffers and decodes nothing. Only when the bytes
/// differ are both copies parsed (as borrowed views) to name the first
/// differing profile column in the error.
pub(crate) fn verify_duplicate_bytes(
    index: usize,
    a_shard: u32,
    a_bytes: &[u8],
    b_shard: u32,
    b_bytes: &[u8],
) -> Result<(), CheckpointError> {
    if a_bytes == b_bytes {
        return Ok(());
    }
    let a = EntryArtifactView::parse(a_bytes)?;
    let b = EntryArtifactView::parse(b_bytes)?;
    for (what, left, right) in [
        ("run", a.run_store(), b.run_store()),
        ("sse", a.sse_store(), b.sse_store()),
        ("ssp", a.ssp_store(), b.ssp_store()),
    ] {
        let diff = left.diff(right);
        if !diff.is_identical() {
            return Err(CheckpointError::Corrupt(format!(
                "entry {index} disagrees between shard {a_shard} and shard {b_shard}: \
                 {what} profile {}",
                diff.mismatch_brief()
            )));
        }
    }
    // The bytes differ but every profile column agrees, so the
    // disagreement is in the scalar fields (or the profile labels).
    Err(CheckpointError::Corrupt(format!(
        "entry {index} disagrees between shard {a_shard} and shard {b_shard}: \
         report scalars differ (profiles are identical)"
    )))
}

/// Merges a completed checkpoint back into a [`CampaignReport`] plus
/// campaign-wide concatenated profile stores, verifying along the way:
///
/// * the manifest must belong to `campaign` (digest, labels);
/// * every entry must have a persisted artifact whose own digest and
///   label agree;
/// * when an entry was persisted by more than one shard (crash window
///   between an entry write and the manifest update), the copies are
///   compared with [`ProfileStore::diff`] and must be bit-identical — a
///   mismatch is reported with the shard ids and the first differing
///   column, not as a bare error.
///
/// # Errors
///
/// Returns [`CheckpointError::Incomplete`] naming the uncovered entries
/// when the campaign has not finished, and the other typed
/// [`CheckpointError`]s for damaged or foreign checkpoints.
pub fn gather(
    dir: &CheckpointDir,
    campaign: &Campaign,
) -> Result<GatheredCampaign, CheckpointError> {
    let (stores, reports) = gather_impl(dir, campaign, true)?;
    Ok(GatheredCampaign {
        report: CampaignReport {
            reports: reports.expect("reports were requested"),
        },
        run: stores.run,
        sse: stores.sse,
        ssp: stores.ssp,
    })
}

/// Like [`gather`], but materialises only the three concatenated profile
/// stores — no [`KernelPowerReport`]s are decoded at all, so the only
/// owned allocations are the three output stores themselves (sized
/// exactly, up front) plus one borrowed view per entry file. Verification
/// is identical to [`gather`]'s.
///
/// # Errors
///
/// As [`gather`].
pub fn gather_stores(
    dir: &CheckpointDir,
    campaign: &Campaign,
) -> Result<GatheredStores, CheckpointError> {
    Ok(gather_impl(dir, campaign, false)?.0)
}

/// Checks an entry view's self-claims against its slot: claimed index,
/// config digest, and manifest label (in [`gather`]'s historical order).
fn check_entry_view(
    view: &EntryArtifactView<'_>,
    index: usize,
    shard: u32,
    path: &Path,
    manifest: &CampaignManifest,
) -> Result<(), CheckpointError> {
    if view.index as usize != index {
        return Err(CheckpointError::Corrupt(format!(
            "entry file {} claims index {} (shard {shard})",
            path.display(),
            view.index
        )));
    }
    if view.config_digest != manifest.config_digest {
        return Err(CheckpointError::ConfigMismatch {
            expected: manifest.config_digest,
            found: view.config_digest,
        });
    }
    if view.label() != manifest.entries[index].label {
        return Err(CheckpointError::Corrupt(format!(
            "entry {index} (shard {shard}) is labelled `{}` but the manifest says `{}`",
            view.label(),
            manifest.entries[index].label
        )));
    }
    Ok(())
}

/// The streaming merge behind [`gather`]/[`gather_stores`]: two passes
/// over the (mmapped) entry files, each holding at most one entry — plus
/// at most one crash-window duplicate — mapped at a time.
///
/// Pass 1 validates every file through a borrowed [`EntryArtifactView`]
/// (header, digest, label, duplicate agreement, and the embedded stores'
/// canonical form) and sums the three profile lengths. Pass 2 sizes the
/// output stores exactly from those sums and splices each entry in with
/// [`ProfileStore::extend_from_view`] — so gathering N large shards peaks
/// at roughly one shard's decoded store of transient memory beyond the
/// output, instead of keeping all N resident.
fn gather_impl(
    dir: &CheckpointDir,
    campaign: &Campaign,
    want_reports: bool,
) -> Result<(GatheredStores, Option<Vec<KernelPowerReport>>), CheckpointError> {
    let manifest = dir.read_manifest()?;
    manifest.verify_against(campaign)?;

    let files = dir.entry_files()?;
    let mut covered = vec![false; campaign.len()];
    let (mut run_total, mut sse_total, mut ssp_total) = (0usize, 0usize, 0usize);
    // `entry_files` sorts by (index, shard), so one index's copies are
    // adjacent: the outer loop walks primaries, the inner loop their
    // crash-window duplicates.
    let mut i = 0;
    while i < files.len() {
        let (shard, index, path) = &files[i];
        if *index >= campaign.len() {
            return Err(CheckpointError::Corrupt(format!(
                "shard {shard} holds entry {index} but the campaign has only {} entries",
                campaign.len()
            )));
        }
        let mapped = MappedProfile::open(path)?;
        let view = EntryArtifactView::parse(mapped.bytes())?;
        check_entry_view(&view, *index, *shard, path, &manifest)?;
        covered[*index] = true;
        run_total += view.run_store().len();
        sse_total += view.sse_store().len();
        ssp_total += view.ssp_store().len();
        let mut j = i + 1;
        while j < files.len() && files[j].1 == *index {
            let (dup_shard, _, dup_path) = &files[j];
            let dup = MappedProfile::open(dup_path)?;
            let dup_view = EntryArtifactView::parse(dup.bytes())?;
            check_entry_view(&dup_view, *index, *dup_shard, dup_path, &manifest)?;
            verify_duplicate_bytes(*index, *shard, mapped.bytes(), *dup_shard, dup.bytes())?;
            j += 1;
        }
        i = j;
    }

    let missing: Vec<usize> = covered
        .iter()
        .enumerate()
        .filter(|(_, c)| !**c)
        .map(|(i, _)| i)
        .collect();
    if !missing.is_empty() {
        return Err(CheckpointError::Incomplete { missing });
    }

    let mut stores = GatheredStores {
        run: ProfileStore::with_capacity(run_total),
        sse: ProfileStore::with_capacity(sse_total),
        ssp: ProfileStore::with_capacity(ssp_total),
    };
    let mut reports = want_reports.then(|| Vec::with_capacity(campaign.len()));
    let mut i = 0;
    while i < files.len() {
        let (_, index, path) = &files[i];
        let mapped = MappedProfile::open(path)?;
        // Pass 1 already vetted this file; the re-parse revalidates for
        // free while slicing the column blocks (the pages are hot).
        let view = EntryArtifactView::parse(mapped.bytes())?;
        stores.run.extend_from_view(view.run_store());
        stores.sse.extend_from_view(view.sse_store());
        stores.ssp.extend_from_view(view.ssp_store());
        if let Some(reports) = reports.as_mut() {
            reports.push(view.to_report());
        }
        let mut j = i + 1;
        while j < files.len() && files[j].1 == *index {
            j += 1;
        }
        i = j;
    }
    Ok((stores, reports))
}

// ---------------------------------------------------------------------
// Restore (shared by local resume and the transport coordinator)
// ---------------------------------------------------------------------

/// Result of [`restore_done_entries`]: the restored `(index, report)`
/// pairs, then the ascending indices that must be (re-)measured.
pub(crate) type RestoredEntries = (Vec<(usize, KernelPowerReport)>, Vec<usize>);

/// Restores every `Done` entry of `manifest` from its persisted artifact
/// and plans the rest: returns the restored `(index, report)` pairs plus
/// the ascending list of indices that must be (re-)measured. Shared by
/// [`crate::executor::CampaignExecutor::resume`] and the cross-node
/// coordinator ([`crate::transport`]), so both trust a checkpoint under
/// exactly the same verification:
///
/// * every restored artifact's own digest, index, and label must agree
///   with the manifest;
/// * crash-window duplicates must be bit-identical
///   ([`verify_duplicate_bytes`]) before any copy is trusted;
/// * a `Done` entry whose file vanished is demoted to `Pending` in
///   `manifest` and re-planned instead of failing the restore.
///
/// Files are opened through [`MappedProfile`] and validated as borrowed
/// [`EntryArtifactView`]s; only the copy actually restored decodes its
/// profiles, and duplicates are verified without decoding at all.
pub(crate) fn restore_done_entries(
    ckdir: &CheckpointDir,
    campaign: &Campaign,
    manifest: &mut CampaignManifest,
) -> Result<RestoredEntries, CheckpointError> {
    // One directory scan, indexed per entry (a per-entry find_entry would
    // walk every shard directory once per Done entry).
    let mut files_by_index: Vec<Vec<(u32, PathBuf)>> = vec![Vec::new(); campaign.len()];
    for (shard, index, path) in ckdir.entry_files()? {
        if index >= campaign.len() {
            return Err(CheckpointError::Corrupt(format!(
                "shard {shard} holds entry {index} but the campaign has only {} entries",
                campaign.len()
            )));
        }
        files_by_index[index].push((shard, path));
    }

    let mut restored = Vec::new();
    let mut plan = Vec::new();
    for (index, copies) in files_by_index.iter().enumerate() {
        if manifest.entries[index].status == EntryStatus::Done {
            // Restore the persisted report; a missing file (crash between
            // the manifest update and a later inspection) demotes the
            // entry back to a re-run instead of failing.
            match copies.first() {
                Some((shard, path)) => {
                    let mapped = MappedProfile::open(path)?;
                    let view = EntryArtifactView::parse(mapped.bytes())?;
                    if view.config_digest != manifest.config_digest {
                        return Err(CheckpointError::ConfigMismatch {
                            expected: manifest.config_digest,
                            found: view.config_digest,
                        });
                    }
                    // The file must actually hold this slot's entry (a
                    // copied/renamed file during manual recovery would
                    // otherwise fill the slot with wrong data).
                    if view.index as usize != index {
                        return Err(CheckpointError::Corrupt(format!(
                            "entry file {} (shard {shard}) claims index {} but sits in \
                             slot {index}",
                            path.display(),
                            view.index
                        )));
                    }
                    if view.label() != manifest.entries[index].label {
                        return Err(CheckpointError::Corrupt(format!(
                            "entry {index} (shard {shard}) is labelled `{}` but the \
                             manifest says `{}`",
                            view.label(),
                            manifest.entries[index].label
                        )));
                    }
                    // Crash-window duplicates must agree before any copy
                    // is trusted (same verification gather does); a
                    // diverged copy names its shard and column.
                    for (other_shard, other_path) in &copies[1..] {
                        let other = MappedProfile::open(other_path)?;
                        verify_duplicate_bytes(
                            index,
                            *shard,
                            mapped.bytes(),
                            *other_shard,
                            other.bytes(),
                        )?;
                    }
                    restored.push((index, view.to_report()));
                }
                None => {
                    manifest.entries[index].status = EntryStatus::Pending;
                    plan.push(index);
                }
            }
        } else {
            plan.push(index);
        }
    }
    Ok((restored, plan))
}

// ---------------------------------------------------------------------------
// Assignment leases
// ---------------------------------------------------------------------------

/// In-memory lease on one in-flight distributed assignment.
///
/// The transport coordinator grants a lease when it assigns an entry to a
/// worker shard and renews it on every frame (including heartbeats) that
/// arrives from that worker. A lease whose renewal silence exceeds its
/// deadline marks the assignment evictable: the coordinator abandons the
/// connection and re-queues the entry to the front of the plan.
///
/// Leases are *not* part of any on-disk format — `FGRVCKPT` manifests are
/// unchanged — because a coordinator restart already recovers in-flight
/// entries through the ordinary pending-status re-plan. The lease only has
/// to outlive the connection it guards.
#[derive(Debug, Clone)]
pub struct AssignmentLease {
    /// Campaign index of the leased entry.
    pub index: usize,
    /// Worker shard holding the lease.
    pub shard: u32,
    /// When the lease was granted.
    pub granted_at: std::time::Instant,
    /// Last proof of life from the owning worker.
    pub renewed_at: std::time::Instant,
    /// Maximum renewal silence before the assignment is evictable.
    pub deadline: std::time::Duration,
}

impl AssignmentLease {
    /// Grants a fresh lease on `index` to worker `shard`.
    pub fn grant(index: usize, shard: u32, deadline: std::time::Duration) -> Self {
        let now = std::time::Instant::now();
        AssignmentLease {
            index,
            shard,
            granted_at: now,
            renewed_at: now,
            deadline,
        }
    }

    /// Records proof of life from the owning worker.
    pub fn renew(&mut self) {
        self.renewed_at = std::time::Instant::now();
    }

    /// Time since the last renewal.
    pub fn silence(&self) -> std::time::Duration {
        self.renewed_at.elapsed()
    }

    /// True once renewal silence has met or exceeded the deadline.
    pub fn lapsed(&self) -> bool {
        self.silence() >= self.deadline
    }
}

/// The coordinator's live set of [`AssignmentLease`]s, keyed by campaign
/// index. Small (bounded by connected workers), so a flat `Vec` beats a
/// map; entries are removed eagerly on release.
#[derive(Debug, Default)]
pub struct LeaseTable {
    leases: Vec<AssignmentLease>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        LeaseTable::default()
    }

    /// Grants (or re-grants, replacing any stale lease on the same index)
    /// a lease on `index` to worker `shard`.
    pub fn grant(&mut self, index: usize, shard: u32, deadline: std::time::Duration) {
        self.release(index);
        self.leases
            .push(AssignmentLease::grant(index, shard, deadline));
    }

    /// Renews the lease on `index`, if one is held.
    pub fn renew(&mut self, index: usize) {
        if let Some(lease) = self.leases.iter_mut().find(|l| l.index == index) {
            lease.renew();
        }
    }

    /// Drops the lease on `index`, if one is held.
    pub fn release(&mut self, index: usize) {
        self.leases.retain(|l| l.index != index);
    }

    /// The lease on `index`, if one is held.
    pub fn get(&self, index: usize) -> Option<&AssignmentLease> {
        self.leases.iter().find(|l| l.index == index)
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// True when no leases are held.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunnerConfig;
    use fingrav_sim::power::Activity;

    fn desc(name: &str) -> fingrav_sim::kernel::KernelDesc {
        fingrav_sim::kernel::KernelDesc {
            name: name.into(),
            base_exec: SimDuration::from_micros(100),
            freq_insensitive_frac: 0.5,
            activity: Activity::new(0.5, 0.4, 0.3),
            compute_utilization: 0.4,
            flops: 1e10,
            hbm_bytes: 1e7,
            llc_bytes: 1e8,
            workgroups: 64,
        }
    }

    fn small_campaign() -> Campaign {
        let mut c = Campaign::new(RunnerConfig::quick(6));
        c.add(desc("a")).add(desc("b"));
        c
    }

    #[test]
    fn digest_tracks_config_entries_and_overrides() {
        let a = small_campaign();
        assert_eq!(campaign_digest(&a), campaign_digest(&small_campaign()));

        let mut reordered = Campaign::new(RunnerConfig::quick(6));
        reordered.add(desc("b")).add(desc("a"));
        assert_ne!(campaign_digest(&a), campaign_digest(&reordered));

        let mut other_config = Campaign::new(RunnerConfig::quick(7));
        other_config.add(desc("a")).add(desc("b"));
        assert_ne!(campaign_digest(&a), campaign_digest(&other_config));

        let mut with_override = Campaign::new(RunnerConfig::quick(6));
        with_override
            .add(desc("a"))
            .add_with_config(desc("b"), RunnerConfig::quick(6));
        assert_ne!(campaign_digest(&a), campaign_digest(&with_override));
    }

    #[test]
    fn manifest_round_trips_and_verifies() {
        let campaign = small_campaign();
        let factory =
            crate::backend::SimulationFactory::new(fingrav_sim::config::SimConfig::default(), 7);
        let mut manifest = CampaignManifest::plan(&campaign, &factory, 3);
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entries[0].seed, Some(factory.slot_seed(0)));
        assert_eq!(manifest.entries[1].shard, 1);
        manifest.entries[0].status = EntryStatus::Done;
        manifest.entries[1].status = EntryStatus::Aborted;

        let bytes = manifest.to_bytes();
        let restored = CampaignManifest::from_bytes(&bytes).unwrap();
        assert_eq!(restored, manifest);
        assert_eq!(restored.rerun_indices(), vec![1]);
        assert!(!restored.is_complete());
        restored.verify_against(&campaign).unwrap();

        let mut other = Campaign::new(RunnerConfig::quick(9));
        other.add(desc("a")).add(desc("b"));
        assert!(matches!(
            restored.verify_against(&other),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn manifest_codec_rejects_damage() {
        let campaign = small_campaign();
        let factory =
            crate::backend::SimulationFactory::new(fingrav_sim::config::SimConfig::default(), 7);
        let good = CampaignManifest::plan(&campaign, &factory, 2).to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            CampaignManifest::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            CampaignManifest::from_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion(9))
        ));

        // Every truncation is Truncated, never a panic or a wrong decode.
        for cut in 0..good.len() {
            assert!(matches!(
                CampaignManifest::from_bytes(&good[..cut]),
                Err(CheckpointError::Truncated(_))
            ));
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            CampaignManifest::from_bytes(&trailing),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_lengths_do_not_drive_allocation() {
        let campaign = small_campaign();
        let factory =
            crate::backend::SimulationFactory::new(fingrav_sim::config::SimConfig::default(), 7);
        let good = CampaignManifest::plan(&campaign, &factory, 2).to_bytes();
        // The entry-sequence length sits right after digest (8) + workers
        // (4) in the payload (header is 16 bytes).
        let mut absurd = good.clone();
        absurd[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            CampaignManifest::from_bytes(&absurd),
            Err(CheckpointError::Corrupt(_))
        ));
        // A large-but-plausible length must fail as Truncated after at
        // most one chunk of committed capacity, not allocate it all.
        let mut big = good.clone();
        big[28..36].copy_from_slice(&(1u64 << 31).to_le_bytes());
        assert!(matches!(
            CampaignManifest::from_bytes(&big),
            Err(CheckpointError::Truncated(_))
        ));
    }

    fn sample_store(salt: u32) -> ProfileStore {
        let mut store = ProfileStore::new();
        for i in 0..100u32 {
            let valid = !(i + salt).is_multiple_of(4);
            store.push(crate::profile::ProfilePoint {
                run: i / 10,
                exec_pos: valid.then_some(i % 9),
                toi_ns: valid.then_some(f64::from(i) * 2.5),
                run_time_ns: f64::from(i + salt) * 11.0,
                power: ComponentPower::new(200.0 + f64::from(i), 50.0, 40.0, 30.0),
            });
        }
        store
    }

    fn sample_report(label: &str) -> KernelPowerReport {
        KernelPowerReport {
            label: label.into(),
            exec_time_ns: 123_456,
            guidance: GuidanceEntry {
                min_exec: SimDuration::from_micros(50),
                max_exec: Some(SimDuration::from_micros(500)),
                runs: 12,
                loi_interval: SimDuration::from_micros(2),
                margin_frac: 0.05,
            },
            margin_frac: 0.05,
            sse_index: 3,
            ssp_index: 5,
            executions_per_run: 40,
            runs_executed: 12,
            golden_runs: 9,
            throttle_detected: false,
            read_delay_ns: 850.0,
            estimated_drift_ppm: Some(1.25),
            run_profile: PowerProfile {
                label: label.into(),
                kind: ProfileKind::Run,
                store: sample_store(0),
            },
            sse_profile: PowerProfile {
                label: label.into(),
                kind: ProfileKind::Sse,
                store: sample_store(1),
            },
            ssp_profile: PowerProfile {
                label: label.into(),
                kind: ProfileKind::Ssp,
                store: sample_store(2),
            },
            sse_mean_total_w: Some(321.5),
            ssp_mean_total_w: Some(318.25),
            sse_vs_ssp_error: Some(0.01),
        }
    }

    /// The zero-copy entry parse must mirror `EntryArtifact::from_bytes`
    /// field for field — this test pins the hand-maintained field order
    /// in `EntryArtifactView::parse` to the `Codec` implementation.
    #[test]
    fn entry_view_decodes_equal_to_owned_artifact() {
        let artifact = EntryArtifact {
            index: 7,
            config_digest: 0xDEAD_BEEF_CAFE_F00D,
            report: sample_report("view-eq"),
        };
        let bytes = artifact.to_bytes();
        assert_eq!(
            bytes,
            encode_entry_bytes(7, 0xDEAD_BEEF_CAFE_F00D, &artifact.report),
            "borrowed-report encoding matches the owned artifact encoding"
        );

        let view = EntryArtifactView::parse(&bytes).expect("parses");
        assert_eq!(view.index, 7);
        assert_eq!(view.config_digest, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(view.label(), "view-eq");
        assert_eq!(
            view.run_store().len(),
            artifact.report.run_profile.store.len()
        );
        assert_eq!(
            view.run_store().to_store(),
            artifact.report.run_profile.store
        );
        assert_eq!(view.to_artifact(), artifact);
        assert_eq!(
            view.to_artifact(),
            EntryArtifact::from_bytes(&bytes).unwrap()
        );
    }

    /// Damage surfaces through the view with the same typed error the
    /// owned decoder reports — truncations, bit flips, trailing bytes.
    #[test]
    fn entry_view_rejects_damage_like_owned_decode() {
        let artifact = EntryArtifact {
            index: 0,
            config_digest: 1,
            report: sample_report("damage"),
        };
        let good = artifact.to_bytes();

        for cut in 0..good.len() {
            let owned = EntryArtifact::from_bytes(&good[..cut]);
            let viewed = EntryArtifactView::parse(&good[..cut]);
            let owned = owned.expect_err("owned decode rejects truncation");
            let viewed = viewed.expect_err("view parse rejects truncation");
            assert_eq!(
                std::mem::discriminant(&owned),
                std::mem::discriminant(&viewed),
                "cut at {cut}: owned {owned:?} vs view {viewed:?}"
            );
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            EntryArtifactView::parse(&trailing),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            EntryArtifactView::parse(&bad_magic),
            Err(CheckpointError::BadMagic(_))
        ));
    }

    /// Byte-equal duplicates are accepted without decoding; disagreeing
    /// ones are parsed and named by profile column or scalar.
    #[test]
    fn duplicate_verification_over_bytes() {
        let mut artifact = EntryArtifact {
            index: 2,
            config_digest: 9,
            report: sample_report("dups"),
        };
        let a = artifact.to_bytes();
        verify_duplicate_bytes(2, 0, &a, 1, &a.clone()).expect("byte-equal copies agree");

        // A diverged profile column names the shards and the column.
        let mut tampered = artifact.clone();
        let mut store = ProfileStore::new();
        for (i, p) in tampered.report.sse_profile.store.iter().enumerate() {
            let mut point = p.to_point();
            if i == 3 {
                point.power.hbm += 0.5;
            }
            store.push(point);
        }
        tampered.report.sse_profile.store = store;
        let err = verify_duplicate_bytes(2, 0, &a, 5, &tampered.to_bytes())
            .expect_err("diverged column is rejected");
        let msg = err.to_string();
        assert!(msg.contains("shard 0") && msg.contains("shard 5"), "{msg}");
        assert!(
            msg.contains("sse profile") && msg.contains("column `hbm`"),
            "{msg}"
        );

        // Identical profiles but a diverged scalar is still a mismatch.
        artifact.report.golden_runs += 1;
        let err = verify_duplicate_bytes(2, 0, &a, 3, &artifact.to_bytes())
            .expect_err("diverged scalar is rejected");
        assert!(err.to_string().contains("report scalars differ"), "{err}");
    }

    #[test]
    fn status_and_display() {
        assert!(EntryStatus::Pending.needs_rerun());
        assert!(EntryStatus::Failed.needs_rerun());
        assert!(EntryStatus::Aborted.needs_rerun());
        assert!(!EntryStatus::Done.needs_rerun());
        assert_eq!(EntryStatus::Aborted.to_string(), "aborted");
    }

    #[test]
    fn checkpoint_error_displays() {
        let cases: Vec<CheckpointError> = vec![
            CheckpointError::Io(io::Error::other("x")),
            CheckpointError::BadMagic(*b"NOTCKPT!"),
            CheckpointError::UnsupportedVersion(9),
            CheckpointError::Truncated("manifest entry"),
            CheckpointError::Corrupt("y".into()),
            CheckpointError::Store(StoreCodecError::BadMagic(*b"NOTPROF!")),
            CheckpointError::ConfigMismatch {
                expected: 1,
                found: 2,
            },
            CheckpointError::Incomplete { missing: vec![3] },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn lease_table_grants_renews_and_releases() {
        let deadline = std::time::Duration::from_secs(60);
        let mut table = LeaseTable::new();
        assert!(table.is_empty());

        table.grant(3, 1, deadline);
        table.grant(5, 2, deadline);
        assert_eq!(table.len(), 2);
        let lease = table.get(3).expect("lease on 3");
        assert_eq!(lease.shard, 1);
        assert!(!lease.lapsed(), "fresh lease must not have lapsed");
        assert!(lease.silence() < deadline);

        // Re-granting the same index (re-planned entry picked up by a new
        // worker) replaces, not duplicates.
        table.grant(3, 7, deadline);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(3).expect("re-granted lease").shard, 7);

        // Renewing moves the proof-of-life forward.
        let before = table.get(5).expect("lease on 5").renewed_at;
        table.renew(5);
        assert!(table.get(5).expect("lease on 5").renewed_at >= before);
        table.renew(99); // unknown index is a no-op

        table.release(3);
        assert!(table.get(3).is_none());
        table.release(3); // double-release is a no-op
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn lease_lapses_after_deadline_silence() {
        let lease = AssignmentLease::grant(0, 0, std::time::Duration::ZERO);
        // A zero deadline lapses immediately: silence() >= ZERO always.
        assert!(lease.lapsed());
        let patient = AssignmentLease::grant(0, 0, std::time::Duration::from_secs(3600));
        assert!(!patient.lapsed());
    }
}
