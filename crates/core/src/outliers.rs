//! Outlier-execution profiling (paper Section VI).
//!
//! FinGraV focuses on the common-case execution time and discards
//! outliers, but the paper notes that outlier executions deserve power
//! analysis too: "employ FinGraV methodology and focus on collecting
//! profiles for a specific outlier execution time and discarding the rest
//! (that is changing step-6)". This module implements that changed step 6:
//! select runs whose steady time falls within a margin of a *chosen*
//! target instead of the modal bin.

use serde::{Deserialize, Serialize};

/// Selection of a non-modal execution-time band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierTarget {
    /// Centre of the band, ns.
    pub center_ns: u64,
    /// Relative half-width of the band.
    pub margin_frac: f64,
}

impl OutlierTarget {
    /// True if `duration_ns` falls in the band.
    pub fn contains(&self, duration_ns: u64) -> bool {
        let c = self.center_ns as f64;
        let half = c * self.margin_frac;
        (duration_ns as f64 - c).abs() <= half
    }

    /// Indices of durations falling in the band — the "golden" set for the
    /// outlier study.
    pub fn select(&self, durations_ns: &[u64]) -> Vec<usize> {
        durations_ns
            .iter()
            .enumerate()
            .filter(|&(_, &d)| self.contains(d))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Suggests outlier-band targets from observed durations: bands around
/// values excluded from the golden bin, widest population first.
pub fn suggest_targets(durations_ns: &[u64], margin_frac: f64) -> Vec<OutlierTarget> {
    let Some(binning) = crate::binning::bin_durations(durations_ns, margin_frac) else {
        return Vec::new();
    };
    let mut targets: Vec<(usize, OutlierTarget)> = binning
        .bins
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != binning.golden)
        .map(|(_, bin)| {
            (
                bin.count(),
                OutlierTarget {
                    center_ns: bin.center_ns(),
                    margin_frac,
                },
            )
        })
        .collect();
    targets.sort_by_key(|&(count, _)| std::cmp::Reverse(count));
    targets.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_membership() {
        let t = OutlierTarget {
            center_ns: 130_000,
            margin_frac: 0.05,
        };
        assert!(t.contains(130_000));
        assert!(t.contains(133_000));
        assert!(!t.contains(140_000));
        assert!(!t.contains(100_000));
    }

    #[test]
    fn select_picks_band_members() {
        let t = OutlierTarget {
            center_ns: 130_000,
            margin_frac: 0.05,
        };
        let d = vec![100_000u64, 130_000, 131_000, 150_000, 129_000];
        assert_eq!(t.select(&d), vec![1, 2, 4]);
    }

    #[test]
    fn suggested_targets_exclude_the_mode() {
        let mut d = vec![100_000u64; 20];
        d.extend([130_000, 131_000, 132_000]); // outlier population
        d.push(180_000); // lone straggler
        let targets = suggest_targets(&d, 0.05);
        assert_eq!(targets.len(), 2);
        // Largest outlier population first.
        assert!((targets[0].center_ns as i64 - 131_000).abs() < 2_000);
        assert_eq!(targets[1].center_ns, 180_000);
        // The mode itself is not suggested.
        assert!(targets.iter().all(|t| !t.contains(100_000)));
    }

    #[test]
    fn no_targets_for_uniform_data() {
        let d = vec![100_000u64; 10];
        assert!(suggest_targets(&d, 0.05).is_empty());
        assert!(suggest_targets(&[], 0.05).is_empty());
    }
}
