//! Terminal (ASCII) rendering of power profiles.
//!
//! The paper communicates through power-vs-time plots; this module gives
//! the examples and figure binaries a dependency-free way to show the same
//! shapes directly in the terminal. Points are bucketed along x and drawn
//! as a braille-free block chart with axis annotations.

use crate::profile::{PowerAxis, PowerProfile, ProfileAxis};

/// Renders `(x, y)` series as a fixed-size ASCII chart.
///
/// Returns an empty string when fewer than two points are given.
///
/// # Examples
///
/// ```
/// use fingrav_core::chart::ascii_chart;
///
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 100.0 + x).collect();
/// let chart = ascii_chart(&xs, &ys, 40, 8);
/// assert!(chart.lines().count() >= 8);
/// ```
pub fn ascii_chart(xs: &[f64], ys: &[f64], width: usize, height: usize) -> String {
    assert_eq!(xs.len(), ys.len(), "series lengths must match");
    if xs.len() < 2 || width < 2 || height < 2 {
        return String::new();
    }
    let x_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let y_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if x_max <= x_min || !y_min.is_finite() || !y_max.is_finite() {
        return String::new();
    }
    let y_span = if y_max > y_min { y_max - y_min } else { 1.0 };

    // Bucket points into columns, averaging y per column.
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0u32; width];
    for (&x, &y) in xs.iter().zip(ys) {
        let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
        sums[col] += y;
        counts[col] += 1;
    }

    let mut grid = vec![vec![' '; width]; height];
    let mut last_row: Option<usize> = None;
    for col in 0..width {
        if counts[col] == 0 {
            continue;
        }
        let y = sums[col] / counts[col] as f64;
        let frac = ((y - y_min) / y_span).clamp(0.0, 1.0);
        let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
        grid[row][col] = '*';
        // Join vertically toward the previous column for readability.
        if let Some(prev) = last_row {
            let (lo, hi) = if prev < row { (prev, row) } else { (row, prev) };
            for r in grid.iter_mut().take(hi).skip(lo + 1) {
                if r[col] == ' ' {
                    r[col] = '.';
                }
            }
        }
        last_row = Some(row);
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:8.0} |")
        } else if i == height - 1 {
            format!("{y_min:8.0} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          +{}\n           {:<w$.2}{:>w2$.2}\n",
        "-".repeat(width),
        x_min,
        x_max,
        w = width / 2,
        w2 = width - width / 2,
    ));
    out
}

/// Renders a profile's total power over run time as an ASCII chart, with
/// the x-axis in milliseconds.
pub fn profile_chart(profile: &PowerProfile, width: usize, height: usize) -> String {
    let (xs, ys) = profile.series(ProfileAxis::RunTime, PowerAxis::Total);
    let xs_ms: Vec<f64> = xs.iter().map(|x| x / 1e6).collect();
    let body = ascii_chart(&xs_ms, &ys, width, height);
    if body.is_empty() {
        return body;
    }
    format!(
        "{} ({} points, total W vs run ms)\n{}",
        profile.label,
        profile.len(),
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileKind, ProfilePoint};
    use fingrav_sim::power::ComponentPower;

    #[test]
    fn ramp_chart_puts_start_low_and_end_high() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 + 3.0 * x).collect();
        let chart = ascii_chart(&xs, &ys, 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // Top row holds the late (high) columns, bottom row the early ones.
        let top_star = lines[0].rfind('*').expect("top row populated");
        let bottom_star = lines[9].rfind('*').expect("bottom row populated");
        assert!(top_star > bottom_star, "ramp should ascend left to right");
        assert!(lines[0].contains("697")); // y max label (100 + 3*199)
        assert!(lines[9].contains("100")); // y min label
    }

    #[test]
    fn degenerate_inputs_render_empty() {
        assert!(ascii_chart(&[], &[], 40, 10).is_empty());
        assert!(ascii_chart(&[1.0], &[1.0], 40, 10).is_empty());
        // Zero x-span.
        assert!(ascii_chart(&[1.0, 1.0], &[1.0, 2.0], 40, 10).is_empty());
        // Tiny canvas.
        assert!(ascii_chart(&[0.0, 1.0], &[0.0, 1.0], 1, 1).is_empty());
    }

    #[test]
    fn flat_series_renders_without_panic() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys = vec![500.0; 50];
        let chart = ascii_chart(&xs, &ys, 30, 6);
        assert!(chart.contains('*'));
    }

    #[test]
    fn profile_chart_includes_label() {
        let mut p = PowerProfile::new("CB-4K-GEMM", ProfileKind::Run);
        for i in 0..20 {
            p.push(ProfilePoint {
                run: 0,
                exec_pos: Some(0),
                toi_ns: Some(0.0),
                run_time_ns: i as f64 * 1e6,
                power: ComponentPower::new(100.0 + i as f64 * 10.0, 0.0, 0.0, 0.0),
            });
        }
        let chart = profile_chart(&p, 30, 6);
        assert!(chart.starts_with("CB-4K-GEMM"));
        assert!(chart.contains("20 points"));
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_series_panics() {
        let _ = ascii_chart(&[1.0, 2.0], &[1.0], 10, 5);
    }
}
