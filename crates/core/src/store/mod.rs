//! Columnar (SoA) storage for stitched profile points.
//!
//! Full-scale campaigns stitch hundreds of golden runs per kernel across a
//! fourteen-kernel suite; an array-of-structs `Vec<ProfilePoint>` pays for
//! `Option` discriminants and padding on every point and drags all eight
//! scalars through the cache even when a consumer scans one column. The
//! [`ProfileStore`] keeps each scalar in its own contiguous column (`run`,
//! `exec_pos`, `toi_ns`, `run_time_ns`, plus one column per power
//! component) with a single validity bitmap replacing the historical
//! `exec_pos == u32::MAX` / `toi_ns == None` sentinels, so:
//!
//! * column scans (means, series extraction, busy-window clipping) touch
//!   only the bytes they need, contiguously;
//! * sorting and filtering permute an index vector instead of moving
//!   56-byte structs ([`ProfileStore::argsort_by_axis`],
//!   [`ProfileStore::indices_where`], [`ProfileStore::select`]);
//! * the whole store maps 1:1 onto a raw little-endian on-disk layout
//!   ([`ProfileStore::write_to`] / [`ProfileStore::read_from`]) that a
//!   future mmap-backed or cross-process campaign shard can adopt
//!   unchanged, and two persisted stores diff column-wise without
//!   materializing points ([`ProfileStore::diff`]).
//!
//! Invalid slots (points that fell outside any execution) are stored
//! *canonically zeroed* — `exec_pos = 0`, `toi_ns = 0.0` wherever the
//! bitmap bit is clear — so structural equality, hashing of the encoded
//! bytes, and the binary round trip are all bit-exact.
//!
//! # Example: binary round trip
//!
//! The on-disk `FGRVPROF` format (specified byte by byte in
//! `docs/FORMATS.md`) round-trips bit-exactly, floats included:
//!
//! ```
//! use fingrav_core::profile::ProfilePoint;
//! use fingrav_core::store::ProfileStore;
//! use fingrav_sim::ComponentPower;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut store = ProfileStore::new();
//! store.push(ProfilePoint {
//!     run: 0,
//!     exec_pos: Some(3),
//!     toi_ns: Some(1250.5),
//!     run_time_ns: 410.0,
//!     power: ComponentPower::new(310.2, 88.0, 61.5, 40.3),
//! });
//! store.push(ProfilePoint {
//!     run: 1,
//!     exec_pos: None, // outside any execution: lands as a cleared bitmap bit
//!     toi_ns: None,
//!     run_time_ns: 415.0,
//!     power: ComponentPower::new(120.0, 80.0, 55.0, 39.9),
//! });
//!
//! let bytes = store.to_bytes();
//! assert_eq!(&bytes[0..8], b"FGRVPROF");
//! let restored = ProfileStore::from_bytes(&bytes)?;
//! assert_eq!(restored, store);
//! assert_eq!(restored.to_bytes(), bytes, "re-encoding is bit-identical");
//! assert!(store.diff(&restored).is_identical());
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use fingrav_sim::power::{Component, ComponentPower};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::profile::{ProfileAxis, ProfilePoint};

mod columns;
mod view;

pub(crate) use columns::argsort_by_axis as argsort_columns_by_axis;
pub use columns::ProfileColumns;
pub use view::{ColumnLayout, ProfileStoreView, ViewPointRef};

pub(crate) use view::F64Column;

/// Magic bytes opening every persisted [`ProfileStore`].
pub const STORE_MAGIC: [u8; 8] = *b"FGRVPROF";
/// Current binary-format version.
pub const STORE_VERSION: u32 = 1;

/// Columnar profile-point storage. See the module docs for the layout
/// rationale; see [`crate::profile::PowerProfile`] for the labelled wrapper
/// most code interacts with.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileStore {
    /// Contributing run per point.
    run: Vec<u32>,
    /// Execution position per point; canonically `0` where invalid.
    exec_pos: Vec<u32>,
    /// Time-of-interest per point, ns; canonically `0.0` where invalid.
    toi_ns: Vec<f64>,
    /// Run-relative time per point, ns.
    run_time_ns: Vec<f64>,
    /// XCD power column, watts.
    xcd: Vec<f64>,
    /// IOD power column, watts.
    iod: Vec<f64>,
    /// HBM power column, watts.
    hbm: Vec<f64>,
    /// Rest-of-package power column, watts.
    rest: Vec<f64>,
    /// Validity bitmap: bit `i` set ⇔ point `i` landed inside an execution
    /// (its `exec_pos`/`toi_ns` columns are meaningful).
    in_exec: Vec<u64>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ProfileStore::default()
    }

    /// Creates an empty store with room for `n` points per column.
    pub fn with_capacity(n: usize) -> Self {
        ProfileStore {
            run: Vec::with_capacity(n),
            exec_pos: Vec::with_capacity(n),
            toi_ns: Vec::with_capacity(n),
            run_time_ns: Vec::with_capacity(n),
            xcd: Vec::with_capacity(n),
            iod: Vec::with_capacity(n),
            hbm: Vec::with_capacity(n),
            rest: Vec::with_capacity(n),
            in_exec: Vec::with_capacity(n.div_ceil(64)),
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.run.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Appends a point. `exec_pos` and `toi_ns` must agree on validity
    /// (both `Some` — the point landed inside an execution — or both
    /// `None`); they always do for points produced by log placement.
    pub fn push(&mut self, p: ProfilePoint) {
        debug_assert_eq!(
            p.exec_pos.is_some(),
            p.toi_ns.is_some(),
            "exec_pos and toi_ns validity must coincide"
        );
        let idx = self.len();
        let valid = p.exec_pos.is_some() && p.toi_ns.is_some();
        self.run.push(p.run);
        self.exec_pos
            .push(if valid { p.exec_pos.unwrap_or(0) } else { 0 });
        self.toi_ns
            .push(if valid { p.toi_ns.unwrap_or(0.0) } else { 0.0 });
        self.run_time_ns.push(p.run_time_ns);
        self.xcd.push(p.power.xcd);
        self.iod.push(p.power.iod);
        self.hbm.push(p.power.hbm);
        self.rest.push(p.power.rest);
        if idx.is_multiple_of(64) {
            self.in_exec.push(0);
        }
        if valid {
            let word = idx / 64;
            self.in_exec[word] |= 1u64 << (idx % 64);
        }
    }

    /// Appends every point of an iterator.
    pub fn extend<I: IntoIterator<Item = ProfilePoint>>(&mut self, points: I) {
        for p in points {
            self.push(p);
        }
    }

    /// Appends every point of another store (the merge operation).
    /// Column-wise: reserves capacity from `other.len()` up front, then
    /// copies each column as one slice append and splices the validity
    /// bitmap at the bit level — bit-identical to pushing every point.
    pub fn extend_from(&mut self, other: &ProfileStore) {
        let old_len = self.len();
        self.reserve_columns(other.len());
        self.run.extend_from_slice(&other.run);
        self.exec_pos.extend_from_slice(&other.exec_pos);
        self.toi_ns.extend_from_slice(&other.toi_ns);
        self.run_time_ns.extend_from_slice(&other.run_time_ns);
        self.xcd.extend_from_slice(&other.xcd);
        self.iod.extend_from_slice(&other.iod);
        self.hbm.extend_from_slice(&other.hbm);
        self.rest.extend_from_slice(&other.rest);
        append_bitmap(
            &mut self.in_exec,
            old_len,
            other.in_exec.iter().copied(),
            other.len(),
        );
    }

    /// Appends every point of a borrowed [`ProfileStoreView`], decoding
    /// each column block once with unaligned little-endian loads — the
    /// streaming-merge primitive: gathering shards appends views straight
    /// into the output store without materializing an intermediate
    /// `ProfileStore` per shard. Bit-identical to
    /// `extend_from(&view.to_store())`.
    pub fn extend_from_view(&mut self, view: &ProfileStoreView<'_>) {
        let old_len = self.len();
        self.reserve_columns(view.len());
        self.run
            .extend(view.run_block().iter().map(|c| u32::from_le_bytes(*c)));
        self.exec_pos
            .extend(view.exec_pos_block().iter().map(|c| u32::from_le_bytes(*c)));
        for (col, which) in [
            (&mut self.toi_ns, F64Column::Toi),
            (&mut self.run_time_ns, F64Column::RunTime),
            (&mut self.xcd, F64Column::Component(Component::Xcd)),
            (&mut self.iod, F64Column::Component(Component::Iod)),
            (&mut self.hbm, F64Column::Component(Component::Hbm)),
            (&mut self.rest, F64Column::Component(Component::Rest)),
        ] {
            col.extend(
                view.f64_block(which)
                    .iter()
                    .map(|c| f64::from_bits(u64::from_le_bytes(*c))),
            );
        }
        append_bitmap(
            &mut self.in_exec,
            old_len,
            view.bitmap_block().iter().map(|c| u64::from_le_bytes(*c)),
            view.len(),
        );
    }

    /// Reserves room for `additional` more points in every column.
    fn reserve_columns(&mut self, additional: usize) {
        let new_len = self.len() + additional;
        self.run.reserve(additional);
        self.exec_pos.reserve(additional);
        self.toi_ns.reserve(additional);
        self.run_time_ns.reserve(additional);
        self.xcd.reserve(additional);
        self.iod.reserve(additional);
        self.hbm.reserve(additional);
        self.rest.reserve(additional);
        self.in_exec
            .reserve(new_len.div_ceil(64) - self.in_exec.len());
    }

    /// Builds a store directly from decoded columns that already satisfy
    /// the canonical-form invariants (the zero-copy view checked them at
    /// construction time).
    #[allow(clippy::too_many_arguments)] // one argument per column, by design
    pub(crate) fn from_validated_columns(
        run: Vec<u32>,
        exec_pos: Vec<u32>,
        toi_ns: Vec<f64>,
        run_time_ns: Vec<f64>,
        xcd: Vec<f64>,
        iod: Vec<f64>,
        hbm: Vec<f64>,
        rest: Vec<f64>,
        in_exec: Vec<u64>,
    ) -> ProfileStore {
        ProfileStore {
            run,
            exec_pos,
            toi_ns,
            run_time_ns,
            xcd,
            iod,
            hbm,
            rest,
            in_exec,
        }
    }

    /// Builds a store from owned points, reserving exact column capacity
    /// when the iterator's length is known (keeps the SoA footprint tight
    /// instead of inheriting `Vec` doubling overshoot).
    pub fn from_points<I: IntoIterator<Item = ProfilePoint>>(points: I) -> Self {
        let iter = points.into_iter();
        let mut s = ProfileStore::with_capacity(iter.size_hint().0);
        s.extend(iter);
        s
    }

    // -- row access -----------------------------------------------------

    /// True when point `i` landed inside an execution.
    pub fn in_exec(&self, i: usize) -> bool {
        (self.in_exec[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Contributing run of point `i`.
    pub fn run(&self, i: usize) -> u32 {
        self.run[i]
    }

    /// Execution position of point `i`, if it landed inside an execution.
    pub fn exec_pos(&self, i: usize) -> Option<u32> {
        self.in_exec(i).then(|| self.exec_pos[i])
    }

    /// Time-of-interest of point `i`, if it landed inside an execution.
    pub fn toi_ns(&self, i: usize) -> Option<f64> {
        self.in_exec(i).then(|| self.toi_ns[i])
    }

    /// Run-relative time of point `i`, ns.
    pub fn run_time_ns(&self, i: usize) -> f64 {
        self.run_time_ns[i]
    }

    /// Component power of point `i`.
    pub fn power(&self, i: usize) -> ComponentPower {
        ComponentPower::new(self.xcd[i], self.iod[i], self.hbm[i], self.rest[i])
    }

    /// Total (VR output) power of point `i`, watts.
    pub fn total_w(&self, i: usize) -> f64 {
        self.power(i).total()
    }

    /// A borrowed view of point `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> ProfilePointRef<'_> {
        assert!(i < self.len(), "point index {i} out of bounds");
        ProfilePointRef {
            store: self,
            idx: i,
        }
    }

    /// Materializes point `i` as an owned [`ProfilePoint`].
    pub fn point(&self, i: usize) -> ProfilePoint {
        ProfilePoint {
            run: self.run[i],
            exec_pos: self.exec_pos(i),
            toi_ns: self.toi_ns(i),
            run_time_ns: self.run_time_ns[i],
            power: self.power(i),
        }
    }

    /// Iterates borrowed point views in storage order.
    pub fn iter(&self) -> impl Iterator<Item = ProfilePointRef<'_>> {
        (0..self.len()).map(move |idx| ProfilePointRef { store: self, idx })
    }

    // -- zero-copy column slices ----------------------------------------

    /// The run column.
    pub fn runs(&self) -> &[u32] {
        &self.run
    }

    /// The raw execution-position column (`0` where the bitmap is clear —
    /// use [`ProfileStore::exec_pos`] for validity-aware access).
    pub fn exec_pos_column(&self) -> &[u32] {
        &self.exec_pos
    }

    /// The raw TOI column, ns (`0.0` where the bitmap is clear).
    pub fn toi_column(&self) -> &[f64] {
        &self.toi_ns
    }

    /// The run-relative-time column, ns.
    pub fn run_times_ns(&self) -> &[f64] {
        &self.run_time_ns
    }

    /// One component's power column, watts.
    pub fn component_column(&self, c: Component) -> &[f64] {
        match c {
            Component::Xcd => &self.xcd,
            Component::Iod => &self.iod,
            Component::Hbm => &self.hbm,
            Component::Rest => &self.rest,
        }
    }

    /// The validity-bitmap words (bit `i % 64` of word `i / 64` is point
    /// `i`'s in-execution flag).
    pub fn validity_words(&self) -> &[u64] {
        &self.in_exec
    }

    // -- column-wise reductions (shared kernels) ------------------------

    /// Sum of every point's component power, in storage order (the same
    /// f64 addition order the AoS fold used, so means are bit-identical).
    pub fn sum_power(&self) -> ComponentPower {
        columns::sum_power(self)
    }

    /// Mean component power over all points; `None` if empty.
    pub fn mean_power(&self) -> Option<ComponentPower> {
        columns::mean_power(self)
    }

    /// Number of points that landed inside an execution (popcount of the
    /// validity bitmap).
    pub fn in_exec_count(&self) -> usize {
        self.in_exec.iter().map(|w| w.count_ones() as usize).sum()
    }

    // -- index-permuting sort / filter ----------------------------------

    /// Stable argsort of the points by the chosen time axis: returns the
    /// index permutation instead of moving any column data. Points without
    /// a TOI sort first on the [`ProfileAxis::Toi`] axis (matching the
    /// historical `Option<f64>` ordering); non-comparable keys keep their
    /// relative order.
    ///
    /// Internally this sorts compact `(key, index)` pairs gathered from
    /// the key column — one sequential column read, then a sort over
    /// small flat elements with no per-comparison indirection. The
    /// [`ProfileAxis::Toi`] keys carry an explicit validity byte ordered
    /// before the value, which reproduces `Option<f64>` ordering exactly
    /// (`None` first, `NaN`s incomparable ⇒ stable).
    pub fn argsort_by_axis(&self, axis: ProfileAxis) -> Vec<u32> {
        columns::argsort_by_axis(self, axis)
    }

    /// Indices of points satisfying `pred`, in storage order.
    pub fn indices_where(&self, mut pred: impl FnMut(ProfilePointRef<'_>) -> bool) -> Vec<u32> {
        columns::indices_where(self, |c, i| pred(c.get(i)))
    }

    /// Indices of the points that landed inside an execution (the LOIs).
    pub fn indices_in_exec(&self) -> Vec<u32> {
        self.indices_where(|p| p.in_exec())
    }

    /// Gathers the given indices into a new store (also the way to apply
    /// an [`ProfileStore::argsort_by_axis`] permutation).
    pub fn select(&self, indices: &[u32]) -> ProfileStore {
        columns::select(self, indices)
    }

    /// A copy sorted by the chosen time axis.
    pub fn sorted_by_axis(&self, axis: ProfileAxis) -> ProfileStore {
        self.select(&self.argsort_by_axis(axis))
    }

    /// Keeps only points satisfying `pred` (in-place compaction).
    pub fn retain(&mut self, pred: impl FnMut(ProfilePointRef<'_>) -> bool) {
        let keep = self.indices_where(pred);
        *self = self.select(&keep);
    }

    /// A copy with every power column scaled by `k` (time columns and the
    /// bitmap are shared semantics, so they copy unchanged).
    pub fn scale_power(&self, k: f64) -> ProfileStore {
        let mut out = self.clone();
        for col in [&mut out.xcd, &mut out.iod, &mut out.hbm, &mut out.rest] {
            for w in col.iter_mut() {
                *w *= k;
            }
        }
        out
    }

    /// Approximate heap footprint of the columns, bytes (for capacity
    /// planning and the AoS-vs-SoA benchmark).
    pub fn heap_bytes(&self) -> usize {
        self.run.capacity() * 4
            + self.exec_pos.capacity() * 4
            + (self.toi_ns.capacity()
                + self.run_time_ns.capacity()
                + self.xcd.capacity()
                + self.iod.capacity()
                + self.hbm.capacity()
                + self.rest.capacity())
                * 8
            + self.in_exec.capacity() * 8
    }

    // -- binary on-disk format ------------------------------------------

    /// Serialized size of this store in the binary format, bytes.
    pub fn encoded_len(&self) -> usize {
        let n = self.len();
        24 + n * (4 + 4 + 8 * 6) + n.div_ceil(64) * 8
    }

    /// Writes the store in the versioned little-endian binary format:
    /// an 8-byte magic, `u32` version, `u32` reserved flags, `u64` point
    /// count, then the raw column blocks (`run`, `exec_pos`, `toi_ns`,
    /// `run_time_ns`, `xcd`, `iod`, `hbm`, `rest`, validity bitmap) in
    /// declaration order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&STORE_MAGIC)?;
        w.write_all(&STORE_VERSION.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        let mut buf = Vec::with_capacity(self.len() * 8);
        for col in [&self.run, &self.exec_pos] {
            buf.clear();
            for v in col.iter() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        for col in [
            &self.toi_ns,
            &self.run_time_ns,
            &self.xcd,
            &self.iod,
            &self.hbm,
            &self.rest,
        ] {
            buf.clear();
            for v in col.iter() {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        buf.clear();
        for v in &self.in_exec {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
        Ok(())
    }

    /// Encodes the store to an owned byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.write_to(&mut out).expect("Vec writes are infallible");
        out
    }

    /// Reads a store previously written by [`ProfileStore::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreCodecError::BadMagic`] /
    /// [`StoreCodecError::UnsupportedVersion`] on a foreign or newer file,
    /// [`StoreCodecError::Truncated`] when the reader ends inside a column
    /// block, and [`StoreCodecError::Corrupt`] when the decoded content
    /// violates the format's invariants (implausible length, stray bitmap
    /// tail bits, non-canonical invalid slots).
    pub fn read_from<R: Read>(r: &mut R) -> Result<ProfileStore, StoreCodecError> {
        let mut magic = [0u8; 8];
        read_exact(r, &mut magic, "magic")?;
        if magic != STORE_MAGIC {
            crate::cover::hit(crate::cover::STORE_READ_BAD_MAGIC);
            return Err(StoreCodecError::BadMagic(magic));
        }
        let version = read_u32(r, "version")?;
        if version != STORE_VERSION {
            crate::cover::hit(crate::cover::STORE_READ_BAD_VERSION);
            return Err(StoreCodecError::UnsupportedVersion(version));
        }
        let _flags = read_u32(r, "flags")?;
        let len = read_u64(r, "length")?;
        // 2^32 points would be a ≥256 GiB store; anything larger is a
        // corrupt header, not data, and must not drive allocation. The
        // range check runs on the decoded u64 *before* any narrowing, so
        // a huge length cannot wrap on 32-bit targets.
        if len > u64::from(u32::MAX) {
            crate::cover::hit(crate::cover::STORE_READ_IMPLAUSIBLE_LEN);
            return Err(StoreCodecError::Corrupt(format!(
                "implausible point count {len}"
            )));
        }
        let len = usize::try_from(len)
            .map_err(|_| StoreCodecError::Corrupt(format!("implausible point count {len}")))?;
        let run = read_u32_column(r, len, "run")?;
        let exec_pos = read_u32_column(r, len, "exec_pos")?;
        let toi_ns = read_f64_column(r, len, "toi_ns")?;
        let run_time_ns = read_f64_column(r, len, "run_time_ns")?;
        let xcd = read_f64_column(r, len, "xcd")?;
        let iod = read_f64_column(r, len, "iod")?;
        let hbm = read_f64_column(r, len, "hbm")?;
        let rest = read_f64_column(r, len, "rest")?;
        let in_exec = read_u64_column(r, len.div_ceil(64), "validity bitmap")?;
        let store = ProfileStore {
            run,
            exec_pos,
            toi_ns,
            run_time_ns,
            xcd,
            iod,
            hbm,
            rest,
            in_exec,
        };
        store.validate()?;
        crate::cover::hit(crate::cover::STORE_READ_OK);
        Ok(store)
    }

    /// Decodes a store from an owned byte buffer, rejecting trailing bytes.
    ///
    /// Internally this validates the buffer once through the zero-copy
    /// [`ProfileStoreView`] (exact block-size check up front) and then
    /// decodes each column into an exactly-sized `Vec` — no incremental
    /// growth, no second validation pass.
    ///
    /// # Errors
    ///
    /// As [`ProfileStore::read_from`], plus [`StoreCodecError::Corrupt`]
    /// when bytes remain after the bitmap block.
    pub fn from_bytes(bytes: &[u8]) -> Result<ProfileStore, StoreCodecError> {
        Ok(ProfileStoreView::new(bytes)?.to_store())
    }

    /// Checks the canonical-form invariants a decoded store must satisfy
    /// (shared kernel with the zero-copy view decoder).
    fn validate(&self) -> Result<(), StoreCodecError> {
        columns::validate_canonical(self)
    }

    // -- column-wise diffing --------------------------------------------

    /// Compares two stores column-wise without materializing points: for
    /// each column, how many entries differ (bit-comparison for floats, so
    /// NaN-safe), the first differing index, and the largest absolute
    /// delta. The report is the zero-copy substrate for diffing persisted
    /// campaign artefacts across runs.
    pub fn diff(&self, other: &ProfileStore) -> StoreDiff {
        columns::diff(self, other)
    }

    /// Column-wise diff against a borrowed [`ProfileStoreView`] — the
    /// same report as [`ProfileStore::diff`], without decoding the view.
    pub fn diff_view(&self, other: &ProfileStoreView<'_>) -> StoreDiff {
        columns::diff(self, other)
    }
}

impl ProfileColumns for ProfileStore {
    #[inline]
    fn len(&self) -> usize {
        self.run.len()
    }
    #[inline]
    fn run_at(&self, i: usize) -> u32 {
        self.run[i]
    }
    #[inline]
    fn exec_pos_raw_at(&self, i: usize) -> u32 {
        self.exec_pos[i]
    }
    #[inline]
    fn toi_bits_at(&self, i: usize) -> u64 {
        self.toi_ns[i].to_bits()
    }
    #[inline]
    fn run_time_at(&self, i: usize) -> f64 {
        self.run_time_ns[i]
    }
    #[inline]
    fn xcd_at(&self, i: usize) -> f64 {
        self.xcd[i]
    }
    #[inline]
    fn iod_at(&self, i: usize) -> f64 {
        self.iod[i]
    }
    #[inline]
    fn hbm_at(&self, i: usize) -> f64 {
        self.hbm[i]
    }
    #[inline]
    fn rest_at(&self, i: usize) -> f64 {
        self.rest[i]
    }
    #[inline]
    fn validity_word_at(&self, w: usize) -> u64 {
        self.in_exec[w]
    }
}

/// Appends `src_len` points' worth of bitmap words onto `dst` (which
/// holds `dst_len` points), splicing at the bit level when `dst_len` is
/// not word-aligned. `src` must be canonical: bits at positions
/// `>= src_len` in its final word are zero.
fn append_bitmap(
    dst: &mut Vec<u64>,
    dst_len: usize,
    src: impl Iterator<Item = u64>,
    src_len: usize,
) {
    if src_len == 0 {
        return;
    }
    let off = dst_len % 64;
    if off == 0 {
        dst.extend(src.take(src_len.div_ceil(64)));
        return;
    }
    let mut remaining = src_len;
    for w in src {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(64);
        *dst.last_mut()
            .expect("unaligned dst_len implies a last word") |= w << off;
        if take > 64 - off {
            dst.push(w >> (64 - off));
        }
        remaining -= take;
    }
}

impl<'a> IntoIterator for &'a ProfileStore {
    type Item = ProfilePointRef<'a>;
    type IntoIter = Box<dyn Iterator<Item = ProfilePointRef<'a>> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<ProfilePoint> for ProfileStore {
    fn from_iter<I: IntoIterator<Item = ProfilePoint>>(iter: I) -> Self {
        ProfileStore::from_points(iter)
    }
}

/// A borrowed view of one stored point — what [`ProfileStore::iter`]
/// yields. Accessors read straight from the columns; nothing is copied
/// until [`ProfilePointRef::to_point`].
#[derive(Debug, Clone, Copy)]
pub struct ProfilePointRef<'a> {
    store: &'a ProfileStore,
    idx: usize,
}

impl ProfilePointRef<'_> {
    /// Index of this point within its store.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Contributing run.
    pub fn run(&self) -> u32 {
        self.store.run[self.idx]
    }

    /// Execution position, if the point landed inside an execution.
    pub fn exec_pos(&self) -> Option<u32> {
        self.store.exec_pos(self.idx)
    }

    /// Time-of-interest, ns, if the point landed inside an execution.
    pub fn toi_ns(&self) -> Option<f64> {
        self.store.toi_ns(self.idx)
    }

    /// Run-relative time, ns.
    pub fn run_time_ns(&self) -> f64 {
        self.store.run_time_ns[self.idx]
    }

    /// Component power.
    pub fn power(&self) -> ComponentPower {
        self.store.power(self.idx)
    }

    /// Total power, watts.
    pub fn total_w(&self) -> f64 {
        self.store.total_w(self.idx)
    }

    /// True when the point landed inside an execution.
    pub fn in_exec(&self) -> bool {
        self.store.in_exec(self.idx)
    }

    /// Materializes an owned [`ProfilePoint`].
    pub fn to_point(&self) -> ProfilePoint {
        self.store.point(self.idx)
    }
}

// ---------------------------------------------------------------------
// Codec errors
// ---------------------------------------------------------------------

/// Failure decoding a persisted [`ProfileStore`].
#[derive(Debug)]
pub enum StoreCodecError {
    /// The reader failed below the format layer.
    Io(io::Error),
    /// The stream does not start with [`STORE_MAGIC`].
    BadMagic([u8; 8]),
    /// The stream's format version is not [`STORE_VERSION`].
    UnsupportedVersion(u32),
    /// The stream ended inside the named block.
    Truncated(&'static str),
    /// The stream decoded but violates a format invariant.
    Corrupt(String),
}

impl fmt::Display for StoreCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreCodecError::Io(e) => write!(f, "i/o error reading profile store: {e}"),
            StoreCodecError::BadMagic(m) => {
                write!(f, "not a profile store (magic {m:02x?})")
            }
            StoreCodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported profile-store version {v} (expected {STORE_VERSION})"
                )
            }
            StoreCodecError::Truncated(block) => {
                write!(f, "profile store truncated inside the {block} block")
            }
            StoreCodecError::Corrupt(why) => write!(f, "corrupt profile store: {why}"),
        }
    }
}

impl std::error::Error for StoreCodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreCodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn read_exact<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    block: &'static str,
) -> Result<(), StoreCodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreCodecError::Truncated(block)
        } else {
            StoreCodecError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, block: &'static str) -> Result<u32, StoreCodecError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, block)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, block: &'static str) -> Result<u64, StoreCodecError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, block)?;
    Ok(u64::from_le_bytes(b))
}

/// Elements read per `read_exact` when decoding a column. Bounds the
/// syscall count on unbuffered readers (one read per chunk, not per
/// element) and — past [`PRESIZE_MAX_ELEMS`] — the memory committed
/// before truncation is detected.
const READ_CHUNK_ELEMS: usize = 64 * 1024;

/// Row-count ceiling up to which a streamed column pre-sizes its `Vec`
/// to the advertised length (one exact allocation, no growth
/// reallocation). A (possibly corrupt) header advertising more rows
/// than this falls back to chunked growth, so an adversarial length
/// cannot commit gigabytes before the first short read surfaces as
/// `Truncated`. 2 M points is ~112 MiB encoded — far beyond any real
/// campaign store, tiny as a worst-case transient reservation.
const PRESIZE_MAX_ELEMS: usize = 2 * 1024 * 1024;

fn read_column<R: Read, T>(
    r: &mut R,
    len: usize,
    elem_size: usize,
    block: &'static str,
    decode: impl Fn(&[u8]) -> T,
) -> Result<Vec<T>, StoreCodecError> {
    let chunk_elems = READ_CHUNK_ELEMS.min(len.max(1));
    let mut buf = vec![0u8; chunk_elems * elem_size];
    let presize = if len <= PRESIZE_MAX_ELEMS {
        len
    } else {
        chunk_elems
    };
    let mut out = Vec::with_capacity(presize);
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(chunk_elems);
        let bytes = &mut buf[..n * elem_size];
        read_exact(r, bytes, block)?;
        out.extend(bytes.chunks_exact(elem_size).map(&decode));
        remaining -= n;
    }
    Ok(out)
}

fn read_u32_column<R: Read>(
    r: &mut R,
    len: usize,
    block: &'static str,
) -> Result<Vec<u32>, StoreCodecError> {
    read_column(r, len, 4, block, |b| {
        u32::from_le_bytes(b.try_into().expect("4-byte chunk"))
    })
}

fn read_u64_column<R: Read>(
    r: &mut R,
    len: usize,
    block: &'static str,
) -> Result<Vec<u64>, StoreCodecError> {
    read_column(r, len, 8, block, |b| {
        u64::from_le_bytes(b.try_into().expect("8-byte chunk"))
    })
}

fn read_f64_column<R: Read>(
    r: &mut R,
    len: usize,
    block: &'static str,
) -> Result<Vec<f64>, StoreCodecError> {
    read_column(r, len, 8, block, |b| {
        f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte chunk")))
    })
}

// ---------------------------------------------------------------------
// Column-wise diff report
// ---------------------------------------------------------------------

/// Per-column difference summary from [`ProfileStore::diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDiff {
    /// Column name.
    pub column: &'static str,
    /// Entries that differ over the compared prefix.
    pub differing: usize,
    /// Index of the first differing entry, if any.
    pub first_index: Option<usize>,
    /// Largest absolute numeric delta observed (NaN mismatches count as a
    /// difference but contribute no delta).
    pub max_abs_delta: f64,
}

impl ColumnDiff {
    fn new(column: &'static str) -> Self {
        ColumnDiff {
            column,
            differing: 0,
            first_index: None,
            max_abs_delta: 0.0,
        }
    }

    fn record(&mut self, index: usize, delta: f64) {
        if self.first_index.is_none() {
            self.first_index = Some(index);
        }
        self.differing += 1;
        if delta.is_finite() && delta > self.max_abs_delta {
            self.max_abs_delta = delta;
        }
    }
}

/// Column-wise comparison of two stores ([`ProfileStore::diff`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreDiff {
    /// Point count of the left store.
    pub len_a: usize,
    /// Point count of the right store.
    pub len_b: usize,
    /// One summary per column, over the common prefix.
    pub columns: Vec<ColumnDiff>,
}

impl StoreDiff {
    /// True when the stores are bit-identical (same length, no differing
    /// entry in any column).
    pub fn is_identical(&self) -> bool {
        self.len_a == self.len_b && self.columns.iter().all(|c| c.differing == 0)
    }

    /// The first column that differs, in column order, if any. Campaign
    /// gathering uses this to name the offending column (and its first
    /// differing index) when two shards disagree about an entry, instead
    /// of reporting a bare mismatch.
    pub fn first_mismatch(&self) -> Option<&ColumnDiff> {
        self.columns.iter().find(|c| c.differing > 0)
    }

    /// One-line description of the mismatch: the length disagreement or
    /// the first differing column with its first index. `"identical"` when
    /// the stores match.
    pub fn mismatch_brief(&self) -> String {
        if self.len_a != self.len_b {
            return format!("length {} vs {}", self.len_a, self.len_b);
        }
        match self.first_mismatch() {
            Some(c) => format!(
                "column `{}` differs at {} entries (first at index {})",
                c.column,
                c.differing,
                c.first_index.unwrap_or(0)
            ),
            None => "identical".to_string(),
        }
    }

    /// One human-readable line per differing column (plus a length line
    /// when the stores disagree on point count); `"identical"` otherwise.
    pub fn summary(&self) -> String {
        if self.is_identical() {
            return "identical".to_string();
        }
        let mut lines = Vec::new();
        if self.len_a != self.len_b {
            lines.push(format!("length: {} vs {}", self.len_a, self.len_b));
        }
        for c in self.columns.iter().filter(|c| c.differing > 0) {
            lines.push(format!(
                "{}: {} entries differ (first at {}, max |Δ| {:.6})",
                c.column,
                c.differing,
                c.first_index.unwrap_or(0),
                c.max_abs_delta,
            ));
        }
        lines.join("\n")
    }
}

// ---------------------------------------------------------------------
// Serde (columnar JSON fallback)
// ---------------------------------------------------------------------

impl Serialize for ProfileStore {
    fn to_value(&self) -> Value {
        let f64_col = |col: &[f64]| Value::Seq(col.iter().map(|v| v.to_value()).collect());
        let u32_col = |col: &[u32]| Value::Seq(col.iter().map(|v| v.to_value()).collect());
        Value::Map(vec![
            ("len".to_string(), (self.len() as u64).to_value()),
            ("run".to_string(), u32_col(&self.run)),
            ("exec_pos".to_string(), u32_col(&self.exec_pos)),
            ("toi_ns".to_string(), f64_col(&self.toi_ns)),
            ("run_time_ns".to_string(), f64_col(&self.run_time_ns)),
            ("xcd".to_string(), f64_col(&self.xcd)),
            ("iod".to_string(), f64_col(&self.iod)),
            ("hbm".to_string(), f64_col(&self.hbm)),
            ("rest".to_string(), f64_col(&self.rest)),
            (
                "in_exec".to_string(),
                Value::Seq(self.in_exec.iter().map(|v| v.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for ProfileStore {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "ProfileStore", v))?;
        let field = |name: &str| serde::map_field(entries, name, "ProfileStore");
        let len = u64::from_value(field("len")?)?;
        let len = usize::try_from(len)
            .map_err(|_| DeError(format!("ProfileStore len = {len} does not fit usize")))?;
        let store = ProfileStore {
            run: Vec::<u32>::from_value(field("run")?)?,
            exec_pos: Vec::<u32>::from_value(field("exec_pos")?)?,
            toi_ns: Vec::<f64>::from_value(field("toi_ns")?)?,
            run_time_ns: Vec::<f64>::from_value(field("run_time_ns")?)?,
            xcd: Vec::<f64>::from_value(field("xcd")?)?,
            iod: Vec::<f64>::from_value(field("iod")?)?,
            hbm: Vec::<f64>::from_value(field("hbm")?)?,
            rest: Vec::<f64>::from_value(field("rest")?)?,
            in_exec: Vec::<u64>::from_value(field("in_exec")?)?,
        };
        let cols = [
            store.run.len(),
            store.exec_pos.len(),
            store.toi_ns.len(),
            store.run_time_ns.len(),
            store.xcd.len(),
            store.iod.len(),
            store.hbm.len(),
            store.rest.len(),
        ];
        if cols.iter().any(|&c| c != len) || store.in_exec.len() != len.div_ceil(64) {
            return Err(DeError(format!(
                "ProfileStore column lengths disagree with len = {len}"
            )));
        }
        store
            .validate()
            .map_err(|e| DeError(format!("ProfileStore: {e}")))?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(run: u32, exec: Option<u32>, toi: Option<f64>, rt: f64, w: f64) -> ProfilePoint {
        ProfilePoint {
            run,
            exec_pos: exec,
            toi_ns: toi,
            run_time_ns: rt,
            power: ComponentPower::new(w, w / 2.0, w / 4.0, w / 8.0),
        }
    }

    fn sample() -> ProfileStore {
        ProfileStore::from_points([
            pt(0, Some(2), Some(250.0), 2_000.0, 100.0),
            pt(1, None, None, -400.0, 40.0),
            pt(0, Some(0), Some(10.0), 1_000.0, 80.0),
        ])
    }

    #[test]
    fn push_and_row_access() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.exec_pos(0), Some(2));
        assert_eq!(s.exec_pos(1), None);
        assert_eq!(s.toi_ns(1), None);
        assert_eq!(s.toi_ns(2), Some(10.0));
        assert_eq!(s.in_exec_count(), 2);
        assert_eq!(s.runs(), &[0, 1, 0]);
        // Invalid slots are canonically zeroed in the raw columns.
        assert_eq!(s.exec_pos_column()[1], 0);
        assert_eq!(s.toi_column()[1], 0.0);
    }

    #[test]
    fn point_round_trips_through_store() {
        let points = [
            pt(3, Some(1), Some(5.0), 7.0, 10.0),
            pt(4, None, None, 9.0, 20.0),
        ];
        let s = ProfileStore::from_points(points);
        assert_eq!(s.point(0), points[0]);
        assert_eq!(s.point(1), points[1]);
        let via_iter: Vec<ProfilePoint> = s.iter().map(|p| p.to_point()).collect();
        assert_eq!(via_iter, points);
    }

    #[test]
    fn bitmap_crosses_word_boundaries() {
        let mut s = ProfileStore::new();
        for i in 0..200u32 {
            let valid = i % 3 == 0;
            s.push(pt(
                i,
                valid.then_some(i),
                valid.then_some(f64::from(i)),
                f64::from(i),
                1.0,
            ));
        }
        for i in 0..200usize {
            assert_eq!(s.in_exec(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(s.validity_words().len(), 4);
    }

    #[test]
    fn argsort_is_stable_and_permutes_indices() {
        let s = ProfileStore::from_points([
            pt(0, Some(0), Some(3.0), 30.0, 1.0),
            pt(1, None, None, 10.0, 2.0),
            pt(2, Some(0), Some(1.0), 10.0, 3.0),
        ]);
        assert_eq!(s.argsort_by_axis(ProfileAxis::RunTime), vec![1, 2, 0]);
        // TOI-less points sort first (None < Some), preserving order.
        assert_eq!(s.argsort_by_axis(ProfileAxis::Toi), vec![1, 2, 0]);
        let sorted = s.sorted_by_axis(ProfileAxis::RunTime);
        assert_eq!(sorted.run_times_ns(), &[10.0, 10.0, 30.0]);
    }

    #[test]
    fn select_retain_and_scale() {
        let mut s = sample();
        let lois = s.select(&s.indices_in_exec());
        assert_eq!(lois.len(), 2);
        assert!(lois.iter().all(|p| p.in_exec()));
        let scaled = s.scale_power(0.5);
        assert!((scaled.total_w(0) - s.total_w(0) * 0.5).abs() < 1e-12);
        s.retain(|p| p.run() == 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn binary_round_trip_is_bit_identical() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.encoded_len());
        let restored = ProfileStore::from_bytes(&bytes).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn empty_store_round_trips() {
        let s = ProfileStore::new();
        let restored = ProfileStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(restored, s);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ProfileStore::from_bytes(&bytes),
            Err(StoreCodecError::BadMagic(_))
        ));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            ProfileStore::from_bytes(&bytes),
            Err(StoreCodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_reported_per_block() {
        let bytes = sample().to_bytes();
        for cut in [4, 20, 30, bytes.len() - 1] {
            let err = ProfileStore::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreCodecError::Truncated(_)),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn stray_bitmap_bits_and_trailing_bytes_are_corrupt() {
        let mut bytes = sample().to_bytes();
        // The 3-point store uses bits 0..3 of the final u64; set bit 40.
        let last = bytes.len() - 8;
        bytes[last + 5] = 0x01;
        assert!(matches!(
            ProfileStore::from_bytes(&bytes),
            Err(StoreCodecError::Corrupt(_))
        ));
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            ProfileStore::from_bytes(&bytes),
            Err(StoreCodecError::Corrupt(_))
        ));
    }

    #[test]
    fn non_canonical_invalid_slots_are_corrupt() {
        let mut bytes = sample().to_bytes();
        // Point 1 is invalid; its exec_pos u32 sits at 24 + 3*4 + 1*4.
        let off = 24 + 3 * 4 + 4;
        bytes[off] = 7;
        assert!(matches!(
            ProfileStore::from_bytes(&bytes),
            Err(StoreCodecError::Corrupt(_))
        ));
    }

    #[test]
    fn diff_reports_columns_and_identity() {
        let a = sample();
        assert!(a.diff(&a).is_identical());
        assert_eq!(a.diff(&a).summary(), "identical");

        let mut b = sample();
        b.retain(|_| true); // no-op rebuild
        let mut c = ProfileStore::new();
        for (i, p) in b.iter().enumerate() {
            let mut point = p.to_point();
            if i == 1 {
                point.run_time_ns += 2.5;
            }
            c.push(point);
        }
        let d = a.diff(&c);
        assert!(!d.is_identical());
        let rt = d
            .columns
            .iter()
            .find(|col| col.column == "run_time_ns")
            .unwrap();
        assert_eq!(rt.differing, 1);
        assert_eq!(rt.first_index, Some(1));
        assert!((rt.max_abs_delta - 2.5).abs() < 1e-12);
        assert!(d.summary().contains("run_time_ns"));

        let shorter = a.select(&[0, 1]);
        assert!(!a.diff(&shorter).is_identical());
        assert!(a.diff(&shorter).summary().contains("length"));
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let restored: ProfileStore = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, s);
        // Columnar layout: each column appears once as an array.
        assert!(json.contains("\"run_time_ns\":["));
    }

    #[test]
    fn json_rejects_inconsistent_columns() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let broken = json.replacen("\"len\":3", "\"len\":2", 1);
        assert!(serde_json::from_str::<ProfileStore>(&broken).is_err());
    }

    #[test]
    fn heap_bytes_tracks_columns() {
        let s = sample();
        assert!(s.heap_bytes() >= 3 * (4 + 4 + 6 * 8));
    }
}
