//! Borrowed, zero-copy decoding of the `FGRVPROF` binary format.
//!
//! [`ProfileStoreView`] validates an encoded store once — header,
//! exact block sizes, stray-bitmap-bit and canonical-zero invariants —
//! and then serves every column straight out of the caller's byte
//! buffer: no `Vec` per column, no copy per point. The buffer can come
//! from anywhere bytes live (an mmap'd shard file, a received wire
//! frame, an owned `Vec<u8>`), which is why the view never assumes
//! alignment: every element is read with an unaligned little-endian
//! load (`u32::from_le_bytes` / `u64::from_le_bytes` on a 4- or 8-byte
//! chunk), per the in-place-read rules in `docs/FORMATS.md` §2.
//!
//! All analysis kernels (`mean_power`, `argsort_by_axis`,
//! `indices_where`, `select`, `diff`, CSV emission) are shared with the
//! owned [`ProfileStore`] through [`ProfileColumns`], so the two paths
//! return bit-identical results by construction.

use super::columns::{self, ProfileColumns};
use super::{ProfileStore, StoreCodecError, StoreDiff, STORE_MAGIC, STORE_VERSION};
use crate::cover;
use crate::profile::{ProfileAxis, ProfilePoint};
use fingrav_sim::power::{Component, ComponentPower};

/// Reads the unaligned little-endian `u32` at element index `i` of a
/// packed 4-byte-stride block. The block is pre-chunked into `[u8; 4]`
/// elements at view construction, so random access costs exactly one
/// bounds check — the same as indexing the owned `Vec<u32>` column —
/// which is what lets the view's kernels run at owned-column speed.
#[inline]
fn le_u32(block: &[[u8; 4]], i: usize) -> u32 {
    u32::from_le_bytes(block[i])
}

/// Reads the unaligned little-endian `u64` at element index `i` of a
/// packed 8-byte-stride block (see [`le_u32`] on why pre-chunked).
#[inline]
fn le_u64(block: &[[u8; 8]], i: usize) -> u64 {
    u64::from_le_bytes(block[i])
}

/// Copies the `N`-byte header block starting at `at` out of `bytes`,
/// or returns the given truncation error. `get`-based, so a short
/// buffer becomes a typed error rather than a panic.
#[inline]
fn take_block<const N: usize>(
    bytes: &[u8],
    at: usize,
    block: &'static str,
) -> Result<[u8; N], StoreCodecError> {
    match bytes.get(at..at + N) {
        Some(b) => {
            let mut out = [0u8; N];
            out.copy_from_slice(b);
            Ok(out)
        }
        None => Err(StoreCodecError::Truncated(block)),
    }
}

/// Re-slices a `4·k`-byte block as `k` unaligned 4-byte elements.
#[inline]
fn chunks4(block: &[u8]) -> &[[u8; 4]] {
    let (chunks, rest) = block.as_chunks::<4>();
    debug_assert!(rest.is_empty(), "block length is a multiple of 4");
    chunks
}

/// Re-slices an `8·k`-byte block as `k` unaligned 8-byte elements.
#[inline]
fn chunks8(block: &[u8]) -> &[[u8; 8]] {
    let (chunks, rest) = block.as_chunks::<8>();
    debug_assert!(rest.is_empty(), "block length is a multiple of 8");
    chunks
}

/// Byte offsets of every column block of an `n`-point encoded store,
/// relative to the start of the encoding (header included). This is the
/// normative §2 layout of `docs/FORMATS.md` in executable form; the
/// view, the owned decoder, and the spec test all derive offsets from
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnLayout {
    /// Point count the layout was computed for.
    pub n: usize,
    /// Offset of the `run` block (always 24: right after the header).
    pub run: usize,
    /// Offset of the `exec_pos` block.
    pub exec_pos: usize,
    /// Offset of the `toi_ns` block.
    pub toi_ns: usize,
    /// Offset of the `run_time_ns` block.
    pub run_time_ns: usize,
    /// Offset of the `xcd` block.
    pub xcd: usize,
    /// Offset of the `iod` block.
    pub iod: usize,
    /// Offset of the `hbm` block.
    pub hbm: usize,
    /// Offset of the `rest` block.
    pub rest: usize,
    /// Offset of the validity-bitmap block.
    pub bitmap: usize,
    /// Total encoded size, header included.
    pub total: usize,
}

impl ColumnLayout {
    /// Computes the layout for an `n`-point store. `None` when the
    /// block arithmetic would overflow `usize` (only possible on
    /// 32-bit targets; `n` is already bounded by `u32::MAX`).
    pub fn for_len(n: usize) -> Option<ColumnLayout> {
        let u32_block = n.checked_mul(4)?;
        let f64_block = n.checked_mul(8)?;
        let bitmap_block = n.div_ceil(64).checked_mul(8)?;
        let run = 24usize;
        let exec_pos = run.checked_add(u32_block)?;
        let toi_ns = exec_pos.checked_add(u32_block)?;
        let run_time_ns = toi_ns.checked_add(f64_block)?;
        let xcd = run_time_ns.checked_add(f64_block)?;
        let iod = xcd.checked_add(f64_block)?;
        let hbm = iod.checked_add(f64_block)?;
        let rest = hbm.checked_add(f64_block)?;
        let bitmap = rest.checked_add(f64_block)?;
        let total = bitmap.checked_add(bitmap_block)?;
        Some(ColumnLayout {
            n,
            run,
            exec_pos,
            toi_ns,
            run_time_ns,
            xcd,
            iod,
            hbm,
            rest,
            bitmap,
            total,
        })
    }

    /// The name of the block a buffer of `avail` bytes ends inside
    /// (`avail < total`); used to label `Truncated` errors exactly like
    /// the streaming decoder does.
    fn truncated_block(&self, avail: usize) -> &'static str {
        let bounds = [
            (self.exec_pos, "run"),
            (self.toi_ns, "exec_pos"),
            (self.run_time_ns, "toi_ns"),
            (self.xcd, "run_time_ns"),
            (self.iod, "xcd"),
            (self.hbm, "iod"),
            (self.rest, "hbm"),
            (self.bitmap, "rest"),
            (self.total, "validity bitmap"),
        ];
        for (end, name) in bounds {
            if avail < end {
                return name;
            }
        }
        "validity bitmap"
    }
}

/// A borrowed, validated view of one encoded `FGRVPROF` store.
///
/// Constructed by [`ProfileStoreView::new`] (exact buffer) or
/// [`ProfileStoreView::split_prefix`] (store embedded in a larger
/// stream, e.g. a checkpoint entry or a wire frame). Construction runs
/// the *same* checks as [`ProfileStore::from_bytes`] — magic, version,
/// plausible length, exact block sizes, stray bitmap bits, canonical
/// zeroing of invalid slots — so every later accessor is infallible and
/// panic-free, and `ProfileStoreView::new(bytes)` succeeds exactly when
/// `ProfileStore::from_bytes(bytes)` does.
///
/// ```
/// use fingrav_core::profile::ProfilePoint;
/// use fingrav_core::store::{ProfileStore, ProfileStoreView};
/// use fingrav_sim::ComponentPower;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = ProfileStore::new();
/// store.push(ProfilePoint {
///     run: 0,
///     exec_pos: Some(3),
///     toi_ns: Some(1250.5),
///     run_time_ns: 410.0,
///     power: ComponentPower::new(310.2, 88.0, 61.5, 40.3),
/// });
/// let bytes = store.to_bytes();
/// let view = ProfileStoreView::new(&bytes)?; // zero-copy: borrows `bytes`
/// assert_eq!(view.len(), 1);
/// assert_eq!(view.toi_ns(0), Some(1250.5));
/// assert_eq!(view.mean_power(), store.mean_power()); // shared kernel
/// assert!(view.diff_store(&store).is_identical());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProfileStoreView<'a> {
    len: usize,
    /// The `run` block: `n` unaligned LE `u32` elements.
    run: &'a [[u8; 4]],
    /// The `exec_pos` block: `n` unaligned LE `u32` elements.
    exec_pos: &'a [[u8; 4]],
    /// The `toi_ns` block: `n` unaligned LE `f64`-bits elements.
    toi_ns: &'a [[u8; 8]],
    /// The `run_time_ns` block: `n` unaligned LE `f64`-bits elements.
    run_time_ns: &'a [[u8; 8]],
    /// The `xcd` block: `n` unaligned LE `f64`-bits elements.
    xcd: &'a [[u8; 8]],
    /// The `iod` block: `n` unaligned LE `f64`-bits elements.
    iod: &'a [[u8; 8]],
    /// The `hbm` block: `n` unaligned LE `f64`-bits elements.
    hbm: &'a [[u8; 8]],
    /// The `rest` block: `n` unaligned LE `f64`-bits elements.
    rest: &'a [[u8; 8]],
    /// The validity-bitmap block: `⌈n/64⌉` unaligned LE `u64` words.
    in_exec: &'a [[u8; 8]],
}

impl<'a> ProfileStoreView<'a> {
    /// Validates `bytes` as exactly one encoded store and borrows it.
    ///
    /// # Errors
    ///
    /// The same taxonomy as [`ProfileStore::from_bytes`]:
    /// [`StoreCodecError::BadMagic`] /
    /// [`StoreCodecError::UnsupportedVersion`] on a foreign or newer
    /// encoding, [`StoreCodecError::Truncated`] naming the block the
    /// buffer ends inside, and [`StoreCodecError::Corrupt`] for
    /// implausible lengths, trailing bytes, stray bitmap bits, or
    /// non-canonical invalid slots.
    pub fn new(bytes: &'a [u8]) -> Result<ProfileStoreView<'a>, StoreCodecError> {
        let (view, rest) = ProfileStoreView::split_prefix(bytes)?;
        if !rest.is_empty() {
            cover::hit(cover::STORE_VIEW_TRAILING);
            return Err(StoreCodecError::Corrupt(format!(
                "{} trailing bytes after the bitmap block",
                rest.len()
            )));
        }
        Ok(view)
    }

    /// Validates the store at the *front* of `bytes` and returns the
    /// view together with the bytes that follow it. This is how a store
    /// embedded in a larger encoding (a checkpoint entry section, a
    /// wire-frame payload) is decoded in place: the embedded block is
    /// self-delimiting, so no length prefix is needed.
    ///
    /// # Errors
    ///
    /// As [`ProfileStoreView::new`], minus the trailing-bytes check.
    pub fn split_prefix(
        bytes: &'a [u8],
    ) -> Result<(ProfileStoreView<'a>, &'a [u8]), StoreCodecError> {
        // Header: mirror the streaming decoder's block labels exactly.
        let magic: [u8; 8] = take_block(bytes, 0, "magic").inspect_err(|_| {
            cover::hit(cover::STORE_VIEW_TRUNC_HEADER);
        })?;
        if magic != STORE_MAGIC {
            cover::hit(cover::STORE_VIEW_BAD_MAGIC);
            return Err(StoreCodecError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(take_block(bytes, 8, "version").inspect_err(|_| {
            cover::hit(cover::STORE_VIEW_TRUNC_HEADER);
        })?);
        if version != STORE_VERSION {
            cover::hit(cover::STORE_VIEW_BAD_VERSION);
            return Err(StoreCodecError::UnsupportedVersion(version));
        }
        if bytes.len() < 16 {
            cover::hit(cover::STORE_VIEW_TRUNC_HEADER);
            return Err(StoreCodecError::Truncated("flags"));
        }
        let len = u64::from_le_bytes(take_block(bytes, 16, "length").inspect_err(|_| {
            cover::hit(cover::STORE_VIEW_TRUNC_HEADER);
        })?);
        if len > u64::from(u32::MAX) {
            cover::hit(cover::STORE_VIEW_IMPLAUSIBLE_LEN);
            return Err(StoreCodecError::Corrupt(format!(
                "implausible point count {len}"
            )));
        }
        let len = usize::try_from(len)
            .map_err(|_| StoreCodecError::Corrupt(format!("implausible point count {len}")))?;
        let layout = ColumnLayout::for_len(len).ok_or_else(|| {
            cover::hit(cover::STORE_VIEW_IMPLAUSIBLE_LEN);
            StoreCodecError::Corrupt(format!("implausible point count {len}"))
        })?;
        if bytes.len() < layout.total {
            cover::hit(cover::STORE_VIEW_TRUNC_BODY);
            return Err(StoreCodecError::Truncated(
                layout.truncated_block(bytes.len()),
            ));
        }
        let view = ProfileStoreView {
            len,
            run: chunks4(&bytes[layout.run..layout.exec_pos]),
            exec_pos: chunks4(&bytes[layout.exec_pos..layout.toi_ns]),
            toi_ns: chunks8(&bytes[layout.toi_ns..layout.run_time_ns]),
            run_time_ns: chunks8(&bytes[layout.run_time_ns..layout.xcd]),
            xcd: chunks8(&bytes[layout.xcd..layout.iod]),
            iod: chunks8(&bytes[layout.iod..layout.hbm]),
            hbm: chunks8(&bytes[layout.hbm..layout.rest]),
            rest: chunks8(&bytes[layout.rest..layout.bitmap]),
            in_exec: chunks8(&bytes[layout.bitmap..layout.total]),
        };
        columns::validate_canonical(&view)?;
        cover::hit(cover::STORE_VIEW_OK);
        Ok((view, &bytes[layout.total..]))
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total encoded size of the viewed store, header included.
    pub fn encoded_len(&self) -> usize {
        ColumnLayout::for_len(self.len)
            .expect("a validated view's layout fits usize")
            .total
    }

    // -- row access (mirrors `ProfileStore`) ----------------------------

    /// True when point `i` landed inside an execution.
    pub fn in_exec(&self, i: usize) -> bool {
        self.in_exec_at(i)
    }

    /// Contributing run of point `i`.
    pub fn run(&self, i: usize) -> u32 {
        le_u32(self.run, i)
    }

    /// Execution position of point `i`, if it landed inside an execution.
    pub fn exec_pos(&self, i: usize) -> Option<u32> {
        self.exec_pos_at(i)
    }

    /// Time-of-interest of point `i`, if it landed inside an execution.
    pub fn toi_ns(&self, i: usize) -> Option<f64> {
        self.toi_at(i)
    }

    /// Run-relative time of point `i`, ns.
    pub fn run_time_ns(&self, i: usize) -> f64 {
        self.run_time_at(i)
    }

    /// Component power of point `i`.
    pub fn power(&self, i: usize) -> ComponentPower {
        self.power_at(i)
    }

    /// Total (VR output) power of point `i`, watts.
    pub fn total_w(&self, i: usize) -> f64 {
        self.total_w_at(i)
    }

    /// Materializes point `i` as an owned [`ProfilePoint`].
    pub fn point(&self, i: usize) -> ProfilePoint {
        self.point_at(i)
    }

    /// Iterates owned points in storage order, decoded lazily from the
    /// borrowed bytes.
    pub fn points(&self) -> impl Iterator<Item = ProfilePoint> + '_ {
        (0..self.len).map(move |i| self.point_at(i))
    }

    // -- shared kernels -------------------------------------------------

    /// Sum of every point's component power, in storage order —
    /// bit-identical to [`ProfileStore::sum_power`] on the same data.
    pub fn sum_power(&self) -> ComponentPower {
        columns::sum_power(self)
    }

    /// Mean component power over all points; `None` if empty.
    pub fn mean_power(&self) -> Option<ComponentPower> {
        columns::mean_power(self)
    }

    /// Number of points that landed inside an execution.
    pub fn in_exec_count(&self) -> usize {
        columns::in_exec_count(self)
    }

    /// Stable argsort by the chosen time axis; identical permutation to
    /// [`ProfileStore::argsort_by_axis`].
    pub fn argsort_by_axis(&self, axis: ProfileAxis) -> Vec<u32> {
        columns::argsort_by_axis(self, axis)
    }

    /// Indices of points satisfying `pred`, in storage order.
    pub fn indices_where(&self, mut pred: impl FnMut(ViewPointRef<'_, 'a>) -> bool) -> Vec<u32> {
        columns::indices_where(self, |c, i| pred(ViewPointRef { view: c, idx: i }))
    }

    /// Indices of the points that landed inside an execution (the LOIs).
    pub fn indices_in_exec(&self) -> Vec<u32> {
        self.indices_where(|p| p.in_exec())
    }

    /// Gathers the given indices into a new owned store.
    pub fn select(&self, indices: &[u32]) -> ProfileStore {
        columns::select(self, indices)
    }

    /// An owned copy sorted by the chosen time axis.
    pub fn sorted_by_axis(&self, axis: ProfileAxis) -> ProfileStore {
        self.select(&self.argsort_by_axis(axis))
    }

    /// Column-wise diff against another view (NaN-safe bit comparison;
    /// same report as [`ProfileStore::diff`]).
    pub fn diff(&self, other: &ProfileStoreView<'_>) -> StoreDiff {
        columns::diff(self, other)
    }

    /// Column-wise diff against an owned store.
    pub fn diff_store(&self, other: &ProfileStore) -> StoreDiff {
        columns::diff(self, other)
    }

    /// Decodes the view into an owned [`ProfileStore`], sizing every
    /// column exactly (no growth reallocation). The invariants were
    /// checked at view construction, so no re-validation happens.
    pub fn to_store(&self) -> ProfileStore {
        let n = self.len;
        ProfileStore::from_validated_columns(
            self.run.iter().map(|c| u32::from_le_bytes(*c)).collect(),
            self.exec_pos
                .iter()
                .map(|c| u32::from_le_bytes(*c))
                .collect(),
            decode_f64_block(self.toi_ns, n),
            decode_f64_block(self.run_time_ns, n),
            decode_f64_block(self.xcd, n),
            decode_f64_block(self.iod, n),
            decode_f64_block(self.hbm, n),
            decode_f64_block(self.rest, n),
            self.in_exec
                .iter()
                .map(|c| u64::from_le_bytes(*c))
                .collect(),
        )
    }

    // -- raw blocks (for column-wise appends) ---------------------------

    /// The raw `run` block (`n` unaligned LE `u32` elements).
    pub(crate) fn run_block(&self) -> &'a [[u8; 4]] {
        self.run
    }

    /// The raw `exec_pos` block (`n` unaligned LE `u32` elements).
    pub(crate) fn exec_pos_block(&self) -> &'a [[u8; 4]] {
        self.exec_pos
    }

    /// The raw block of one f64 column (`n` unaligned LE f64-bits
    /// elements).
    pub(crate) fn f64_block(&self, which: F64Column) -> &'a [[u8; 8]] {
        match which {
            F64Column::Toi => self.toi_ns,
            F64Column::RunTime => self.run_time_ns,
            F64Column::Component(Component::Xcd) => self.xcd,
            F64Column::Component(Component::Iod) => self.iod,
            F64Column::Component(Component::Hbm) => self.hbm,
            F64Column::Component(Component::Rest) => self.rest,
        }
    }

    /// The raw validity-bitmap block (`⌈n/64⌉` unaligned LE words).
    pub(crate) fn bitmap_block(&self) -> &'a [[u8; 8]] {
        self.in_exec
    }
}

/// Selects one of the six f64 columns of a view's raw blocks.
#[derive(Debug, Clone, Copy)]
pub(crate) enum F64Column {
    /// The `toi_ns` column.
    Toi,
    /// The `run_time_ns` column.
    RunTime,
    /// One power-component column.
    Component(Component),
}

/// Decodes a packed little-endian f64 block into an exactly-sized `Vec`.
fn decode_f64_block(block: &[[u8; 8]], n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    out.extend(block.iter().map(|c| f64::from_bits(u64::from_le_bytes(*c))));
    out
}

impl ProfileColumns for ProfileStoreView<'_> {
    #[inline]
    fn len(&self) -> usize {
        // Derived from the run block (== `self.len` by construction) so
        // `0..len()` loops can elide that column's bounds checks, exactly
        // like the owned `Vec`-backed columns.
        self.run.len()
    }
    #[inline]
    fn run_at(&self, i: usize) -> u32 {
        le_u32(self.run, i)
    }
    #[inline]
    fn exec_pos_raw_at(&self, i: usize) -> u32 {
        le_u32(self.exec_pos, i)
    }
    #[inline]
    fn toi_bits_at(&self, i: usize) -> u64 {
        le_u64(self.toi_ns, i)
    }
    #[inline]
    fn run_time_at(&self, i: usize) -> f64 {
        f64::from_bits(le_u64(self.run_time_ns, i))
    }
    #[inline]
    fn xcd_at(&self, i: usize) -> f64 {
        f64::from_bits(le_u64(self.xcd, i))
    }
    #[inline]
    fn iod_at(&self, i: usize) -> f64 {
        f64::from_bits(le_u64(self.iod, i))
    }
    #[inline]
    fn hbm_at(&self, i: usize) -> f64 {
        f64::from_bits(le_u64(self.hbm, i))
    }
    #[inline]
    fn rest_at(&self, i: usize) -> f64 {
        f64::from_bits(le_u64(self.rest, i))
    }
    #[inline]
    fn validity_word_at(&self, w: usize) -> u64 {
        le_u64(self.in_exec, w)
    }
}

/// A borrowed view of one point of a [`ProfileStoreView`] — what the
/// view's filter predicates receive; mirrors
/// [`ProfilePointRef`](super::ProfilePointRef).
#[derive(Debug, Clone, Copy)]
pub struct ViewPointRef<'v, 'a> {
    view: &'v ProfileStoreView<'a>,
    idx: usize,
}

impl ViewPointRef<'_, '_> {
    /// Index of this point within its store.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Contributing run.
    pub fn run(&self) -> u32 {
        self.view.run_at(self.idx)
    }

    /// Execution position, if the point landed inside an execution.
    pub fn exec_pos(&self) -> Option<u32> {
        self.view.exec_pos_at(self.idx)
    }

    /// Time-of-interest, ns, if the point landed inside an execution.
    pub fn toi_ns(&self) -> Option<f64> {
        self.view.toi_at(self.idx)
    }

    /// Run-relative time, ns.
    pub fn run_time_ns(&self) -> f64 {
        self.view.run_time_at(self.idx)
    }

    /// Component power.
    pub fn power(&self) -> ComponentPower {
        self.view.power_at(self.idx)
    }

    /// Total power, watts.
    pub fn total_w(&self) -> f64 {
        self.view.total_w_at(self.idx)
    }

    /// True when the point landed inside an execution.
    pub fn in_exec(&self) -> bool {
        self.view.in_exec_at(self.idx)
    }

    /// Materializes an owned [`ProfilePoint`].
    pub fn to_point(&self) -> ProfilePoint {
        self.view.point_at(self.idx)
    }
}
