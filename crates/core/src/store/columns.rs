//! The column abstraction shared by the owned [`ProfileStore`] and the
//! borrowed [`ProfileStoreView`](super::ProfileStoreView), plus the
//! column kernels (reductions, argsort, filter, select, canonical-form
//! validation, diff) written once against that abstraction.
//!
//! Both storage shapes — decoded `Vec` columns and raw little-endian
//! byte blocks served in place — implement [`ProfileColumns`]; every
//! analysis kernel is a single generic implementation, so the two paths
//! cannot drift apart. All floating-point reductions fold in storage
//! order, which keeps means bit-identical across the owned, view, and
//! mmap paths.

use fingrav_sim::power::ComponentPower;

use super::{ColumnDiff, ProfileStore, StoreCodecError, StoreDiff};
use crate::profile::{ProfileAxis, ProfilePoint};

/// Read access to the eight profile columns and the validity bitmap.
///
/// Implemented by [`ProfileStore`] (decoded `Vec` columns) and
/// [`ProfileStoreView`](super::ProfileStoreView) (unaligned
/// little-endian reads straight from the encoded bytes). The `*_at`
/// names avoid colliding with the inherent accessors on the
/// implementing types.
///
/// The raw accessors surface the *canonical* column content: where the
/// validity bit is clear, `exec_pos_raw_at` is `0` and `toi_bits_at` is
/// `0` (the format invariant enforced at decode time).
pub trait ProfileColumns {
    /// Number of stored points.
    fn len(&self) -> usize;
    /// Contributing run of point `i`.
    fn run_at(&self, i: usize) -> u32;
    /// Raw execution-position of point `i` (`0` where invalid).
    fn exec_pos_raw_at(&self, i: usize) -> u32;
    /// Raw TOI bit pattern of point `i` (`0` where invalid).
    fn toi_bits_at(&self, i: usize) -> u64;
    /// Run-relative time of point `i`, ns.
    fn run_time_at(&self, i: usize) -> f64;
    /// XCD power of point `i`, watts.
    fn xcd_at(&self, i: usize) -> f64;
    /// IOD power of point `i`, watts.
    fn iod_at(&self, i: usize) -> f64;
    /// HBM power of point `i`, watts.
    fn hbm_at(&self, i: usize) -> f64;
    /// Rest-of-package power of point `i`, watts.
    fn rest_at(&self, i: usize) -> f64;
    /// Validity-bitmap word `w` (bit `i % 64` of word `i / 64` is point
    /// `i`'s in-execution flag).
    fn validity_word_at(&self, w: usize) -> u64;

    /// True when no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when point `i` landed inside an execution.
    #[inline]
    fn in_exec_at(&self, i: usize) -> bool {
        (self.validity_word_at(i / 64) >> (i % 64)) & 1 == 1
    }

    /// Execution position of point `i`, if it landed inside an execution.
    #[inline]
    fn exec_pos_at(&self, i: usize) -> Option<u32> {
        self.in_exec_at(i).then(|| self.exec_pos_raw_at(i))
    }

    /// Time-of-interest of point `i`, ns, if it landed inside an
    /// execution.
    #[inline]
    fn toi_at(&self, i: usize) -> Option<f64> {
        self.in_exec_at(i)
            .then(|| f64::from_bits(self.toi_bits_at(i)))
    }

    /// Component power of point `i`.
    #[inline]
    fn power_at(&self, i: usize) -> ComponentPower {
        ComponentPower::new(
            self.xcd_at(i),
            self.iod_at(i),
            self.hbm_at(i),
            self.rest_at(i),
        )
    }

    /// Total (VR output) power of point `i`, watts.
    #[inline]
    fn total_w_at(&self, i: usize) -> f64 {
        self.power_at(i).total()
    }

    /// Materializes point `i` as an owned [`ProfilePoint`].
    fn point_at(&self, i: usize) -> ProfilePoint {
        ProfilePoint {
            run: self.run_at(i),
            exec_pos: self.exec_pos_at(i),
            toi_ns: self.toi_at(i),
            run_time_ns: self.run_time_at(i),
            power: self.power_at(i),
        }
    }
}

// ---------------------------------------------------------------------
// Shared kernels
// ---------------------------------------------------------------------

/// Sum of every point's component power, in storage order (the same f64
/// addition order the AoS fold used, so means are bit-identical across
/// the owned and view paths).
pub(crate) fn sum_power<C: ProfileColumns + ?Sized>(c: &C) -> ComponentPower {
    let mut acc = ComponentPower::ZERO;
    for i in 0..c.len() {
        acc += c.power_at(i);
    }
    acc
}

/// Mean component power over all points; `None` if empty.
pub(crate) fn mean_power<C: ProfileColumns + ?Sized>(c: &C) -> Option<ComponentPower> {
    if c.is_empty() {
        return None;
    }
    Some(sum_power(c) / c.len() as f64)
}

/// Popcount of the validity bitmap.
pub(crate) fn in_exec_count<C: ProfileColumns + ?Sized>(c: &C) -> usize {
    (0..c.len().div_ceil(64))
        .map(|w| c.validity_word_at(w).count_ones() as usize)
        .sum()
}

/// Stable argsort by the chosen time axis; see
/// [`ProfileStore::argsort_by_axis`] for the ordering contract.
pub(crate) fn argsort_by_axis<C: ProfileColumns + ?Sized>(c: &C, axis: ProfileAxis) -> Vec<u32> {
    match axis {
        ProfileAxis::RunTime => {
            let mut pairs: Vec<(f64, u32)> = (0..c.len() as u32)
                .map(|i| (c.run_time_at(i as usize), i))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            pairs.into_iter().map(|(_, i)| i).collect()
        }
        ProfileAxis::Toi => {
            let mut pairs: Vec<(u8, f64, u32)> = (0..c.len() as u32)
                .map(|i| match c.toi_at(i as usize) {
                    Some(t) => (1, t, i),
                    None => (0, 0.0, i),
                })
                .collect();
            pairs.sort_by(|a, b| {
                (a.0, a.1)
                    .partial_cmp(&(b.0, b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            pairs.into_iter().map(|(_, _, i)| i).collect()
        }
    }
}

/// Indices of points satisfying `pred`, in storage order.
pub(crate) fn indices_where<C: ProfileColumns + ?Sized>(
    c: &C,
    mut pred: impl FnMut(&C, usize) -> bool,
) -> Vec<u32> {
    (0..c.len() as u32)
        .filter(|&i| pred(c, i as usize))
        .collect()
}

/// Gathers the given indices into a new owned store.
pub(crate) fn select<C: ProfileColumns + ?Sized>(c: &C, indices: &[u32]) -> ProfileStore {
    let mut out = ProfileStore::with_capacity(indices.len());
    for &i in indices {
        out.push(c.point_at(i as usize));
    }
    out
}

/// Checks the canonical-form invariants a decoded store must satisfy:
/// no validity bits past the point count, and invalid slots zeroed in
/// the `exec_pos` / `toi_ns` columns.
pub(crate) fn validate_canonical<C: ProfileColumns + ?Sized>(c: &C) -> Result<(), StoreCodecError> {
    let len = c.len();
    if !len.is_multiple_of(64) && len > 0 {
        let last = c.validity_word_at(len.div_ceil(64) - 1);
        if last >> (len % 64) != 0 {
            crate::cover::hit(crate::cover::STORE_CANON_STRAY_BITS);
            return Err(StoreCodecError::Corrupt(
                "validity bitmap has bits set past the point count".into(),
            ));
        }
    }
    for i in 0..len {
        if !c.in_exec_at(i) && (c.exec_pos_raw_at(i) != 0 || c.toi_bits_at(i) != 0) {
            crate::cover::hit(crate::cover::STORE_CANON_DIRTY_SLOT);
            return Err(StoreCodecError::Corrupt(format!(
                "point {i} is outside any execution but carries non-zero exec_pos/toi"
            )));
        }
    }
    Ok(())
}

/// Column-wise comparison of any two column sources (owned, view, or
/// mixed): bit-comparison for floats (NaN-safe), first differing index
/// and largest absolute delta per column. One implementation backs
/// [`ProfileStore::diff`] and the view diffs.
pub(crate) fn diff<A, B>(a: &A, b: &B) -> StoreDiff
where
    A: ProfileColumns + ?Sized,
    B: ProfileColumns + ?Sized,
{
    let n = a.len().min(b.len());
    let mut columns = Vec::new();
    let mut diff_col = |name: &'static str,
                        av: &dyn Fn(usize) -> u64,
                        bv: &dyn Fn(usize) -> u64,
                        delta: &dyn Fn(usize) -> f64| {
        let mut d = ColumnDiff::new(name);
        for i in 0..n {
            if av(i) != bv(i) {
                d.record(i, delta(i));
            }
        }
        columns.push(d);
    };
    diff_col(
        "run",
        &|i| u64::from(a.run_at(i)),
        &|i| u64::from(b.run_at(i)),
        &|i| (f64::from(a.run_at(i)) - f64::from(b.run_at(i))).abs(),
    );
    diff_col(
        "exec_pos",
        &|i| u64::from(a.exec_pos_raw_at(i)),
        &|i| u64::from(b.exec_pos_raw_at(i)),
        &|i| (f64::from(a.exec_pos_raw_at(i)) - f64::from(b.exec_pos_raw_at(i))).abs(),
    );
    diff_col(
        "toi_ns",
        &|i| a.toi_bits_at(i),
        &|i| b.toi_bits_at(i),
        &|i| (f64::from_bits(a.toi_bits_at(i)) - f64::from_bits(b.toi_bits_at(i))).abs(),
    );
    let mut diff_f64 =
        |name: &'static str, av: &dyn Fn(usize) -> f64, bv: &dyn Fn(usize) -> f64| {
            let mut d = ColumnDiff::new(name);
            for i in 0..n {
                if av(i).to_bits() != bv(i).to_bits() {
                    d.record(i, (av(i) - bv(i)).abs());
                }
            }
            columns.push(d);
        };
    diff_f64("run_time_ns", &|i| a.run_time_at(i), &|i| b.run_time_at(i));
    diff_f64("xcd", &|i| a.xcd_at(i), &|i| b.xcd_at(i));
    diff_f64("iod", &|i| a.iod_at(i), &|i| b.iod_at(i));
    diff_f64("hbm", &|i| a.hbm_at(i), &|i| b.hbm_at(i));
    diff_f64("rest", &|i| a.rest_at(i), &|i| b.rest_at(i));
    let mut d = ColumnDiff::new("in_exec");
    for i in 0..n {
        if a.in_exec_at(i) != b.in_exec_at(i) {
            d.record(i, 1.0);
        }
    }
    columns.push(d);
    StoreDiff {
        len_a: a.len(),
        len_b: b.len(),
        columns,
    }
}
