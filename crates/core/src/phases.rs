//! Kernel phase splitting (paper Section VI).
//!
//! The paper proposes, as future work, breaking a kernel into phases to
//! lower per-phase variation: "with GPU kernels, wherein each kernel
//! launches multiple workgroups, the kernel can be artificially terminated
//! after half the number of workgroups are completed and each half of the
//! execution can be studied separately." This module implements that
//! splitting at the descriptor level: phase *k* of *n* carries `1/n` of
//! the workgroups, time, and traffic, and can then be profiled like any
//! other kernel.

use fingrav_sim::kernel::KernelDesc;

/// Splits a kernel into `phases` equal workgroup phases.
///
/// Returns an error if `phases` is zero or exceeds the workgroup count
/// (a phase must contain at least one workgroup).
///
/// # Errors
///
/// Returns a description of the violated constraint.
///
/// # Examples
///
/// ```
/// use fingrav_core::phases::split_kernel;
/// use fingrav_sim::kernel::KernelDesc;
/// use fingrav_sim::power::Activity;
/// use fingrav_sim::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = KernelDesc {
///     name: "k".into(),
///     base_exec: SimDuration::from_micros(100),
///     freq_insensitive_frac: 0.2,
///     activity: Activity::new(0.9, 0.5, 0.4),
///     compute_utilization: 0.8,
///     flops: 1e9,
///     hbm_bytes: 1e6,
///     llc_bytes: 1e7,
///     workgroups: 64,
/// };
/// let halves = split_kernel(&k, 2)?;
/// assert_eq!(halves.len(), 2);
/// assert_eq!(halves[0].workgroups, 32);
/// assert_eq!(halves[0].base_exec, SimDuration::from_micros(50));
/// # Ok(())
/// # }
/// ```
pub fn split_kernel(desc: &KernelDesc, phases: u32) -> Result<Vec<KernelDesc>, String> {
    if phases == 0 {
        return Err("phase count must be positive".into());
    }
    if phases > desc.workgroups {
        return Err(format!(
            "cannot split {} workgroups into {} phases",
            desc.workgroups, phases
        ));
    }
    let n = phases as u64;
    let base_wgs = desc.workgroups / phases;
    let remainder = desc.workgroups % phases;
    let mut out = Vec::with_capacity(phases as usize);
    for i in 0..phases {
        // Spread the remainder over the first phases.
        let wgs = base_wgs + u32::from(i < remainder);
        let share = wgs as f64 / desc.workgroups as f64;
        out.push(KernelDesc {
            name: format!("{}#phase{}/{}", desc.name, i + 1, n),
            base_exec: desc.base_exec.mul_f64(share),
            freq_insensitive_frac: desc.freq_insensitive_frac,
            activity: desc.activity,
            compute_utilization: desc.compute_utilization,
            flops: desc.flops * share,
            hbm_bytes: desc.hbm_bytes * share,
            llc_bytes: desc.llc_bytes * share,
            workgroups: wgs,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel(workgroups: u32) -> KernelDesc {
        KernelDesc {
            name: "k".into(),
            base_exec: SimDuration::from_micros(120),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.8,
            flops: 1.2e9,
            hbm_bytes: 6e6,
            llc_bytes: 1.2e7,
            workgroups,
        }
    }

    #[test]
    fn halves_conserve_work() {
        let k = kernel(64);
        let halves = split_kernel(&k, 2).unwrap();
        assert_eq!(halves.len(), 2);
        let wg: u32 = halves.iter().map(|p| p.workgroups).sum();
        assert_eq!(wg, 64);
        let flops: f64 = halves.iter().map(|p| p.flops).sum();
        assert!((flops - k.flops).abs() < 1.0);
        let t: u64 = halves.iter().map(|p| p.base_exec.as_nanos()).sum();
        assert_eq!(t, k.base_exec.as_nanos());
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let k = kernel(10);
        let thirds = split_kernel(&k, 3).unwrap();
        let wgs: Vec<u32> = thirds.iter().map(|p| p.workgroups).collect();
        assert_eq!(wgs, vec![4, 3, 3]);
    }

    #[test]
    fn phase_names_are_distinct() {
        let k = kernel(8);
        let phases = split_kernel(&k, 4).unwrap();
        let mut names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        assert!(phases[0].name.contains("phase1/4"));
    }

    #[test]
    fn phases_validate_as_kernels() {
        let k = kernel(64);
        for p in split_kernel(&k, 2).unwrap() {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn rejects_bad_counts() {
        let k = kernel(4);
        assert!(split_kernel(&k, 0).is_err());
        assert!(split_kernel(&k, 5).is_err());
        assert!(split_kernel(&k, 4).is_ok());
    }

    #[test]
    fn single_phase_is_identity_sized() {
        let k = kernel(16);
        let one = split_kernel(&k, 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].workgroups, k.workgroups);
        assert_eq!(one[0].base_exec, k.base_exec);
    }
}
