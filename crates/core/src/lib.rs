//! # fingrav-core — the FinGraV fine-grain GPU power methodology
//!
//! Implementation of the methodology from *"FinGraV: Methodology for
//! Fine-Grain GPU Power Visibility and Insights"* (ISPASS 2025,
//! arXiv:2412.12426). FinGraV turns a coarse on-GPU averaging power logger
//! into fine-grain, per-sub-component power profiles of sub-millisecond
//! kernels via four techniques:
//!
//! * **S1** — GPU-side power logging (provided by the platform; see
//!   `fingrav-sim` for the simulated MI300X's 1 ms logger);
//! * **S2** — high-resolution CPU–GPU time sync ([`sync`]): read-delay
//!   calibration, anchoring, and optional two-anchor drift cancellation;
//! * **S3** — execution-time binning ([`binning`]): keep only *golden* runs
//!   whose steady execution times agree within a margin;
//! * **S4** — power-profile differentiation ([`differentiation`]): separate
//!   the steady-state-execution (SSE) profile from the steady-state-power
//!   (SSP) profile, avoiding up to 80 % energy measurement error.
//!
//! [`runner::FingravRunner`] composes all of it into the paper's nine-step
//! recipe against any [`backend::PowerBackend`].
//!
//! ## Quick start
//!
//! ```
//! use fingrav_core::runner::{FingravRunner, RunnerConfig};
//! use fingrav_sim::config::SimConfig;
//! use fingrav_sim::engine::Simulation;
//! use fingrav_workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Simulation::new(SimConfig::default(), 42)?;
//! let kernel = suite::cb_gemm(&SimConfig::default().machine, 4096);
//! // Scaled-down run count for a fast doc test; drop `quick` for the
//! // paper-guided run counts.
//! let mut runner = FingravRunner::new(&mut sim, RunnerConfig::quick(12));
//! let report = runner.profile(&kernel)?;
//! assert_eq!(report.label, "CB-4K-GEMM");
//! assert!(report.ssp_mean_total_w.unwrap() > 0.0);
//! # Ok(())
//! # }
//! ```

// The only unsafe lives in `mmap.rs`; unsafe operations inside unsafe
// fns must still be scoped in explicit blocks with their own SAFETY
// comments (audited by `fgrv-lint`).
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod binning;
pub mod campaign;
pub mod chart;
pub mod checkpoint;
pub mod cover;
pub mod differentiation;
pub mod energy;
pub mod error;
pub mod executor;
pub mod guidance;
pub mod insights;
pub mod mmap;
pub mod observe;
pub mod outliers;
pub mod phases;
pub mod profile;
pub mod regression;
pub mod report;
pub mod runner;
pub mod stages;
pub mod stats;
pub mod store;
pub mod sync;
pub mod transport;

pub use backend::{
    BackendFactory, FnBackendFactory, PowerBackend, ScriptSession, SimulationFactory,
};
pub use binning::{bin_durations, Binning};
pub use campaign::{Campaign, CampaignEntry, CampaignReport};
pub use checkpoint::{
    campaign_digest, gather, gather_stores, CampaignManifest, CheckpointDir, CheckpointError,
    EntryArtifact, EntryArtifactView, EntryStatus, GatheredCampaign, GatheredStores, ManifestEntry,
    StageCheckpoint,
};
pub use error::{MethodologyError, MethodologyResult};
pub use executor::{CampaignExecutor, CampaignObserver, CampaignOutcome, ErrorPolicy};
pub use guidance::{GuidanceEntry, GuidanceTable};
pub use mmap::MappedProfile;
pub use observe::{ProfilingEvent, ProfilingSink, StageKind};
pub use profile::{PowerAxis, PowerProfile, ProfileAxis, ProfileKind, ProfilePoint};
pub use runner::{FingravRunner, KernelPowerReport, LoggerChoice, RunnerConfig};
pub use stages::{RunCollection, SspArtifact, StagePipeline, StitchedProfiles, TimingArtifact};
pub use store::{
    ProfileColumns, ProfilePointRef, ProfileStore, ProfileStoreView, StoreCodecError, StoreDiff,
};
pub use sync::{ReadDelayCalibration, TimeSync};
pub use transport::{
    connect_with_retry, work, work_at, Coordinator, TransportError, WorkerOptions, WorkerSummary,
};
