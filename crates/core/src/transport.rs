//! Cross-node campaign transport: a coordinator/worker protocol over TCP.
//!
//! FinGraV campaigns are embarrassingly distributable — every entry is an
//! independent per-kernel measurement whose backend derives solely from
//! its campaign index — and [`crate::checkpoint`] already persists each
//! finished entry as a self-contained `FGRVCKPT` block. This module ships
//! those same blocks over a socket instead of (only) a filesystem:
//!
//! * a [`Coordinator`] binds a `TcpListener`, plans the campaign, and
//!   hands out entry indices to whichever workers connect;
//! * a worker ([`work`]) measures each assigned entry through the exact
//!   per-slot path a local executor uses
//!   (`crate::executor`'s claim loop), streaming scoped
//!   [`ProfilingEvent`]s back as it runs and the finished
//!   [`EntryArtifact`](crate::checkpoint::EntryArtifact) — byte-for-byte the on-disk `FGRVCKPT` entry
//!   section — when it completes;
//! * the coordinator persists every artifact into a normal
//!   [`CheckpointDir`], so [`crate::checkpoint::gather`] and
//!   [`crate::executor::CampaignExecutor::resume`] work on the result
//!   unchanged, and a campaign cut short on the wire is finished the same
//!   way a locally cancelled one is.
//!
//! ## Fault model
//!
//! A worker that disappears mid-entry (dropped connection, truncated
//! frame, or a cooperative abort surfacing as
//! [`MethodologyError::Aborted`]) simply returns its in-flight entry to
//! the queue; any later worker — including the same machine reconnecting —
//! re-measures it and, because slots derive solely from their campaign
//! index, produces a bit-identical artifact. The coordinator verifies
//! that: a re-measured entry is diffed column-by-column against any copy
//! already on disk before it is trusted (same
//! [`ProfileStore::diff`](crate::store::ProfileStore::diff)-based check
//! the local executor and `gather` apply).
//!
//! Silence is a fault too, not just observed drops: every stream carries
//! read/write deadlines, workers pump [`Frame::Heartbeat`] frames (a
//! dedicated thread, so a long-running measurement still proves
//! liveness), the coordinator heartbeats back while it deliberates an
//! assignment, and a peer that stays byte-silent past the configured
//! idle deadline ([`Coordinator::idle_timeout`],
//! [`WorkerOptions::io_timeout`]) is presumed wedged: its connection is
//! abandoned with [`TransportError::DeadlineLapsed`] and any in-flight
//! assignment is evicted — re-queued to the *front* of the queue,
//! exactly like the dropped-connection path, so byte-identity is
//! preserved. Each in-flight assignment is tracked as an
//! [`AssignmentLease`](crate::checkpoint::AssignmentLease), renewed by
//! every frame (heartbeats included) its worker delivers.
//!
//! ## Campaign service
//!
//! [`CampaignService`] promotes the one-shot [`Coordinator`] into an
//! always-on daemon: one listener accepts many campaigns back to back
//! through a submission queue ([`CampaignService::submit`] returns a
//! [`CampaignTicket`]), each submission advancing the
//! sequence-negotiated handshake, with a graceful drain on
//! [`CampaignService::shutdown`]. Workers dial the same address for
//! every campaign and ride [`connect_with_retry`]'s exponential backoff
//! across `ConnectionRefused` gaps instead of dying.
//!
//! Lifecycle note: because an entry can be attempted more than once, a
//! [`CampaignObserver`] watching a served campaign may see
//! `entry_started` (and a trailing `entry_failed`) again for a slot that
//! was re-planned; exactly one `entry_finished` still arrives per
//! completed slot. Remote cancellation is *entry-granular*: a fired
//! [`CancellationToken`] stops new assignments immediately (workers are
//! told to abort when they next ask for work), but an entry already
//! running on a remote worker finishes before its worker notices.
//!
//! ## Wire format
//!
//! The connection opens with a fixed 16-byte preamble in each direction
//! ([`WIRE_MAGIC`], [`WIRE_VERSION`], reserved `u32`), then exchanges
//! length-framed [`Frame`]s: a `u32` tag, a `u64` payload length, and a
//! payload encoded with the same little-endian field grammar as the
//! `FGRVCKPT` format (the on-disk format *is* the wire format — an
//! [`EntryArtifact`](crate::checkpoint::EntryArtifact) travels as the exact bytes `EntryArtifact::write_to`
//! persists). `docs/FORMATS.md` is the normative byte-level spec.
//!
//! ## Example: a distributed campaign on TCP loopback
//!
//! ```
//! use fingrav_core::backend::SimulationFactory;
//! use fingrav_core::campaign::Campaign;
//! use fingrav_core::executor::{CampaignExecutor, CancellationToken, NoopCampaignObserver};
//! use fingrav_core::runner::RunnerConfig;
//! use fingrav_core::transport::{work, Coordinator, WorkerOptions};
//! use fingrav_sim::config::SimConfig;
//! use fingrav_workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = SimConfig::default().machine.clone();
//! let mut campaign = Campaign::new(RunnerConfig::quick(6));
//! campaign.add_all(suite::gemm_suite(&machine).into_iter().take(2).map(|k| k.desc));
//! let factory = SimulationFactory::new(SimConfig::default(), 7);
//!
//! let coordinator = Coordinator::bind("127.0.0.1:0")?;
//! let addr = coordinator.local_addr()?;
//! let dir = std::env::temp_dir().join(format!("fingrav-doc-net-{}", std::process::id()));
//!
//! let outcome = std::thread::scope(|s| {
//!     // One worker on the same machine; any number may connect.
//!     s.spawn(|| {
//!         let stream = std::net::TcpStream::connect(addr).expect("loopback connect");
//!         work(
//!             stream,
//!             &campaign,
//!             &factory,
//!             &NoopCampaignObserver,
//!             &CancellationToken::new(),
//!             &WorkerOptions::default(),
//!         )
//!         .expect("worker runs to completion")
//!     });
//!     coordinator.serve(&campaign, &dir, &NoopCampaignObserver, &CancellationToken::new())
//! })?;
//!
//! // Byte-identical to a purely local run of the same campaign.
//! let local = CampaignExecutor::serial().run(&campaign, &factory)?;
//! assert_eq!(outcome.into_report()?, local);
//! std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::campaign::Campaign;
use crate::checkpoint::{
    campaign_digest, restore_done_entries, CampaignManifest, CheckpointDir, CheckpointError, Codec,
    EntryArtifactView, EntryStatus, LeaseTable,
};
use crate::cover;
use crate::error::{MethodologyError, MethodologyResult};
use crate::executor::{
    CampaignObserver, CampaignOutcome, CancellationToken, ErrorPolicy, NoopCampaignObserver,
};
use crate::observe::ProfilingEvent;
use crate::runner::KernelPowerReport;

/// Magic bytes opening the wire preamble in each direction.
pub const WIRE_MAGIC: [u8; 8] = *b"FGRVWIRE";

/// Version of the coordinator/worker wire protocol.
///
/// This constant is the single source of truth for the protocol version:
/// both peers send it in their preamble and refuse a mismatch, and
/// `docs/FORMATS.md` (the normative spec) cites the same value — a repo
/// test cross-checks the two, so bumping one without the other fails CI.
///
/// v2 added the bidirectional [`Frame::Heartbeat`] (receivers of v1
/// would treat the new tag as corruption, hence the bump).
pub const WIRE_VERSION: u32 = 2;

/// Hard ceiling on a frame payload length. The largest legitimate payload
/// is an [`EntryArtifact`](crate::checkpoint::EntryArtifact) (a full report with embedded profiles — tens
/// of MiB at paper scale); anything above this is a corrupt length field,
/// not data, and must not drive allocation.
pub const MAX_FRAME_LEN: u64 = 1 << 30;

/// Deny code: the worker's campaign digest does not match the
/// coordinator's (same sequence position — a genuinely different
/// campaign definition).
pub const DENY_DIGEST_MISMATCH: u8 = 1;
/// Deny code: the coordinator has already moved past the worker's
/// campaign sequence position (e.g. it restored that campaign from a
/// complete checkpoint and never needed a worker). The worker should
/// obtain that campaign's results some other way — the bench harness
/// measures it locally, byte-identically.
pub const DENY_SEQUENCE_PASSED: u8 = 2;
/// Deny code: the worker is early — the coordinator has not reached the
/// worker's campaign sequence position yet (its previous campaign is
/// still draining). The worker should reconnect shortly.
pub const DENY_SEQUENCE_EARLY: u8 = 3;

/// Elements of capacity committed ahead of reading a frame payload, so a
/// corrupt length field fails on the first short read instead of
/// committing memory (mirrors the checkpoint codec's chunked reads).
const READ_CHUNK: usize = 64 * 1024;

/// How long assignment waiters sleep between cancellation checks, and how
/// long the accept loop sleeps between polls.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Default maximum byte-silence tolerated from a connected peer before it
/// is presumed wedged and its connection (plus any in-flight assignment)
/// is abandoned. Generous: heartbeats arrive every
/// [`DEFAULT_HEARTBEAT_INTERVAL`] from a live peer, so hitting this means
/// an order of magnitude of missed beats.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default interval between worker [`Frame::Heartbeat`] frames (the
/// coordinator derives its own reply-side heartbeat cadence from its idle
/// timeout, capped at this value).
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_secs(2);

/// Granularity of the socket read timeout used to poll for deadline and
/// eviction checks: a fraction of the idle deadline, bounded so short
/// test deadlines still get several polls and long production deadlines
/// don't spin.
fn read_poll(idle: Duration) -> Duration {
    (idle / 8).clamp(Duration::from_millis(5), Duration::from_millis(50))
}

/// True for the error kinds a timed-out socket read/write surfaces
/// (`WouldBlock` on Unix, `TimedOut` on Windows) — a *deadline tick*,
/// distinct from corruption or a dead connection.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Failure of a transport connection or of the protocol spoken over it.
#[derive(Debug)]
pub enum TransportError {
    /// The socket failed below the protocol layer.
    Io(io::Error),
    /// The peer's preamble does not start with [`WIRE_MAGIC`].
    BadMagic([u8; 8]),
    /// The peer speaks a different [`WIRE_VERSION`].
    UnsupportedVersion(u32),
    /// The stream ended inside the named block.
    Truncated(&'static str),
    /// A frame decoded but violates the format's invariants.
    Corrupt(String),
    /// An artifact or handshake carried the wrong campaign digest.
    DigestMismatch {
        /// Digest of the local campaign.
        expected: u64,
        /// Digest the peer presented.
        found: u64,
    },
    /// The coordinator refused the handshake.
    Denied {
        /// Machine-readable reason ([`DENY_DIGEST_MISMATCH`], …).
        code: u8,
        /// Human-readable detail.
        detail: String,
    },
    /// An embedded checkpoint block failed to decode or verify.
    Checkpoint(CheckpointError),
    /// The peer sent a frame the protocol does not allow in this state.
    Protocol(String),
    /// The peer sent no bytes (not even a heartbeat) for the configured
    /// idle deadline: it is presumed wedged or gone, and the connection
    /// is abandoned. On the coordinator this evicts and re-plans the
    /// connection's in-flight assignment.
    DeadlineLapsed {
        /// How long the stream stayed byte-silent.
        silent_for: Duration,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "i/o error on transport: {e}"),
            TransportError::BadMagic(m) => {
                write!(f, "peer is not a fingrav transport (magic {m:02x?})")
            }
            TransportError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            TransportError::Truncated(block) => {
                write!(f, "connection ended inside the {block} block")
            }
            TransportError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            TransportError::DigestMismatch { expected, found } => write!(
                f,
                "campaign digest mismatch (peer has {found:016x}, local campaign \
                 digests to {expected:016x})"
            ),
            TransportError::Denied { code, detail } => {
                write!(
                    f,
                    "coordinator denied the handshake (code {code}): {detail}"
                )
            }
            TransportError::Checkpoint(e) => write!(f, "embedded checkpoint block: {e}"),
            TransportError::Protocol(why) => write!(f, "protocol violation: {why}"),
            TransportError::DeadlineLapsed { silent_for } => write!(
                f,
                "peer byte-silent for {silent_for:?}; idle deadline lapsed, connection abandoned"
            ),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TransportError::Truncated("frame")
        } else {
            TransportError::Io(e)
        }
    }
}

impl From<CheckpointError> for TransportError {
    fn from(e: CheckpointError) -> Self {
        // A truncation inside a frame payload is a truncation of the
        // connection's stream.
        match e {
            CheckpointError::Truncated(block) => TransportError::Truncated(block),
            CheckpointError::Io(io) if io.kind() == io::ErrorKind::UnexpectedEof => {
                TransportError::Truncated("frame payload")
            }
            other => TransportError::Checkpoint(other),
        }
    }
}

impl From<TransportError> for MethodologyError {
    fn from(e: TransportError) -> Self {
        MethodologyError::Transport(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Wire codec: MethodologyError (Failed frames carry the typed error)
// ---------------------------------------------------------------------

impl Codec for MethodologyError {
    const BLOCK: &'static str = "methodology error";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            MethodologyError::Backend(m) => {
                0u8.encode(w)?;
                m.encode(w)
            }
            MethodologyError::InsufficientSyncData => 1u8.encode(w),
            MethodologyError::NoGoldenRuns => 2u8.encode(w),
            MethodologyError::EmptyProbe => 3u8.encode(w),
            MethodologyError::InvalidConfig(m) => {
                4u8.encode(w)?;
                m.encode(w)
            }
            MethodologyError::Aborted => 5u8.encode(w),
            MethodologyError::Checkpoint(m) => {
                6u8.encode(w)?;
                m.encode(w)
            }
            MethodologyError::Transport(m) => {
                7u8.encode(w)?;
                m.encode(w)
            }
        }
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(MethodologyError::Backend(String::decode(r)?)),
            1 => Ok(MethodologyError::InsufficientSyncData),
            2 => Ok(MethodologyError::NoGoldenRuns),
            3 => Ok(MethodologyError::EmptyProbe),
            4 => Ok(MethodologyError::InvalidConfig(String::decode(r)?)),
            5 => Ok(MethodologyError::Aborted),
            6 => Ok(MethodologyError::Checkpoint(String::decode(r)?)),
            7 => Ok(MethodologyError::Transport(String::decode(r)?)),
            other => {
                cover::hit(cover::WIRE_ERROR_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown methodology-error tag {other}"
                )))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

const TAG_HELLO: u32 = 1;
const TAG_WELCOME: u32 = 2;
const TAG_DENY: u32 = 3;
const TAG_REQUEST: u32 = 4;
const TAG_ASSIGN: u32 = 5;
const TAG_FINISHED: u32 = 6;
const TAG_ABORT: u32 = 7;
const TAG_STARTED: u32 = 8;
const TAG_EVENT: u32 = 9;
const TAG_DONE: u32 = 10;
const TAG_FAILED: u32 = 11;
const TAG_FETCH: u32 = 12;
const TAG_ARTIFACT: u32 = 13;
const TAG_BYE: u32 = 14;
const TAG_HEARTBEAT: u32 = 15;

/// One protocol message. See the module docs for the conversation and
/// `docs/FORMATS.md` for the byte-level layout.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Worker → coordinator: first frame after the preamble; carries the
    /// worker's local [`campaign_digest`] and its position in a
    /// multi-campaign sequence (0 for standalone campaigns).
    Hello {
        /// Digest of the worker's campaign.
        digest: u64,
        /// Sequence position of the campaign (both sides of a
        /// multi-campaign run count campaigns identically; standalone
        /// uses 0).
        sequence: u64,
    },
    /// Coordinator → worker: handshake accepted; the worker's shard id
    /// and the campaign's entry count.
    Welcome {
        /// Shard id assigned to this connection (names the checkpoint
        /// subdirectory its artifacts persist under).
        shard: u32,
        /// Number of campaign entries, for a structural sanity check.
        entries: u64,
    },
    /// Coordinator → worker: handshake refused.
    Deny {
        /// Machine-readable reason ([`DENY_DIGEST_MISMATCH`], …).
        code: u8,
        /// Human-readable detail.
        detail: String,
    },
    /// Worker → coordinator: ready for an assignment.
    Request,
    /// Coordinator → worker: measure campaign entry `index`.
    Assign {
        /// Campaign index of the assigned entry.
        index: u64,
    },
    /// Coordinator → worker: no work remains; fetch results or say
    /// [`Frame::Bye`].
    Finished {
        /// True when every entry produced a report (a fail-fast error or
        /// cancellation leaves this false).
        complete: bool,
    },
    /// Coordinator → worker: the campaign was cancelled; stop asking.
    Abort,
    /// Worker → coordinator: measurement of entry `index` began.
    Started {
        /// Campaign index.
        index: u64,
        /// Kernel label (mirrors
        /// [`CampaignObserver::entry_started`]).
        label: String,
    },
    /// Worker → coordinator: one scoped progress event of the in-flight
    /// entry.
    Event {
        /// Campaign index.
        index: u64,
        /// The stage-boundary or device event.
        event: ProfilingEvent,
    },
    /// Worker → coordinator: entry `index` finished; the payload is the
    /// entry's `FGRVCKPT` artifact, byte-for-byte what
    /// [`EntryArtifact::write_to`](crate::checkpoint::EntryArtifact::write_to) persists.
    Done {
        /// Campaign index.
        index: u64,
        /// Encoded [`EntryArtifact`](crate::checkpoint::EntryArtifact).
        artifact: Vec<u8>,
    },
    /// Worker → coordinator: entry `index` failed.
    Failed {
        /// Campaign index.
        index: u64,
        /// The typed failure ([`MethodologyError::Aborted`] marks a
        /// cooperative abort, which the coordinator re-plans instead of
        /// recording).
        error: MethodologyError,
    },
    /// Worker → coordinator: send back entry `index`'s artifact (valid
    /// once [`Frame::Finished`] reported the campaign complete).
    Fetch {
        /// Campaign index.
        index: u64,
    },
    /// Coordinator → worker: reply to [`Frame::Fetch`]; encoded
    /// [`EntryArtifact`](crate::checkpoint::EntryArtifact).
    Artifact {
        /// Encoded [`EntryArtifact`](crate::checkpoint::EntryArtifact).
        artifact: Vec<u8>,
    },
    /// Worker → coordinator: the worker is leaving; close the connection.
    Bye,
    /// Either direction: liveness proof, empty payload (since wire v2).
    /// Workers pump one every [`WorkerOptions::heartbeat`] from a
    /// dedicated thread (so a long-running measurement still beats); the
    /// coordinator beats back while it deliberates an assignment.
    /// Receivers renew the peer's idle deadline and otherwise ignore it —
    /// a heartbeat is valid in any protocol state after the handshake.
    Heartbeat,
}

fn write_bytes<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    (bytes.len() as u64).encode(w)?;
    w.write_all(bytes)
}

/// Reads `len` bytes with bounded, chunked allocation: the length is
/// validated against [`MAX_FRAME_LEN`] *before* any narrowing cast (so a
/// huge value cannot wrap on 32-bit targets), and capacity is committed
/// at most one chunk ahead of the bytes actually arriving, so a corrupt
/// length fails with `Truncated` instead of driving memory commitment.
fn read_bounded<R: Read>(
    r: &mut R,
    len: u64,
    block: &'static str,
) -> Result<Vec<u8>, CheckpointError> {
    if len > MAX_FRAME_LEN {
        cover::hit(cover::WIRE_BLOCK_IMPLAUSIBLE_LEN);
        return Err(CheckpointError::Corrupt(format!(
            "implausible byte-block length {len}"
        )));
    }
    let len = usize::try_from(len)
        .map_err(|_| CheckpointError::Corrupt(format!("implausible byte-block length {len}")))?;
    let mut out = Vec::with_capacity(len.min(READ_CHUNK));
    let mut remaining = len;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        crate::checkpoint::read_exact_ck(r, &mut chunk[..take], block)?;
        out.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(out)
}

fn read_bytes<R: Read>(r: &mut R, block: &'static str) -> Result<Vec<u8>, CheckpointError> {
    let len = u64::decode(r)?;
    read_bounded(r, len, block)
}

impl Frame {
    fn tag(&self) -> u32 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Welcome { .. } => TAG_WELCOME,
            Frame::Deny { .. } => TAG_DENY,
            Frame::Request => TAG_REQUEST,
            Frame::Assign { .. } => TAG_ASSIGN,
            Frame::Finished { .. } => TAG_FINISHED,
            Frame::Abort => TAG_ABORT,
            Frame::Started { .. } => TAG_STARTED,
            Frame::Event { .. } => TAG_EVENT,
            Frame::Done { .. } => TAG_DONE,
            Frame::Failed { .. } => TAG_FAILED,
            Frame::Fetch { .. } => TAG_FETCH,
            Frame::Artifact { .. } => TAG_ARTIFACT,
            Frame::Bye => TAG_BYE,
            Frame::Heartbeat => TAG_HEARTBEAT,
        }
    }

    /// Encodes the payload. Fallible, not for I/O (the sink is a `Vec`),
    /// but because a field can refuse to encode — a future
    /// `TelemetryEvent` variant this wire version has no tag for
    /// surfaces here as an error rather than a panic or a silent drop.
    fn encode_payload(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let w = &mut out;
        let result: io::Result<()> = (|| match self {
            Frame::Hello { digest, sequence } => {
                digest.encode(w)?;
                sequence.encode(w)
            }
            Frame::Welcome { shard, entries } => {
                shard.encode(w)?;
                entries.encode(w)
            }
            Frame::Deny { code, detail } => {
                code.encode(w)?;
                detail.encode(w)
            }
            Frame::Request | Frame::Abort | Frame::Bye | Frame::Heartbeat => Ok(()),
            Frame::Assign { index } | Frame::Fetch { index } => index.encode(w),
            Frame::Finished { complete } => complete.encode(w),
            Frame::Started { index, label } => {
                index.encode(w)?;
                label.encode(w)
            }
            Frame::Event { index, event } => {
                index.encode(w)?;
                event.encode(w)
            }
            Frame::Done { index, artifact } => {
                index.encode(w)?;
                write_bytes(w, artifact)
            }
            Frame::Failed { index, error } => {
                index.encode(w)?;
                error.encode(w)
            }
            Frame::Artifact { artifact } => write_bytes(w, artifact),
        })();
        result.map(|()| out)
    }

    /// The coverage site lit when a frame with `tag` decodes cleanly.
    fn ok_site(tag: u32) -> u16 {
        match tag {
            TAG_HELLO => cover::WIRE_OK_HELLO,
            TAG_WELCOME => cover::WIRE_OK_WELCOME,
            TAG_DENY => cover::WIRE_OK_DENY,
            TAG_REQUEST => cover::WIRE_OK_REQUEST,
            TAG_ASSIGN => cover::WIRE_OK_ASSIGN,
            TAG_FINISHED => cover::WIRE_OK_FINISHED,
            TAG_ABORT => cover::WIRE_OK_ABORT,
            TAG_STARTED => cover::WIRE_OK_STARTED,
            TAG_EVENT => cover::WIRE_OK_EVENT,
            TAG_DONE => cover::WIRE_OK_DONE,
            TAG_FAILED => cover::WIRE_OK_FAILED,
            TAG_FETCH => cover::WIRE_OK_FETCH,
            TAG_ARTIFACT => cover::WIRE_OK_ARTIFACT,
            TAG_BYE => cover::WIRE_OK_BYE,
            _ => cover::WIRE_OK_HEARTBEAT,
        }
    }

    fn decode_payload(tag: u32, payload: &[u8]) -> Result<Frame, CheckpointError> {
        let frame = crate::checkpoint::from_bytes_with(payload, |r| match tag {
            TAG_HELLO => Ok(Frame::Hello {
                digest: u64::decode(r)?,
                sequence: u64::decode(r)?,
            }),
            TAG_WELCOME => Ok(Frame::Welcome {
                shard: u32::decode(r)?,
                entries: u64::decode(r)?,
            }),
            TAG_DENY => Ok(Frame::Deny {
                code: u8::decode(r)?,
                detail: String::decode(r)?,
            }),
            TAG_REQUEST => Ok(Frame::Request),
            TAG_ASSIGN => Ok(Frame::Assign {
                index: u64::decode(r)?,
            }),
            TAG_FINISHED => Ok(Frame::Finished {
                complete: bool::decode(r)?,
            }),
            TAG_ABORT => Ok(Frame::Abort),
            TAG_STARTED => Ok(Frame::Started {
                index: u64::decode(r)?,
                label: String::decode(r)?,
            }),
            TAG_EVENT => Ok(Frame::Event {
                index: u64::decode(r)?,
                event: ProfilingEvent::decode(r)?,
            }),
            TAG_DONE => Ok(Frame::Done {
                index: u64::decode(r)?,
                artifact: read_bytes(r, "done artifact")?,
            }),
            TAG_FAILED => Ok(Frame::Failed {
                index: u64::decode(r)?,
                error: MethodologyError::decode(r)?,
            }),
            TAG_FETCH => Ok(Frame::Fetch {
                index: u64::decode(r)?,
            }),
            TAG_ARTIFACT => Ok(Frame::Artifact {
                artifact: read_bytes(r, "artifact")?,
            }),
            TAG_BYE => Ok(Frame::Bye),
            TAG_HEARTBEAT => Ok(Frame::Heartbeat),
            other => {
                cover::hit(cover::WIRE_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown frame tag {other}"
                )))
            }
        })?;
        cover::hit(Frame::ok_site(tag));
        Ok(frame)
    }

    /// Writes the frame (tag, payload length, payload). The caller
    /// flushes; frames may be buffered.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let payload = self.encode_payload()?;
        w.write_all(&self.tag().to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&payload)
    }

    /// Reads one frame previously written by [`Frame::write_to`].
    ///
    /// # Errors
    ///
    /// Returns the typed [`TransportError`] for truncated streams,
    /// implausible lengths, unknown tags, and payloads that decode short,
    /// long, or corrupt.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, TransportError> {
        let mut tag = [0u8; 4];
        crate::checkpoint::read_exact_ck(r, &mut tag, "frame tag")?;
        let tag = u32::from_le_bytes(tag);
        let mut len = [0u8; 8];
        crate::checkpoint::read_exact_ck(r, &mut len, "frame length")?;
        let len = u64::from_le_bytes(len);
        if len > MAX_FRAME_LEN {
            cover::hit(cover::WIRE_FRAME_IMPLAUSIBLE_LEN);
            return Err(TransportError::Corrupt(format!(
                "implausible frame length {len}"
            )));
        }
        let payload = read_bounded(r, len, "frame payload")?;
        Ok(Frame::decode_payload(tag, &payload)?)
    }
}

/// Writes the 16-byte preamble: magic, wire version, reserved.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_preamble<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(&WIRE_MAGIC)?;
    w.write_all(&WIRE_VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())
}

/// Reads and validates a peer's preamble.
///
/// # Errors
///
/// Returns [`TransportError::BadMagic`] /
/// [`TransportError::UnsupportedVersion`] on a foreign or
/// differently-versioned peer, [`TransportError::Truncated`] when the
/// stream ends inside the preamble.
pub fn read_preamble<R: Read>(r: &mut R) -> Result<(), TransportError> {
    let mut magic = [0u8; 8];
    crate::checkpoint::read_exact_ck(r, &mut magic, "preamble magic")?;
    if magic != WIRE_MAGIC {
        cover::hit(cover::WIRE_PREAMBLE_BAD_MAGIC);
        return Err(TransportError::BadMagic(magic));
    }
    let mut version = [0u8; 4];
    crate::checkpoint::read_exact_ck(r, &mut version, "preamble version")?;
    let version = u32::from_le_bytes(version);
    if version != WIRE_VERSION {
        cover::hit(cover::WIRE_PREAMBLE_BAD_VERSION);
        return Err(TransportError::UnsupportedVersion(version));
    }
    let mut reserved = [0u8; 4];
    crate::checkpoint::read_exact_ck(r, &mut reserved, "preamble reserved")?;
    cover::hit(cover::WIRE_PREAMBLE_OK);
    Ok(())
}

// ---------------------------------------------------------------------
// Deadline-tolerant reads
// ---------------------------------------------------------------------
//
// A socket with a read timeout surfaces `WouldBlock`/`TimedOut` mid-read;
// `read_exact` would lose any bytes it had already consumed, so these
// helpers accumulate into caller-held buffers — a deadline tick never
// discards partial progress, and only *silence* (no bytes at all for the
// whole idle budget) abandons the connection. Every arriving byte resets
// the budget, so heartbeats are all a live-but-slow peer needs.

/// Fills `buf` exactly, tolerating timeout ticks. `tick` runs on every
/// timeout wakeup (for cancellation or eviction checks); returning an
/// error from it abandons the read.
fn fill_budgeted<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    block: &'static str,
    idle: Duration,
    tick: &mut dyn FnMut() -> Result<(), TransportError>,
) -> Result<(), TransportError> {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(TransportError::Truncated(block)),
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                tick()?;
                let silent_for = last_progress.elapsed();
                if silent_for >= idle {
                    return Err(TransportError::DeadlineLapsed { silent_for });
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// [`read_preamble`] over a deadline-carrying stream. Validates the magic
/// as soon as its 8 bytes arrive (a foreign peer is rejected without
/// waiting for a full preamble it will never send).
fn read_preamble_budgeted<R: Read>(
    r: &mut R,
    idle: Duration,
    tick: &mut dyn FnMut() -> Result<(), TransportError>,
) -> Result<(), TransportError> {
    let mut magic = [0u8; 8];
    fill_budgeted(r, &mut magic, "preamble magic", idle, tick)?;
    if magic != WIRE_MAGIC {
        cover::hit(cover::WIRE_PREAMBLE_BAD_MAGIC);
        return Err(TransportError::BadMagic(magic));
    }
    let mut version = [0u8; 4];
    fill_budgeted(r, &mut version, "preamble version", idle, tick)?;
    let mut reserved = [0u8; 4];
    fill_budgeted(r, &mut reserved, "preamble reserved", idle, tick)?;
    let version = u32::from_le_bytes(version);
    if version != WIRE_VERSION {
        cover::hit(cover::WIRE_PREAMBLE_BAD_VERSION);
        return Err(TransportError::UnsupportedVersion(version));
    }
    cover::hit(cover::WIRE_PREAMBLE_OK);
    Ok(())
}

/// [`Frame::read_from`] over a deadline-carrying stream: same validation
/// (length ceiling before allocation, chunked payload reads), but timeout
/// ticks run `tick` and only sustained silence fails.
fn read_frame_budgeted<R: Read>(
    r: &mut R,
    idle: Duration,
    tick: &mut dyn FnMut() -> Result<(), TransportError>,
) -> Result<Frame, TransportError> {
    let mut tag = [0u8; 4];
    fill_budgeted(r, &mut tag, "frame tag", idle, tick)?;
    let mut len = [0u8; 8];
    fill_budgeted(r, &mut len, "frame length", idle, tick)?;
    let tag = u32::from_le_bytes(tag);
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        cover::hit(cover::WIRE_FRAME_IMPLAUSIBLE_LEN);
        return Err(TransportError::Corrupt(format!(
            "implausible frame length {len}"
        )));
    }
    let len = usize::try_from(len)
        .map_err(|_| TransportError::Corrupt(format!("implausible frame length {len}")))?;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    let mut remaining = len;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        fill_budgeted(r, &mut chunk[..take], "frame payload", idle, tick)?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(Frame::decode_payload(tag, &payload)?)
}

/// Reads the next non-heartbeat frame (the worker-side read: heartbeats
/// renew the deadline by arriving, then vanish).
fn next_frame<R: Read>(r: &mut R, idle: Duration) -> Result<Frame, TransportError> {
    loop {
        match read_frame_budgeted(r, idle, &mut || Ok(()))? {
            Frame::Heartbeat => cover::hit(cover::WIRE_HEARTBEAT_SKIPPED),
            frame => return Ok(frame),
        }
    }
}

/// Reads the next non-heartbeat frame from a stream, tolerating timeout
/// ticks up to `idle` of total byte-silence — the exact read loop both
/// protocol ends run between protocol states (heartbeats renew the
/// deadline by arriving, then vanish before the caller sees them).
///
/// Public so stream consumers outside the coordinator/worker pair — the
/// `fgrv-fuzz` wire harness, protocol probes, tests — can exercise the
/// production read path, v2 heartbeat skipping and deadline accounting
/// included, instead of approximating it with [`Frame::read_from`].
///
/// # Errors
///
/// As [`Frame::read_from`], plus [`TransportError::DeadlineLapsed`] when
/// the stream stays byte-silent past `idle`.
pub fn read_next_frame<R: Read>(r: &mut R, idle: Duration) -> Result<Frame, TransportError> {
    next_frame(r, idle)
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// The serving half of a cross-node campaign: binds a listener, plans (or
/// resumes) the campaign into a [`CheckpointDir`], hands entries to
/// connecting workers, and persists every artifact they stream back.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    policy: ErrorPolicy,
    sequence: u64,
    idle: Duration,
}

struct CoordState {
    manifest: CampaignManifest,
    queue: VecDeque<usize>,
    in_flight: usize,
    reports: Vec<Option<KernelPowerReport>>,
    errors: Vec<(usize, MethodologyError)>,
    /// No further assignments: a fail-fast failure or cancellation fired.
    halted: bool,
    next_shard: u32,
    connections: usize,
    persist_failure: Option<CheckpointError>,
    /// One live lease per in-flight assignment; granted on Assign,
    /// renewed by every frame the owning worker delivers, released on
    /// Done/Failed or eviction.
    leases: LeaseTable,
    /// Entries whose lease deadline lapsed and were re-planned, in
    /// eviction order (an entry can appear more than once).
    evictions: Vec<usize>,
}

impl CoordState {
    /// True when no entry is running and none will be assigned again.
    fn over(&self) -> bool {
        self.in_flight == 0 && (self.queue.is_empty() || self.halted)
    }

    /// True when every entry has a report.
    fn complete(&self) -> bool {
        self.reports.iter().all(Option::is_some)
    }
}

struct CoordShared<'a> {
    campaign: &'a Campaign,
    dir: &'a CheckpointDir,
    observer: &'a dyn CampaignObserver,
    cancel: &'a CancellationToken,
    policy: ErrorPolicy,
    digest: u64,
    sequence: u64,
    /// Entry files found on disk before serving started, per campaign
    /// index (re-measured entries must agree with them byte for byte).
    preexisting: Vec<Vec<(u32, PathBuf)>>,
    /// Maximum peer byte-silence before eviction.
    idle: Duration,
    /// Cadence of coordinator → worker heartbeats while an assignment
    /// deliberates (derived from `idle`, so a worker with a matching
    /// deadline always hears several beats per budget).
    heartbeat: Duration,
    state: Mutex<CoordState>,
    cond: Condvar,
}

impl Coordinator {
    /// Binds the coordinator's listener.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Coordinator> {
        Ok(Coordinator::from_listener(TcpListener::bind(addr)?))
    }

    /// Wraps an already-bound listener. Lets one listener host several
    /// campaigns back to back (see [`Coordinator::sequence`]): rebinding
    /// a fixed port per campaign can hit `EADDRINUSE` while the previous
    /// campaign's closed connections sit in TIME_WAIT, so a
    /// multi-campaign process binds once and passes
    /// [`TcpListener::try_clone`]s here.
    pub fn from_listener(listener: TcpListener) -> Coordinator {
        Coordinator {
            listener,
            policy: ErrorPolicy::default(),
            sequence: 0,
            idle: DEFAULT_IDLE_TIMEOUT,
        }
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Sets the error policy applied to worker-reported measurement
    /// failures (transport faults are never errors — they re-plan).
    #[must_use]
    pub fn error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the idle deadline: a connected worker that stays byte-silent
    /// this long (no frames, no heartbeats) is presumed wedged, its
    /// connection is abandoned, and its in-flight assignment is evicted
    /// and re-planned onto the front of the queue. Workers heartbeat
    /// every [`DEFAULT_HEARTBEAT_INTERVAL`] by default, so the deadline
    /// should sit well above that; the default is
    /// [`DEFAULT_IDLE_TIMEOUT`].
    #[must_use]
    pub fn idle_timeout(mut self, idle: Duration) -> Self {
        self.idle = idle;
        self
    }

    /// Sets this campaign's position in a multi-campaign sequence.
    ///
    /// When one address hosts several campaigns back to back (the bench
    /// harness's `--serve` mode), a worker can connect for campaign *n*
    /// while the listener still belongs to campaign *n − 1* (draining)
    /// or *n + 1* (the coordinator restored campaign *n* from a complete
    /// checkpoint without needing a worker). The sequence number lets
    /// the handshake tell those apart: an early worker is told to retry
    /// ([`DENY_SEQUENCE_EARLY`]), a passed-over worker is told its
    /// campaign is already done ([`DENY_SEQUENCE_PASSED`]), and only a
    /// same-sequence digest disagreement is a real mismatch. Standalone
    /// campaigns leave this at 0 on both sides.
    #[must_use]
    pub fn sequence(mut self, sequence: u64) -> Self {
        self.sequence = sequence;
        self
    }

    /// Serves the campaign until every entry is measured (or the campaign
    /// fails/cancels), persisting into `dir` exactly as
    /// [`crate::executor::CampaignExecutor::execute_sharded`] would: the
    /// returned outcome, the checkpoint directory, and everything
    /// [`crate::checkpoint::gather`] derives from it are byte-identical
    /// to a single-node run of the same campaign.
    ///
    /// If `dir` already checkpoints this campaign (digest-verified), the
    /// persisted `Done` entries are restored without re-measurement and
    /// only the rest are served — the cross-node analogue of
    /// [`crate::executor::CampaignExecutor::resume`].
    ///
    /// Blocks until done; workers may connect, leave, and reconnect at
    /// any time (at least one must eventually connect to make progress).
    /// `cancel` stops new assignments immediately and the serve returns
    /// once in-flight remote entries drain.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Checkpoint`] when the directory cannot
    /// be created, verified, or written, and
    /// [`MethodologyError::Transport`] when the listener itself fails
    /// (per-connection faults re-plan instead of failing the serve).
    /// Worker-reported measurement errors stay inside the outcome.
    pub fn serve(
        &self,
        campaign: &Campaign,
        dir: &Path,
        observer: &dyn CampaignObserver,
        cancel: &CancellationToken,
    ) -> MethodologyResult<CampaignOutcome> {
        let ckdir = CheckpointDir::create(dir).map_err(MethodologyError::from)?;
        let n = campaign.len();
        let (mut manifest, restored_reports, plan) = if ckdir.manifest_path().is_file() {
            let mut existing = ckdir.read_manifest().map_err(MethodologyError::from)?;
            existing
                .verify_against(campaign)
                .map_err(MethodologyError::from)?;
            let (restored, plan) = restore_done_entries(&ckdir, campaign, &mut existing)
                .map_err(MethodologyError::from)?;
            (existing, restored, plan)
        } else {
            (
                CampaignManifest::plan_remote(campaign),
                Vec::new(),
                (0..n).collect(),
            )
        };
        manifest.workers = 1;
        ckdir
            .write_manifest(&manifest)
            .map_err(MethodologyError::from)?;

        let mut reports: Vec<Option<KernelPowerReport>> = Vec::with_capacity(n);
        reports.resize_with(n, || None);
        for (index, report) in restored_reports {
            reports[index] = Some(report);
        }

        // One scan up front: files left by an earlier (crashed) run are
        // indexed so re-measured entries can be verified against them.
        let mut preexisting: Vec<Vec<(u32, PathBuf)>> = vec![Vec::new(); n];
        for (shard, index, path) in ckdir.entry_files().map_err(MethodologyError::from)? {
            if index < n {
                preexisting[index].push((shard, path));
            }
        }

        let shared = CoordShared {
            campaign,
            dir: &ckdir,
            observer,
            cancel,
            policy: self.policy,
            digest: manifest.config_digest,
            sequence: self.sequence,
            preexisting,
            idle: self.idle,
            heartbeat: (self.idle / 4).clamp(POLL_INTERVAL, DEFAULT_HEARTBEAT_INTERVAL),
            state: Mutex::new(CoordState {
                manifest,
                queue: plan.iter().copied().collect(),
                in_flight: 0,
                reports,
                errors: Vec::new(),
                halted: false,
                next_shard: 0,
                connections: 0,
                persist_failure: None,
                leases: LeaseTable::new(),
                evictions: Vec::new(),
            }),
            cond: Condvar::new(),
        };

        if !plan.is_empty() {
            self.accept_loop(&shared).map_err(MethodologyError::from)?;
        }

        let mut state = shared.state.into_inner().expect("coordinator state");
        let mut outcome = CampaignOutcome::empty(n);
        outcome.reports = std::mem::take(&mut state.reports);
        state.errors.sort_by_key(|(index, _)| *index);
        outcome.errors = std::mem::take(&mut state.errors);
        outcome.skipped = state
            .queue
            .iter()
            .copied()
            .filter(|&i| {
                outcome.reports[i].is_none() && !outcome.errors.iter().any(|(e, _)| *e == i)
            })
            .collect();
        outcome.skipped.sort_unstable();
        outcome.evictions = std::mem::take(&mut state.evictions);
        for &index in &outcome.skipped {
            observer.entry_skipped(index);
        }
        if let Some(e) = state.persist_failure {
            return Err(e.into());
        }
        Ok(outcome)
    }

    fn accept_loop(&self, shared: &CoordShared<'_>) -> Result<(), TransportError> {
        self.listener.set_nonblocking(true).map_err(io_err)?;
        std::thread::scope(|scope| -> Result<(), TransportError> {
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        stream.set_nonblocking(false).map_err(io_err)?;
                        shared.lock().connections += 1;
                        scope.spawn(move || serve_connection(shared, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        {
                            let mut state = shared.lock();
                            // Cancellation must be observed here too: with
                            // no worker connected nothing else ever sets
                            // `halted`, and a cancelled serve has to
                            // return even if entries are still queued.
                            if shared.cancel.is_aborted() {
                                state.halted = true;
                            }
                            if state.over() && state.connections == 0 {
                                return Ok(());
                            }
                            if state.persist_failure.is_some() && state.connections == 0 {
                                return Ok(());
                            }
                        }
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => return Err(TransportError::Io(e)),
                }
            }
        })
    }
}

fn io_err(e: io::Error) -> TransportError {
    TransportError::Io(e)
}

impl<'a> CoordShared<'a> {
    fn lock(&self) -> std::sync::MutexGuard<'_, CoordState> {
        self.state.lock().expect("coordinator state lock")
    }
}

/// Per-connection coordinator logic. Never returns an error to the accept
/// loop: a faulty connection re-plans its in-flight entry and dies alone.
fn serve_connection(shared: &CoordShared<'_>, stream: TcpStream) {
    let mut current: Option<usize> = None;
    let result = handle_connection(shared, stream, &mut current);
    let deadline_lapsed = matches!(result, Err(TransportError::DeadlineLapsed { .. }));
    let mut state = shared.lock();
    let mut evicted = None;
    if let Some(index) = current.take() {
        // The worker vanished mid-entry: put the entry back at the front
        // of the queue so another worker picks it up promptly.
        state.queue.push_front(index);
        state.in_flight -= 1;
        state.leases.release(index);
        if deadline_lapsed {
            state.evictions.push(index);
            evicted = Some(index);
        }
    }
    state.connections -= 1;
    drop(state);
    if let Some(index) = evicted {
        shared.observer.entry_evicted(index);
    }
    shared.cond.notify_all();
}

fn handle_connection(
    shared: &CoordShared<'_>,
    stream: TcpStream,
    current: &mut Option<usize>,
) -> Result<(), TransportError> {
    stream.set_nodelay(true).ok();
    // Deadline discipline: reads wake every poll tick so silence is
    // *observed* instead of wedging the thread; writes cannot block past
    // the idle budget either (a dead peer with a full TCP window).
    stream
        .set_read_timeout(Some(read_poll(shared.idle)))
        .map_err(io_err)?;
    stream
        .set_write_timeout(Some(shared.idle))
        .map_err(io_err)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
    let mut writer = BufWriter::new(stream);

    // Handshake: the worker leads with its preamble and Hello; the
    // coordinator answers with its preamble and Welcome or Deny.
    read_preamble_budgeted(&mut reader, shared.idle, &mut || Ok(()))?;
    let hello = read_frame_budgeted(&mut reader, shared.idle, &mut || Ok(()))?;
    let (digest, sequence) = match hello {
        Frame::Hello { digest, sequence } => (digest, sequence),
        other => {
            return Err(TransportError::Protocol(format!(
                "expected Hello, got {other:?}"
            )))
        }
    };
    write_preamble(&mut writer).map_err(io_err)?;
    let deny = if sequence < shared.sequence {
        Some((
            DENY_SEQUENCE_PASSED,
            format!(
                "coordinator is already serving campaign #{} (worker asked for #{sequence})",
                shared.sequence
            ),
        ))
    } else if sequence > shared.sequence {
        Some((
            DENY_SEQUENCE_EARLY,
            format!(
                "coordinator is still serving campaign #{} (worker asked for #{sequence}); \
                 reconnect shortly",
                shared.sequence
            ),
        ))
    } else if digest != shared.digest {
        Some((
            DENY_DIGEST_MISMATCH,
            format!(
                "campaign digest mismatch (worker has {digest:016x}, coordinator \
                 serves {:016x})",
                shared.digest
            ),
        ))
    } else {
        None
    };
    if let Some((code, detail)) = deny {
        Frame::Deny {
            code,
            detail: detail.clone(),
        }
        .write_to(&mut writer)
        .map_err(io_err)?;
        writer.flush().map_err(io_err)?;
        return Err(if code == DENY_DIGEST_MISMATCH {
            TransportError::DigestMismatch {
                expected: shared.digest,
                found: digest,
            }
        } else {
            TransportError::Denied { code, detail }
        });
    }
    let shard = {
        let mut state = shared.lock();
        let shard = state.next_shard;
        state.next_shard += 1;
        state.manifest.workers = state.next_shard.max(1);
        shard
    };
    Frame::Welcome {
        shard,
        entries: shared.campaign.len() as u64,
    }
    .write_to(&mut writer)
    .map_err(io_err)?;
    writer.flush().map_err(io_err)?;

    loop {
        let frame = read_frame_budgeted(&mut reader, shared.idle, &mut || Ok(()))?;
        if let Some(index) = *current {
            // Any frame from the owning worker — heartbeats included —
            // proves the assignment is still alive.
            shared.lock().leases.renew(index);
        }
        match frame {
            Frame::Request => loop {
                match next_assignment_step(shared, current, shard, shared.heartbeat) {
                    Some(reply) => {
                        reply.write_to(&mut writer).map_err(io_err)?;
                        writer.flush().map_err(io_err)?;
                        break;
                    }
                    None => {
                        // Still deliberating (another worker holds the
                        // queue's tail): beat so the waiting worker can
                        // tell a thinking coordinator from a dead one.
                        Frame::Heartbeat.write_to(&mut writer).map_err(io_err)?;
                        writer.flush().map_err(io_err)?;
                    }
                }
            },
            Frame::Started { index, label } => {
                let index = expect_current(shared, *current, index)?;
                shared.observer.entry_started(index, &label);
            }
            Frame::Event { index, event } => {
                let index = expect_current(shared, *current, index)?;
                shared.observer.entry_event(index, &event);
            }
            Frame::Done { index, artifact } => {
                let index = expect_current(shared, *current, index)?;
                entry_done(shared, shard, index, &artifact)?;
                shared.lock().leases.release(index);
                *current = None;
                shared.cond.notify_all();
            }
            Frame::Failed { index, error } => {
                let index = expect_current(shared, *current, index)?;
                entry_failed(shared, index, error);
                shared.lock().leases.release(index);
                *current = None;
                shared.cond.notify_all();
            }
            Frame::Fetch { index } => {
                let reply = fetch_artifact(shared, index)?;
                reply.write_to(&mut writer).map_err(io_err)?;
                writer.flush().map_err(io_err)?;
            }
            Frame::Bye => return Ok(()),
            Frame::Heartbeat => {}
            other => {
                return Err(TransportError::Protocol(format!(
                    "unexpected worker frame {other:?}"
                )))
            }
        }
    }
}

/// Waits up to `budget` for an entry to become assignable, the campaign
/// to end, or a cancellation; `Some` is the frame to send, `None` means
/// the budget ran out undecided (the caller heartbeats and tries again,
/// so the waiting worker's own idle deadline keeps getting fed).
fn next_assignment_step(
    shared: &CoordShared<'_>,
    current: &mut Option<usize>,
    shard: u32,
    budget: Duration,
) -> Option<Frame> {
    let started = Instant::now();
    let mut state = shared.lock();
    loop {
        if shared.cancel.is_aborted() {
            state.halted = true;
            return Some(Frame::Abort);
        }
        if state.persist_failure.is_some() {
            state.halted = true;
            return Some(Frame::Abort);
        }
        if !state.halted {
            if let Some(index) = state.queue.pop_front() {
                state.in_flight += 1;
                state.leases.grant(index, shard, shared.idle);
                *current = Some(index);
                return Some(Frame::Assign {
                    index: index as u64,
                });
            }
        }
        if state.over() {
            return Some(Frame::Finished {
                complete: state.complete(),
            });
        }
        if started.elapsed() >= budget {
            return None;
        }
        let (next, _timeout) = shared
            .cond
            .wait_timeout(state, POLL_INTERVAL)
            .expect("coordinator state lock");
        state = next;
    }
}

/// Validates that a worker frame names the entry it was assigned.
fn expect_current(
    shared: &CoordShared<'_>,
    current: Option<usize>,
    index: u64,
) -> Result<usize, TransportError> {
    let index = index as usize;
    if index >= shared.campaign.len() {
        return Err(TransportError::Protocol(format!(
            "frame names entry {index} but the campaign has only {} entries",
            shared.campaign.len()
        )));
    }
    if current != Some(index) {
        return Err(TransportError::Protocol(format!(
            "frame names entry {index} but the connection was assigned {current:?}"
        )));
    }
    Ok(index)
}

/// Persists a finished entry exactly as a local sharded run would, then
/// records its report.
fn entry_done(
    shared: &CoordShared<'_>,
    shard: u32,
    index: usize,
    bytes: &[u8],
) -> Result<(), TransportError> {
    // Parse the received frame payload in place: the three profile
    // stores stay borrowed views over `bytes`, so validating the
    // artifact does not materialise its per-column `Vec`s.
    let view = EntryArtifactView::parse(bytes)?;
    if view.index as usize != index {
        return Err(TransportError::Protocol(format!(
            "artifact claims index {} but was delivered for entry {index}",
            view.index
        )));
    }
    if view.config_digest != shared.digest {
        return Err(TransportError::DigestMismatch {
            expected: shared.digest,
            found: view.config_digest,
        });
    }
    if view.label() != shared.campaign.entries()[index].desc.name {
        return Err(TransportError::Protocol(format!(
            "artifact for entry {index} is labelled `{}` but the campaign says `{}`",
            view.label(),
            shared.campaign.entries()[index].desc.name
        )));
    }
    // A file for this entry may already exist (crash window of an earlier
    // run, or a worker that died after its artifact was persisted but
    // before its manifest update). The fresh result must be bit-identical.
    // A mismatch is a *checkpoint* fault, not a connection fault:
    // measurement is deterministic, so re-planning the entry would
    // reproduce the same mismatch forever — halt the serve and surface
    // the typed error instead (exactly what gather/resume do for the
    // same tampered file).
    let duplicates_ok = (|| -> Result<(), CheckpointError> {
        for (old_shard, path) in &shared.preexisting[index] {
            let old = crate::mmap::MappedProfile::open(path)?;
            crate::checkpoint::verify_duplicate_bytes(
                index,
                *old_shard,
                old.bytes(),
                shard,
                bytes,
            )?;
        }
        Ok(())
    })();
    if let Err(e) = duplicates_ok {
        let mut state = shared.lock();
        if state.persist_failure.is_none() {
            state.persist_failure = Some(e);
        }
        state.halted = true;
        state.in_flight -= 1;
        drop(state);
        shared.cond.notify_all();
        return Ok(());
    }
    // One decode materialises the report for the in-memory record; the
    // file gets the received bytes verbatim (the encoding is canonical,
    // so they are exactly what a local `write_entry` would have written).
    let report = view.to_report();
    let persist = (|| -> Result<(), CheckpointError> {
        shared.dir.write_entry_bytes(shard, index, bytes)?;
        let mut state = shared.lock();
        state.manifest.entries[index].shard = shard;
        state.manifest.entries[index].status = EntryStatus::Done;
        shared.dir.write_manifest(&state.manifest)?;
        state.in_flight -= 1;
        state.reports[index] = Some(report.clone());
        Ok(())
    })();
    if let Some(e) = persist.err() {
        let mut state = shared.lock();
        if state.persist_failure.is_none() {
            state.persist_failure = Some(e);
        }
        state.halted = true;
        // The entry itself arrived fine; only persistence failed. Leave
        // in_flight consistent so the serve can drain.
        if state.reports[index].is_none() {
            state.in_flight -= 1;
        }
        drop(state);
        shared.observer.entry_finished(index, &report);
        return Ok(());
    }
    shared.observer.entry_finished(index, &report);
    Ok(())
}

/// Records a worker-reported failure: aborts re-plan, real errors follow
/// the error policy.
fn entry_failed(shared: &CoordShared<'_>, index: usize, error: MethodologyError) {
    let mut state = shared.lock();
    state.in_flight -= 1;
    if matches!(error, MethodologyError::Aborted) && !shared.cancel.is_aborted() {
        // A worker being shut down (its local cancellation) is a
        // transport-level fault, not a measurement verdict: re-plan.
        state.manifest.entries[index].status = EntryStatus::Aborted;
        state.queue.push_front(index);
    } else {
        let status = if matches!(error, MethodologyError::Aborted) {
            EntryStatus::Aborted
        } else {
            EntryStatus::Failed
        };
        state.manifest.entries[index].status = status;
        state.errors.push((index, error.clone()));
        if shared.policy == ErrorPolicy::FailFast {
            state.halted = true;
        }
    }
    let persist = shared.dir.write_manifest(&state.manifest);
    if let Err(e) = persist {
        if state.persist_failure.is_none() {
            state.persist_failure = Some(e);
        }
        state.halted = true;
    }
    drop(state);
    shared.observer.entry_failed(index, &error);
}

/// Serves a Fetch request from the in-memory outcome.
fn fetch_artifact(shared: &CoordShared<'_>, index: u64) -> Result<Frame, TransportError> {
    let index = index as usize;
    if index >= shared.campaign.len() {
        return Err(TransportError::Protocol(format!(
            "fetch names entry {index} but the campaign has only {} entries",
            shared.campaign.len()
        )));
    }
    let (has_report, shard) = {
        let state = shared.lock();
        (
            state.reports[index].is_some(),
            state.manifest.entries[index].shard,
        )
    };
    if !has_report {
        return Err(TransportError::Protocol(format!(
            "fetch for entry {index}, which has no report"
        )));
    }
    // Zero-copy path: the artifact was persisted verbatim when its Done
    // frame arrived, so serve the file's bytes straight back instead of
    // cloning and re-encoding the in-memory report. The cheap parse
    // guards against a damaged or replaced file — on any doubt, fall
    // back to re-encoding from the report.
    if let Ok(bytes) = std::fs::read(shared.dir.entry_path(shard, index)) {
        if EntryArtifactView::parse(&bytes)
            .is_ok_and(|v| v.index as usize == index && v.config_digest == shared.digest)
        {
            return Ok(Frame::Artifact { artifact: bytes });
        }
    }
    let state = shared.lock();
    let Some(report) = state.reports[index].as_ref() else {
        return Err(TransportError::Protocol(format!(
            "fetch for entry {index}, which has no report"
        )));
    };
    let bytes = crate::checkpoint::encode_entry_bytes(index as u32, shared.digest, report);
    drop(state);
    Ok(Frame::Artifact { artifact: bytes })
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// Knobs for [`work`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Leave (with a clean [`Frame::Bye`]) after measuring this many
    /// entries; `None` works until the coordinator says the campaign is
    /// over.
    pub max_entries: Option<usize>,
    /// After the campaign completes, download every entry artifact so
    /// [`WorkerSummary::reports`] holds the full campaign-ordered report
    /// set (what the bench harness uses to render identical artefacts on
    /// every node).
    pub fetch_reports: bool,
    /// This campaign's position in a multi-campaign sequence (see
    /// [`Coordinator::sequence`]); 0 for standalone campaigns.
    pub sequence: u64,
    /// Maximum coordinator byte-silence (no reply frames, no heartbeats)
    /// before this worker abandons the connection with
    /// [`TransportError::DeadlineLapsed`]. Default
    /// [`DEFAULT_IDLE_TIMEOUT`].
    pub io_timeout: Duration,
    /// Interval between this worker's [`Frame::Heartbeat`] frames
    /// (pumped from a dedicated thread, so long measurements still
    /// beat). Must sit well under the coordinator's idle deadline.
    /// Default [`DEFAULT_HEARTBEAT_INTERVAL`].
    pub heartbeat: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            max_entries: None,
            fetch_reports: false,
            sequence: 0,
            io_timeout: DEFAULT_IDLE_TIMEOUT,
            heartbeat: DEFAULT_HEARTBEAT_INTERVAL,
        }
    }
}

/// What a worker did during one [`work`] call.
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// Shard id the coordinator assigned this connection.
    pub shard: u32,
    /// Campaign indices this worker measured and delivered, in
    /// completion order.
    pub completed: Vec<usize>,
    /// True when the coordinator reported the campaign complete before
    /// this worker left.
    pub campaign_complete: bool,
    /// True when the coordinator cancelled the campaign.
    pub aborted: bool,
    /// The full campaign-ordered report set, when
    /// [`WorkerOptions::fetch_reports`] was set and the campaign
    /// completed.
    pub reports: Option<Vec<KernelPowerReport>>,
}

/// Forwards one in-flight entry's lifecycle onto the wire (and to the
/// caller's local observer).
struct WireObserver<'a, W: Write> {
    writer: &'a Mutex<W>,
    inner: &'a dyn CampaignObserver,
    failure: Mutex<Option<io::Error>>,
}

impl<W: Write> WireObserver<'_, W> {
    fn send(&self, frame: Frame, flush: bool) {
        let mut w = self.writer.lock().expect("worker writer lock");
        let result = frame.write_to(&mut *w).and_then(|()| {
            // Entry and stage boundaries flush so the coordinator sees
            // live progress promptly; the (much more frequent) device
            // events ride the buffer and drain with the next flush.
            if flush {
                w.flush()
            } else {
                Ok(())
            }
        });
        if let Err(e) = result {
            let mut slot = self.failure.lock().expect("worker failure lock");
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }
}

impl<W: Write + Send> CampaignObserver for WireObserver<'_, W> {
    fn entry_started(&self, index: usize, label: &str) {
        self.send(
            Frame::Started {
                index: index as u64,
                label: label.to_string(),
            },
            true,
        );
        self.inner.entry_started(index, label);
    }

    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        let boundary = matches!(
            event,
            ProfilingEvent::StageStarted { .. } | ProfilingEvent::StageFinished { .. }
        );
        self.send(
            Frame::Event {
                index: index as u64,
                event: event.clone(),
            },
            boundary,
        );
        self.inner.entry_event(index, event);
    }

    fn entry_finished(&self, index: usize, report: &KernelPowerReport) {
        // The Done frame (with the encoded artifact) is sent by the work
        // loop, which owns the artifact construction.
        self.inner.entry_finished(index, report);
    }

    fn entry_failed(&self, index: usize, error: &MethodologyError) {
        // Likewise: the work loop sends the Failed frame.
        self.inner.entry_failed(index, error);
    }
}

/// Stop signal for the worker's heartbeat pump thread: a plain
/// mutex-and-condvar flag, so stopping wakes the pump immediately instead
/// of waiting out a sleep.
struct PumpStop {
    stopped: Mutex<bool>,
    cond: Condvar,
}

impl PumpStop {
    fn new() -> Self {
        PumpStop {
            stopped: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn stop(&self) {
        *self.stopped.lock().expect("pump stop lock") = true;
        self.cond.notify_all();
    }

    /// Waits out one heartbeat interval; true when stopped meanwhile.
    fn wait(&self, interval: Duration) -> bool {
        let deadline = Instant::now() + interval;
        let mut stopped = self.stopped.lock().expect("pump stop lock");
        loop {
            if *stopped {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _timeout) = self
                .cond
                .wait_timeout(stopped, deadline - now)
                .expect("pump stop lock");
            stopped = next;
        }
    }
}

/// Pumps [`Frame::Heartbeat`] every `interval` until stopped. Runs for
/// the whole connection (the writer mutex keeps frames whole), so a
/// worker blocked in a long measurement *or* waiting out another
/// worker's long entry keeps proving liveness either way. A write
/// failure just stops the pump — the work loop hits the same fault on
/// its own next write or read and surfaces it typed.
fn heartbeat_pump<W: Write>(writer: &Mutex<W>, stop: &PumpStop, interval: Duration) {
    loop {
        if stop.wait(interval) {
            return;
        }
        let mut w = writer.lock().expect("worker writer lock");
        let sent = Frame::Heartbeat.write_to(&mut *w).and_then(|()| w.flush());
        drop(w);
        if sent.is_err() {
            return;
        }
    }
}

/// Connects to a coordinator, retrying with exponential backoff while the
/// address refuses — the coordinator may simply not have started yet
/// (multi-node launches are not synchronized, a multi-campaign process
/// binds its listener lazily at its first serve, and a
/// [`CampaignService`] may be between campaigns). Backoff starts at 10 ms
/// and doubles to a 1 s ceiling, so a worker riding out a long gap costs
/// one probe per second instead of a tight retry loop.
///
/// # Errors
///
/// Returns the last connection error once `timeout` elapses.
pub fn connect_with_retry<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<TcpStream> {
    let started = Instant::now();
    let mut backoff = Duration::from_millis(10);
    loop {
        match TcpStream::connect(&addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                let elapsed = started.elapsed();
                if elapsed >= timeout {
                    return Err(e);
                }
                std::thread::sleep(backoff.min(timeout - elapsed));
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Runs the worker half of a cross-node campaign over `stream`: handshake
/// (digest-verified), then a pull loop — request an entry, measure it via
/// the executor's per-slot path (bit-identical to a local run), stream
/// progress events, deliver the artifact — until the coordinator reports
/// the campaign over, `cancel` fires, or
/// [`WorkerOptions::max_entries`] is reached.
///
/// `observer` sees this worker's slots exactly as a local campaign
/// observer would; `cancel` aborts an in-flight measurement cooperatively
/// (the coordinator re-plans that entry on another worker).
///
/// # Errors
///
/// Returns the typed [`TransportError`] when the connection drops, the
/// coordinator denies the handshake, or the protocol is violated.
pub fn work<F: crate::backend::BackendFactory>(
    stream: TcpStream,
    campaign: &Campaign,
    factory: &F,
    observer: &dyn CampaignObserver,
    cancel: &CancellationToken,
    options: &WorkerOptions,
) -> Result<WorkerSummary, TransportError> {
    stream.set_nodelay(true).ok();
    let idle = options.io_timeout;
    // Same deadline discipline as the coordinator: reads tick instead of
    // wedging, writes cannot block past the idle budget.
    stream
        .set_read_timeout(Some(read_poll(idle)))
        .map_err(io_err)?;
    stream.set_write_timeout(Some(idle)).map_err(io_err)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
    let writer = Mutex::new(BufWriter::new(stream));
    let digest = campaign_digest(campaign);

    let send = |frame: Frame| -> Result<(), TransportError> {
        let mut w = writer.lock().expect("worker writer lock");
        frame.write_to(&mut *w).map_err(io_err)?;
        w.flush().map_err(io_err)
    };

    {
        let mut w = writer.lock().expect("worker writer lock");
        write_preamble(&mut *w).map_err(io_err)?;
        Frame::Hello {
            digest,
            sequence: options.sequence,
        }
        .write_to(&mut *w)
        .map_err(io_err)?;
        w.flush().map_err(io_err)?;
    }
    read_preamble_budgeted(&mut reader, idle, &mut || Ok(()))?;
    let shard = match next_frame(&mut reader, idle)? {
        Frame::Welcome { shard, entries } => {
            if entries != campaign.len() as u64 {
                return Err(TransportError::Protocol(format!(
                    "coordinator serves {entries} entries but the local campaign has {}",
                    campaign.len()
                )));
            }
            shard
        }
        Frame::Deny { code, detail } => return Err(TransportError::Denied { code, detail }),
        other => {
            return Err(TransportError::Protocol(format!(
                "expected Welcome or Deny, got {other:?}"
            )))
        }
    };

    let mut summary = WorkerSummary {
        shard,
        completed: Vec::new(),
        campaign_complete: false,
        aborted: false,
        reports: None,
    };

    // The heartbeat pump shares the frame-atomic writer mutex for the
    // rest of the connection; the scope joins it (after `stop`) before
    // the writer can be dropped.
    let stop = PumpStop::new();
    let run = std::thread::scope(|scope| {
        scope.spawn(|| heartbeat_pump(&writer, &stop, options.heartbeat));
        let result = (|| -> Result<(), TransportError> {
            loop {
                if cancel.is_aborted() {
                    break;
                }
                if options
                    .max_entries
                    .is_some_and(|max| summary.completed.len() >= max)
                {
                    break;
                }
                send(Frame::Request)?;
                match next_frame(&mut reader, idle)? {
                    Frame::Assign { index } => {
                        let index = index as usize;
                        if index >= campaign.len() {
                            return Err(TransportError::Protocol(format!(
                                "assigned entry {index} but the campaign has only {} entries",
                                campaign.len()
                            )));
                        }
                        let wire = WireObserver {
                            writer: &writer,
                            inner: observer,
                            failure: Mutex::new(None),
                        };
                        let result =
                            crate::executor::profile_slot(campaign, factory, index, &wire, cancel);
                        if let Some(e) = wire.failure.into_inner().expect("worker failure lock") {
                            return Err(TransportError::Io(e));
                        }
                        match result {
                            Ok(report) => {
                                send(Frame::Done {
                                    index: index as u64,
                                    artifact: crate::checkpoint::encode_entry_bytes(
                                        index as u32,
                                        digest,
                                        &report,
                                    ),
                                })?;
                                summary.completed.push(index);
                            }
                            Err(error) => {
                                send(Frame::Failed {
                                    index: index as u64,
                                    error,
                                })?;
                            }
                        }
                    }
                    Frame::Finished { complete } => {
                        summary.campaign_complete = complete;
                        break;
                    }
                    Frame::Abort => {
                        summary.aborted = true;
                        break;
                    }
                    other => {
                        return Err(TransportError::Protocol(format!(
                            "expected Assign, Finished, or Abort, got {other:?}"
                        )))
                    }
                }
            }

            if options.fetch_reports && summary.campaign_complete {
                let mut reports = Vec::with_capacity(campaign.len());
                for index in 0..campaign.len() {
                    send(Frame::Fetch {
                        index: index as u64,
                    })?;
                    match next_frame(&mut reader, idle)? {
                        Frame::Artifact { artifact } => {
                            // Validate over the frame buffer, decode the
                            // report once — no owned intermediate artifact.
                            let view = EntryArtifactView::parse(&artifact)?;
                            if view.index as usize != index {
                                return Err(TransportError::Protocol(format!(
                                    "fetched artifact claims index {} (wanted {index})",
                                    view.index
                                )));
                            }
                            if view.config_digest != digest {
                                return Err(TransportError::DigestMismatch {
                                    expected: digest,
                                    found: view.config_digest,
                                });
                            }
                            reports.push(view.to_report());
                        }
                        other => {
                            return Err(TransportError::Protocol(format!(
                                "expected Artifact, got {other:?}"
                            )))
                        }
                    }
                }
                summary.reports = Some(reports);
            }

            send(Frame::Bye)
        })();
        stop.stop();
        result
    });
    run?;
    Ok(summary)
}

/// Convenience: [`connect_with_retry`] + [`work`] with a no-op observer
/// and a fresh token.
///
/// # Errors
///
/// As [`connect_with_retry`] and [`work`].
pub fn work_at<A: ToSocketAddrs, F: crate::backend::BackendFactory>(
    addr: A,
    campaign: &Campaign,
    factory: &F,
    options: &WorkerOptions,
) -> Result<WorkerSummary, TransportError> {
    let stream = connect_with_retry(addr, Duration::from_secs(30)).map_err(TransportError::Io)?;
    work(
        stream,
        campaign,
        factory,
        &NoopCampaignObserver,
        &CancellationToken::new(),
        options,
    )
}

// ---------------------------------------------------------------------
// Campaign service
// ---------------------------------------------------------------------

/// Knobs for [`CampaignService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Idle deadline applied to every served campaign (see
    /// [`Coordinator::idle_timeout`]).
    pub idle_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        }
    }
}

/// Where a submitted campaign sits in the service's pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// Waiting behind earlier submissions.
    Queued,
    /// Being served right now (workers are connecting / measuring).
    Serving,
    /// Finished; [`CampaignTicket::wait`] returns without blocking.
    Done,
}

/// One queued campaign, owned by the service thread once popped.
struct Submission {
    id: u64,
    campaign: Campaign,
    dir: PathBuf,
    policy: ErrorPolicy,
    observer: Option<Arc<dyn CampaignObserver + Send + Sync>>,
    cancel: CancellationToken,
}

/// Submission-order record of one campaign's lifecycle; indexed by id.
struct ServiceRecord {
    phase: CampaignPhase,
    cancel: CancellationToken,
    outcome: Option<MethodologyResult<CampaignOutcome>>,
}

struct ServiceShared {
    listener: TcpListener,
    idle: Duration,
    state: Mutex<ServiceState>,
    cond: Condvar,
}

struct ServiceState {
    submissions: VecDeque<Submission>,
    records: Vec<ServiceRecord>,
    draining: bool,
}

impl ServiceShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.state.lock().expect("campaign service state")
    }
}

/// Handle on one campaign submitted to a [`CampaignService`].
///
/// Clonable and sendable; any holder can watch the campaign's
/// [`phase`](CampaignTicket::phase), [`cancel`](CampaignTicket::cancel)
/// it, or [`wait`](CampaignTicket::wait) for its outcome.
#[derive(Clone)]
pub struct CampaignTicket {
    shared: Arc<ServiceShared>,
    id: u64,
}

impl CampaignTicket {
    /// The wire sequence number this campaign was assigned (submission
    /// order, starting at 0). Workers must pass the same number in
    /// [`WorkerOptions::sequence`] so the handshake routes them to this
    /// campaign (early arrivals are told to retry, late ones that their
    /// campaign already completed).
    pub fn sequence(&self) -> u64 {
        self.id
    }

    /// Where the campaign currently sits.
    pub fn phase(&self) -> CampaignPhase {
        self.shared.lock().records[self.id as usize].phase
    }

    /// Cancels the campaign: a queued submission returns an
    /// all-skipped outcome once its turn comes; a serving one stops
    /// assigning and drains exactly like [`Coordinator::serve`] under
    /// cancellation.
    pub fn cancel(&self) {
        self.shared.lock().records[self.id as usize].cancel.abort();
    }

    /// Blocks until the campaign finishes and returns its outcome (the
    /// same value [`Coordinator::serve`] would return, cloned so every
    /// ticket holder can read it).
    ///
    /// # Errors
    ///
    /// As [`Coordinator::serve`].
    pub fn wait(&self) -> MethodologyResult<CampaignOutcome> {
        let mut state = self.shared.lock();
        loop {
            if let Some(outcome) = &state.records[self.id as usize].outcome {
                return outcome.clone();
            }
            state = self
                .shared
                .cond
                .wait(state)
                .expect("campaign service state");
        }
    }
}

/// An always-on, multi-campaign coordinator daemon: one listener, many
/// campaigns served back to back by a dedicated service thread.
///
/// Each [`submit`](CampaignService::submit) enqueues a campaign and
/// returns a [`CampaignTicket`]; the service thread pops submissions in
/// order and serves each through [`Coordinator::serve`] with the
/// submission index as its wire sequence number, so the existing
/// sequence-negotiated handshake routes every worker to the right
/// campaign without the listener ever rebinding. Per-connection faults,
/// silent-worker evictions, and worker reconnects are all absorbed by
/// the underlying coordinator — a wedged or vanished worker can stall
/// one campaign for at most the configured idle deadline, never the
/// service.
///
/// [`shutdown`](CampaignService::shutdown) drains gracefully (queued
/// campaigns still run); dropping the service instead cancels whatever
/// is queued or serving and joins the thread.
pub struct CampaignService {
    shared: Arc<ServiceShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for CampaignService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("CampaignService")
            .field("queued", &state.submissions.len())
            .field("campaigns", &state.records.len())
            .field("draining", &state.draining)
            .finish()
    }
}

impl CampaignService {
    /// Binds the service's listener and starts its serving thread.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServiceConfig) -> io::Result<CampaignService> {
        Ok(CampaignService::from_listener(
            TcpListener::bind(addr)?,
            config,
        ))
    }

    /// Wraps an already-bound listener and starts the serving thread.
    pub fn from_listener(listener: TcpListener, config: ServiceConfig) -> CampaignService {
        let shared = Arc::new(ServiceShared {
            listener,
            idle: config.idle_timeout,
            state: Mutex::new(ServiceState {
                submissions: VecDeque::new(),
                records: Vec::new(),
                draining: false,
            }),
            cond: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || service_loop(&shared))
        };
        CampaignService {
            shared,
            thread: Some(thread),
        }
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.shared.listener.local_addr()
    }

    /// Enqueues a campaign with the default error policy and no
    /// observer. See [`submit_with`](CampaignService::submit_with).
    pub fn submit(&self, campaign: Campaign, dir: impl Into<PathBuf>) -> CampaignTicket {
        self.submit_with(campaign, dir, ErrorPolicy::default(), None)
    }

    /// Enqueues a campaign; the service thread will serve it (in
    /// submission order) exactly as [`Coordinator::serve`] would with
    /// this policy, observer, and the service's idle deadline,
    /// persisting into `dir`. The returned ticket's
    /// [`sequence`](CampaignTicket::sequence) is what workers must pass
    /// as [`WorkerOptions::sequence`].
    pub fn submit_with(
        &self,
        campaign: Campaign,
        dir: impl Into<PathBuf>,
        policy: ErrorPolicy,
        observer: Option<Arc<dyn CampaignObserver + Send + Sync>>,
    ) -> CampaignTicket {
        let cancel = CancellationToken::new();
        let id = {
            let mut state = self.shared.lock();
            let id = state.records.len() as u64;
            state.records.push(ServiceRecord {
                phase: CampaignPhase::Queued,
                cancel: cancel.clone(),
                outcome: None,
            });
            state.submissions.push_back(Submission {
                id,
                campaign,
                dir: dir.into(),
                policy,
                observer,
                cancel,
            });
            id
        };
        self.shared.cond.notify_all();
        CampaignTicket {
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// Graceful drain: already-submitted campaigns (queued or serving)
    /// run to completion, then the service thread exits and is joined.
    pub fn shutdown(mut self) {
        self.shared.lock().draining = true;
        self.shared.cond.notify_all();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("campaign service thread");
        }
    }
}

impl Drop for CampaignService {
    /// Hard stop: cancels every queued and serving campaign, then joins
    /// the service thread. Bounded by the coordinator's own
    /// cancellation drain (entry-granular cancel plus the idle
    /// deadline), so a wedged worker cannot wedge the drop.
    fn drop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return; // shutdown() already joined
        };
        {
            let mut state = self.shared.lock();
            state.draining = true;
            for record in &state.records {
                record.cancel.abort();
            }
        }
        self.shared.cond.notify_all();
        thread.join().expect("campaign service thread");
    }
}

/// The service thread: pops submissions in order and serves each one.
fn service_loop(shared: &ServiceShared) {
    loop {
        let submission = {
            let mut state = shared.lock();
            loop {
                if let Some(s) = state.submissions.pop_front() {
                    break s;
                }
                if state.draining {
                    return;
                }
                state = shared.cond.wait(state).expect("campaign service state");
            }
        };
        let id = submission.id as usize;
        shared.lock().records[id].phase = CampaignPhase::Serving;
        shared.cond.notify_all();

        let result = match shared.listener.try_clone() {
            Ok(listener) => {
                let coordinator = Coordinator::from_listener(listener)
                    .sequence(submission.id)
                    .error_policy(submission.policy)
                    .idle_timeout(shared.idle);
                let observer: &dyn CampaignObserver = match &submission.observer {
                    Some(o) => o.as_ref(),
                    None => &NoopCampaignObserver,
                };
                coordinator.serve(
                    &submission.campaign,
                    &submission.dir,
                    observer,
                    &submission.cancel,
                )
            }
            Err(e) => Err(MethodologyError::from(TransportError::Io(e))),
        };

        let mut state = shared.lock();
        let record = &mut state.records[id];
        record.outcome = Some(result);
        record.phase = CampaignPhase::Done;
        drop(state);
        shared.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::StageKind;
    use fingrav_sim::session::TelemetryEvent;

    fn round_trip(frame: Frame) -> Frame {
        let mut bytes = Vec::new();
        frame.write_to(&mut bytes).unwrap();
        let mut cursor = &bytes[..];
        let decoded = Frame::read_from(&mut cursor).unwrap();
        assert!(cursor.is_empty(), "frame decode consumed the whole frame");
        decoded
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello {
                digest: 0xDEAD,
                sequence: 4,
            },
            Frame::Welcome {
                shard: 3,
                entries: 14,
            },
            Frame::Deny {
                code: DENY_DIGEST_MISMATCH,
                detail: "nope".into(),
            },
            Frame::Request,
            Frame::Heartbeat,
            Frame::Assign { index: 7 },
            Frame::Finished { complete: true },
            Frame::Finished { complete: false },
            Frame::Abort,
            Frame::Started {
                index: 2,
                label: "CB-4K-GEMM".into(),
            },
            Frame::Event {
                index: 2,
                event: ProfilingEvent::StageStarted {
                    stage: StageKind::SspSearch,
                },
            },
            Frame::Event {
                index: 2,
                event: ProfilingEvent::Device(TelemetryEvent::ScriptDone { aborted: false }),
            },
            Frame::Done {
                index: 2,
                artifact: vec![1, 2, 3, 4],
            },
            Frame::Failed {
                index: 2,
                error: MethodologyError::Aborted,
            },
            Frame::Failed {
                index: 9,
                error: MethodologyError::Backend("slot 9 is broken".into()),
            },
            Frame::Fetch { index: 11 },
            Frame::Artifact {
                artifact: vec![9; 300],
            },
            Frame::Bye,
        ];
        for frame in frames {
            assert_eq!(round_trip(frame.clone()), frame);
        }
    }

    #[test]
    fn frame_decode_rejects_damage() {
        let mut bytes = Vec::new();
        Frame::Started {
            index: 1,
            label: "k".into(),
        }
        .write_to(&mut bytes)
        .unwrap();

        // Every truncation is Truncated, never a panic or a wrong decode.
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            assert!(
                matches!(
                    Frame::read_from(&mut cursor),
                    Err(TransportError::Truncated(_))
                ),
                "cut at {cut}"
            );
        }

        // Unknown tag.
        let mut unknown = bytes.clone();
        unknown[0..4].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut &unknown[..]),
            Err(TransportError::Checkpoint(CheckpointError::Corrupt(_)))
        ));

        // Implausible frame length must not drive allocation.
        let mut absurd = bytes.clone();
        absurd[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut &absurd[..]),
            Err(TransportError::Corrupt(_))
        ));

        // Trailing payload bytes are rejected.
        let mut padded = Vec::new();
        Frame::Request.write_to(&mut padded).unwrap();
        padded[4..12].copy_from_slice(&1u64.to_le_bytes());
        padded.push(0);
        assert!(matches!(
            Frame::read_from(&mut &padded[..]),
            Err(TransportError::Checkpoint(CheckpointError::Corrupt(_)))
        ));
    }

    #[test]
    fn preamble_validates_magic_and_version() {
        let mut good = Vec::new();
        write_preamble(&mut good).unwrap();
        assert_eq!(good.len(), 16);
        assert!(read_preamble(&mut &good[..]).is_ok());

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            read_preamble(&mut &bad_magic[..]),
            Err(TransportError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            read_preamble(&mut &bad_version[..]),
            Err(TransportError::UnsupportedVersion(9))
        ));

        for cut in 0..good.len() {
            assert!(matches!(
                read_preamble(&mut &good[..cut]),
                Err(TransportError::Truncated(_))
            ));
        }
    }

    #[test]
    fn methodology_errors_round_trip_typed() {
        let cases = vec![
            MethodologyError::Backend("b".into()),
            MethodologyError::InsufficientSyncData,
            MethodologyError::NoGoldenRuns,
            MethodologyError::EmptyProbe,
            MethodologyError::InvalidConfig("c".into()),
            MethodologyError::Aborted,
            MethodologyError::Checkpoint("k".into()),
            MethodologyError::Transport("t".into()),
        ];
        for e in cases {
            let mut bytes = Vec::new();
            e.encode(&mut bytes).unwrap();
            let decoded = MethodologyError::decode(&mut &bytes[..]).unwrap();
            assert_eq!(decoded, e);
        }
    }

    #[test]
    fn next_frame_skips_heartbeats() {
        let mut bytes = Vec::new();
        Frame::Heartbeat.write_to(&mut bytes).unwrap();
        Frame::Heartbeat.write_to(&mut bytes).unwrap();
        Frame::Assign { index: 3 }.write_to(&mut bytes).unwrap();
        let mut cursor = &bytes[..];
        let frame = next_frame(&mut cursor, Duration::from_secs(1)).unwrap();
        assert!(matches!(frame, Frame::Assign { index: 3 }));
        assert!(cursor.is_empty(), "heartbeats consumed alongside");
    }

    /// Yields its script of reads in order: `Ok(bytes)` delivers them,
    /// `Err(kind)` surfaces that error once.
    struct ScriptedReader {
        script: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    Ok(n)
                }
                Some(Err(kind)) => Err(kind.into()),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn budgeted_reads_keep_partial_bytes_across_timeout_ticks() {
        // Two bytes, a timeout tick, two more bytes: the fill must
        // deliver all four — a tick never discards partial progress.
        let mut r = ScriptedReader {
            script: [
                Ok(vec![1, 2]),
                Err(io::ErrorKind::WouldBlock),
                Ok(vec![3, 4]),
            ]
            .into_iter()
            .collect(),
        };
        let mut buf = [0u8; 4];
        let mut ticks = 0;
        fill_budgeted(
            &mut r,
            &mut buf,
            "test",
            Duration::from_secs(5),
            &mut || {
                ticks += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(ticks, 1, "the timeout wakeup ran the tick hook");
    }

    #[test]
    fn budgeted_reads_lapse_only_after_sustained_silence() {
        // A zero idle budget lapses on the first silent tick…
        let mut r = ScriptedReader {
            script: [Err(io::ErrorKind::WouldBlock)].into_iter().collect(),
        };
        let mut buf = [0u8; 1];
        match fill_budgeted(&mut r, &mut buf, "test", Duration::ZERO, &mut || Ok(())) {
            Err(TransportError::DeadlineLapsed { .. }) => {}
            other => panic!("expected DeadlineLapsed, got {other:?}"),
        }
        // …while EOF stays a typed truncation, not a deadline fault.
        let mut r = ScriptedReader {
            script: VecDeque::new(),
        };
        match fill_budgeted(&mut r, &mut buf, "test", Duration::ZERO, &mut || Ok(())) {
            Err(TransportError::Truncated("test")) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn transport_error_displays() {
        let cases: Vec<TransportError> = vec![
            TransportError::Io(io::Error::other("x")),
            TransportError::BadMagic(*b"NOTWIRE!"),
            TransportError::UnsupportedVersion(9),
            TransportError::Truncated("frame payload"),
            TransportError::Corrupt("y".into()),
            TransportError::DigestMismatch {
                expected: 1,
                found: 2,
            },
            TransportError::Denied {
                code: DENY_DIGEST_MISMATCH,
                detail: "z".into(),
            },
            TransportError::Checkpoint(CheckpointError::Truncated("magic")),
            TransportError::Protocol("w".into()),
            TransportError::DeadlineLapsed {
                silent_for: Duration::from_secs(30),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            let _ = MethodologyError::from(e);
        }
    }
}
