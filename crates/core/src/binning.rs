//! Kernel execution-time binning (paper solution **S3**).
//!
//! Sub-millisecond kernels show run-to-run execution-time variation (memory
//! allocation differences, jitter, outliers), which makes power samples
//! from different runs incomparable. FinGraV bins observed execution times
//! and keeps only the *golden* runs: those in the bin holding the most
//! executions within the guidance margin of each other (paper step 6).

use serde::{Deserialize, Serialize};

/// One execution-time bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Smallest member duration, nanoseconds.
    pub low_ns: u64,
    /// Largest member duration, nanoseconds.
    pub high_ns: u64,
    /// Indices (into the input slice) of the members.
    pub members: Vec<usize>,
}

impl Bin {
    /// Number of members.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Midpoint of the bin, nanoseconds.
    pub fn center_ns(&self) -> u64 {
        (self.low_ns + self.high_ns) / 2
    }

    /// True if `duration_ns` lies inside `[low, high]`.
    pub fn contains(&self, duration_ns: u64) -> bool {
        (self.low_ns..=self.high_ns).contains(&duration_ns)
    }
}

/// The result of binning a set of execution times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binning {
    /// All bins, sorted by ascending duration.
    pub bins: Vec<Bin>,
    /// Index (into `bins`) of the golden bin.
    pub golden: usize,
    /// The margin used.
    pub margin_frac: f64,
}

impl Binning {
    /// The golden bin.
    pub fn golden_bin(&self) -> &Bin {
        &self.bins[self.golden]
    }

    /// Input indices belonging to the golden bin.
    pub fn golden_members(&self) -> &[usize] {
        &self.golden_bin().members
    }

    /// True if input index `i` fell in the golden bin.
    pub fn is_golden(&self, i: usize) -> bool {
        self.golden_bin().members.contains(&i)
    }

    /// Number of inputs excluded from the golden bin.
    pub fn outlier_count(&self) -> usize {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.golden)
            .map(|(_, b)| b.count())
            .sum()
    }

    /// Total number of binned inputs.
    pub fn total_count(&self) -> usize {
        self.bins.iter().map(Bin::count).sum()
    }
}

/// Bins `durations_ns` with relative width `margin_frac` and selects the
/// golden bin (most members; ties go to the faster bin, since outliers slow
/// executions down).
///
/// Returns `None` for empty input.
///
/// The algorithm sorts the durations and slides a window whose span never
/// exceeds `low × (1 + margin)`; the densest window becomes the golden bin,
/// and the remaining values are grouped greedily into further bins for
/// reporting.
///
/// # Examples
///
/// ```
/// use fingrav_core::binning::bin_durations;
///
/// // Nine tight values and one outlier 30% slower.
/// let mut d = vec![100_000u64; 9];
/// d.push(130_000);
/// let binning = bin_durations(&d, 0.05).unwrap();
/// assert_eq!(binning.golden_bin().count(), 9);
/// assert_eq!(binning.outlier_count(), 1);
/// ```
pub fn bin_durations(durations_ns: &[u64], margin_frac: f64) -> Option<Binning> {
    if durations_ns.is_empty() {
        return None;
    }
    let margin = margin_frac.max(0.0);
    let mut order: Vec<usize> = (0..durations_ns.len()).collect();
    order.sort_by_key(|&i| durations_ns[i]);
    let sorted: Vec<u64> = order.iter().map(|&i| durations_ns[i]).collect();

    // Find the densest window with high <= low * (1 + margin).
    let mut best_start = 0usize;
    let mut best_len = 0usize;
    let mut lo = 0usize;
    for hi in 0..sorted.len() {
        while (sorted[hi] as f64) > (sorted[lo] as f64) * (1.0 + margin) {
            lo += 1;
        }
        let len = hi - lo + 1;
        if len > best_len {
            best_len = len;
            best_start = lo;
        }
    }

    let golden_range = best_start..(best_start + best_len);

    // Build remaining bins greedily over the leftovers (below and above the
    // golden window), for reporting.
    let mut bins: Vec<Bin> = Vec::new();
    let push_greedy = |slice: &[usize], bins: &mut Vec<Bin>| {
        let mut i = 0;
        while i < slice.len() {
            let start_val = durations_ns[slice[i]];
            let mut members = vec![slice[i]];
            let mut j = i + 1;
            while j < slice.len()
                && (durations_ns[slice[j]] as f64) <= (start_val as f64) * (1.0 + margin)
            {
                members.push(slice[j]);
                j += 1;
            }
            bins.push(Bin {
                low_ns: durations_ns[*members.first().expect("non-empty")],
                high_ns: durations_ns[*members.last().expect("non-empty")],
                members,
            });
            i = j;
        }
    };

    push_greedy(&order[..golden_range.start], &mut bins);
    let golden_members: Vec<usize> = order[golden_range.clone()].to_vec();
    let golden_bin = Bin {
        low_ns: sorted[golden_range.start],
        high_ns: sorted[golden_range.end - 1],
        members: golden_members,
    };
    bins.push(golden_bin);
    let golden_idx_unsorted = bins.len() - 1;
    push_greedy(&order[golden_range.end..], &mut bins);

    // Bins are built low-leftovers, golden, high-leftovers: already sorted
    // by ascending duration.
    Some(Binning {
        golden: golden_idx_unsorted,
        bins,
        margin_frac: margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_none() {
        assert!(bin_durations(&[], 0.05).is_none());
    }

    #[test]
    fn single_value_is_golden() {
        let b = bin_durations(&[42_000], 0.05).unwrap();
        assert_eq!(b.golden_bin().count(), 1);
        assert_eq!(b.outlier_count(), 0);
        assert!(b.is_golden(0));
    }

    #[test]
    fn identical_values_all_golden() {
        let d = vec![100u64; 50];
        let b = bin_durations(&d, 0.0).unwrap();
        assert_eq!(b.golden_bin().count(), 50);
        assert_eq!(b.total_count(), 50);
    }

    #[test]
    fn outliers_excluded() {
        let mut d = vec![100_000u64; 20];
        d.extend([125_000, 130_000, 140_000]);
        let b = bin_durations(&d, 0.05).unwrap();
        assert_eq!(b.golden_bin().count(), 20);
        assert_eq!(b.outlier_count(), 3);
        assert!(!b.is_golden(21));
    }

    #[test]
    fn golden_is_modal_not_first() {
        // A few fast stragglers, then the mode.
        let mut d = vec![80_000u64, 81_000];
        d.extend(vec![100_000u64; 15]);
        let b = bin_durations(&d, 0.02).unwrap();
        assert_eq!(b.golden_bin().count(), 15);
        assert_eq!(b.golden_bin().low_ns, 100_000);
    }

    #[test]
    fn margin_respected_within_golden() {
        let d: Vec<u64> = (0..100).map(|i| 100_000 + i * 200).collect();
        let margin = 0.05;
        let b = bin_durations(&d, margin).unwrap();
        let g = b.golden_bin();
        assert!(
            (g.high_ns as f64) <= (g.low_ns as f64) * (1.0 + margin) + 1.0,
            "golden bin too wide: {} .. {}",
            g.low_ns,
            g.high_ns
        );
    }

    #[test]
    fn wider_margin_captures_more() {
        let d: Vec<u64> = (0..100).map(|i| 100_000 + i * 500).collect();
        let tight = bin_durations(&d, 0.02).unwrap().golden_bin().count();
        let loose = bin_durations(&d, 0.10).unwrap().golden_bin().count();
        assert!(loose > tight);
    }

    #[test]
    fn all_members_accounted_for() {
        let d: Vec<u64> = (0..57).map(|i| 100_000 + (i % 7) * 3_000).collect();
        let b = bin_durations(&d, 0.01).unwrap();
        assert_eq!(b.total_count(), d.len());
        let mut all: Vec<usize> = b.bins.iter().flat_map(|bin| bin.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..d.len()).collect::<Vec<_>>());
    }

    #[test]
    fn bins_sorted_ascending() {
        let d = vec![300_000u64, 100_000, 100_500, 200_000, 100_200, 201_000];
        let b = bin_durations(&d, 0.01).unwrap();
        for w in b.bins.windows(2) {
            assert!(w[0].high_ns <= w[1].low_ns);
        }
    }

    #[test]
    fn bin_helpers() {
        let bin = Bin {
            low_ns: 100,
            high_ns: 200,
            members: vec![0, 1],
        };
        assert_eq!(bin.center_ns(), 150);
        assert!(bin.contains(150));
        assert!(!bin.contains(99));
        assert!(!bin.contains(201));
    }
}
