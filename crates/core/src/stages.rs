//! The nine-step methodology as explicit pipeline stages.
//!
//! [`crate::runner::FingravRunner::profile`] used to be one monolithic
//! function; it is now a composition of the stages in this module, each
//! consuming and producing typed artifacts:
//!
//! | Stage | Paper steps | Input | Output |
//! |---|---|---|---|
//! | [`StagePipeline::calibrate`] | 2 (precursor) | — | [`ReadDelayCalibration`] |
//! | [`StagePipeline::timing_probe`] | 1 + 3 | calibration | [`TimingArtifact`] |
//! | [`StagePipeline::ssp_search`] | 4 | timing | [`SspArtifact`] |
//! | [`StagePipeline::collect_runs`] | 5–8 | timing + SSP | [`RunCollection`] |
//! | [`bin_collected`] | 6 | collected runs | [`Binning`] |
//! | [`stitch_profiles`] | 9 | golden runs | [`StitchedProfiles`] |
//! | [`StagePipeline::finalize`] | 9 (summary) | all artifacts | [`KernelPowerReport`] |
//!
//! Staging serves two purposes. First, each stage is testable and reusable
//! in isolation (the binning and stitching stages are pure functions over
//! collected runs). Second, a stage boundary is a natural checkpoint: a
//! future resumable or distributed runner can persist artifacts between
//! stages and hand shards to different workers, which is how the
//! [`crate::executor::CampaignExecutor`] parallelizes whole kernels today.
//!
//! Every stage drives the backend through the same call sequence the
//! monolith used, so profiles produced by the staged pipeline are
//! bit-identical to the pre-refactor runner given the same backend seed.
//!
//! Pipelines are observable and abortable: [`StagePipeline::set_observer`]
//! streams stage boundaries plus every device event of the scripts the
//! stages run into a [`crate::observe::ProfilingSink`] (ordering
//! guarantees in [`crate::observe`]), and [`StagePipeline::set_abort`]
//! attaches a cooperative cancellation token — a fired token surfaces as
//! [`MethodologyError::Aborted`] from the stage whose script it cut. With
//! no observer and an unfired token the pipeline is exactly the batch
//! path.

use fingrav_sim::kernel::KernelHandle;
use fingrav_sim::script::Script;
use fingrav_sim::session::{AbortHandle, NoopSink};
use fingrav_sim::time::SimDuration;
use fingrav_sim::trace::RunTrace;

use crate::backend::PowerBackend;
use crate::binning::{bin_durations, Binning};
use crate::differentiation::{
    detect_stable_suffix, detect_throttle, detect_warmup_count, median_of_3, moving_average,
    ssp_min_executions,
};
use crate::error::{MethodologyError, MethodologyResult};
use crate::guidance::GuidanceEntry;
use crate::observe::{ForwardDeviceEvents, ProfilingEvent, ProfilingSink, StageKind};
use crate::profile::{
    place_logs, push_loi_points, push_run_profile_points, PlacedLog, PowerProfile, ProfileKind,
};
use crate::runner::{CollectedRun, KernelPowerReport, LoggerChoice, RunnerConfig};
use crate::stats::median_u64;
use crate::sync::{ReadDelayCalibration, TimeSync};

/// Output of the timing-probe stage (paper steps 1 + 3): the kernel's
/// steady execution time, its warm-up count, and the guidance row applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingArtifact {
    /// Index of the SSE execution (= detected warm-up count).
    pub sse_index: u32,
    /// Median steady execution time (CPU-observed), ns.
    pub exec_time_ns: u64,
    /// The guidance row looked up from the execution time.
    pub guidance: GuidanceEntry,
    /// Runs to execute (guidance, unless overridden).
    pub runs: u32,
    /// Binning margin to apply (guidance, unless overridden).
    pub margin_frac: f64,
}

impl TimingArtifact {
    /// The steady execution time as a duration.
    pub fn exec_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.exec_time_ns)
    }
}

/// Output of the SSP-search stage (paper step 4): where steady-state power
/// begins and how long each main run must therefore be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SspArtifact {
    /// Index of the first SSP execution.
    pub ssp_index: u32,
    /// Whether the throttling signature was detected during probing.
    pub throttle_detected: bool,
    /// Executions per main run (SSP index + tail).
    pub executions_per_run: u32,
    /// LOI count the guidance recommends harvesting.
    pub loi_target: u32,
}

/// The three stitched profiles of a kernel (paper step 9).
#[derive(Debug, Clone, PartialEq)]
pub struct StitchedProfiles {
    /// All logs of golden runs on run-relative time.
    pub run: PowerProfile,
    /// LOIs within the SSE execution.
    pub sse: PowerProfile,
    /// LOIs within executions at/after the SSP index.
    pub ssp: PowerProfile,
}

/// Output of the run-collection stage (paper steps 5–8): every collected
/// run, the golden binning over them, and the stitched profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCollection {
    /// All runs executed, including top-up batches, in execution order.
    pub collected: Vec<CollectedRun>,
    /// The execution-time binning over the collected runs.
    pub binning: Binning,
    /// Profiles stitched from the golden runs.
    pub profiles: StitchedProfiles,
}

/// The staged methodology pipeline over a [`PowerBackend`].
///
/// Stages must be invoked in order (each takes the previous stage's
/// artifact by reference); the compiler enforces the data flow.
pub struct StagePipeline<'a, B: PowerBackend> {
    backend: &'a mut B,
    config: RunnerConfig,
    observer: Option<&'a mut dyn ProfilingSink>,
    abort: AbortHandle,
}

impl<'a, B: PowerBackend> StagePipeline<'a, B> {
    /// Creates a pipeline, validating the configuration up front.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::InvalidConfig`] before touching the
    /// device if the configuration is degenerate.
    pub fn new(backend: &'a mut B, config: RunnerConfig) -> MethodologyResult<Self> {
        config.validate()?;
        Ok(StagePipeline {
            backend,
            config,
            observer: None,
            abort: AbortHandle::new(),
        })
    }

    /// Attaches an observer: stage boundaries and every device event of
    /// the scripts the pipeline runs are forwarded to `sink`, in pipeline
    /// order (see [`crate::observe`] for the ordering guarantees).
    pub fn set_observer(&mut self, sink: &'a mut dyn ProfilingSink) {
        self.observer = Some(sink);
    }

    /// Attaches a cooperative cancellation token: when it fires, the
    /// script in flight stops at the next host boundary and the pipeline
    /// stage surfaces [`MethodologyError::Aborted`].
    pub fn set_abort(&mut self, abort: AbortHandle) {
        self.abort = abort;
    }

    /// The active configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Emits a stage-boundary event to the observer, if any.
    fn emit(&mut self, event: ProfilingEvent) {
        if let Some(sink) = self.observer.as_deref_mut() {
            sink.on_event(event);
        }
    }

    /// Runs one script through the session API, forwarding device events
    /// to the observer and surfacing a cancelled session as
    /// [`MethodologyError::Aborted`]. Every pipeline script goes through
    /// here, so the observed and unobserved paths issue the identical
    /// backend call sequence.
    fn run_script(&mut self, script: &Script) -> MethodologyResult<RunTrace> {
        // Both arms use the statically-dispatched `run_script_with` (B is
        // Sized here), so a monomorphizing backend inlines the sink into
        // its event loop — NoopSink in particular costs nothing per event.
        let trace = match self.observer.as_deref_mut() {
            Some(sink) => {
                let mut forward = ForwardDeviceEvents(sink);
                self.backend
                    .run_script_with(script, &mut forward, &self.abort)?
            }
            None => self
                .backend
                .run_script_with(script, &mut NoopSink, &self.abort)?,
        };
        if trace.aborted {
            return Err(MethodologyError::Aborted);
        }
        Ok(trace)
    }

    /// The averaging window of the logger being driven.
    fn window(&self) -> SimDuration {
        match self.config.logger {
            LoggerChoice::Fine => self.backend.logger_window(),
            LoggerChoice::Coarse => self.backend.coarse_logger_window(),
        }
    }

    /// Stage: calibrates the GPU-timestamp read delay with repeated reads
    /// (precursor to paper step 2).
    ///
    /// # Errors
    ///
    /// Propagates backend errors and calibration failures.
    pub fn calibrate(&mut self) -> MethodologyResult<ReadDelayCalibration> {
        self.emit(ProfilingEvent::StageStarted {
            stage: StageKind::Calibrate,
        });
        let mut b = Script::builder();
        for _ in 0..self.config.calibration_reads.max(1) {
            b = b.read_gpu_timestamp();
        }
        let trace = self.run_script(&b.build())?;
        let calibration = ReadDelayCalibration::from_reads(&trace.timestamp_reads)?;
        self.emit(ProfilingEvent::StageFinished {
            stage: StageKind::Calibrate,
        });
        Ok(calibration)
    }

    /// Stage: times the kernel, detects the warm-up (SSE) count, and looks
    /// up the guidance row (paper steps 1 + 3).
    ///
    /// # Errors
    ///
    /// Propagates backend errors; returns [`MethodologyError::EmptyProbe`]
    /// when the probe yields no executions.
    pub fn timing_probe(
        &mut self,
        kernel: KernelHandle,
        calibration: &ReadDelayCalibration,
    ) -> MethodologyResult<TimingArtifact> {
        self.emit(ProfilingEvent::StageStarted {
            stage: StageKind::TimingProbe,
        });
        let probe = self.run_probe(kernel, self.config.timing_probe_executions, calibration)?;
        let durations = probe.trace.execution_durations_ns();
        if durations.is_empty() {
            return Err(MethodologyError::EmptyProbe);
        }
        let sse_index = detect_warmup_count(&durations, self.config.time_stability_tol);
        let steady = &durations[sse_index as usize..];
        let exec_time_ns = median_u64(steady).ok_or(MethodologyError::EmptyProbe)?;
        let exec_time = SimDuration::from_nanos(exec_time_ns);

        let guidance = *self.config.guidance.lookup(exec_time);
        let runs = self.config.runs_override.unwrap_or(guidance.runs);
        let margin_frac = self.config.margin_override.unwrap_or(guidance.margin_frac);
        self.emit(ProfilingEvent::StageFinished {
            stage: StageKind::TimingProbe,
        });
        Ok(TimingArtifact {
            sse_index,
            exec_time_ns,
            guidance,
            runs,
            margin_frac,
        })
    }

    /// Stage: finds the SSP execution index via the formula lower bound
    /// plus a power-stability probe, extending the probe burst until the
    /// power series demonstrably converges (paper step 4, including the
    /// "binary search can be necessary" throttling case), then sizes the
    /// main runs.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn ssp_search(
        &mut self,
        kernel: KernelHandle,
        calibration: &ReadDelayCalibration,
        timing: &TimingArtifact,
    ) -> MethodologyResult<SspArtifact> {
        self.emit(ProfilingEvent::StageStarted {
            stage: StageKind::SspSearch,
        });
        let window = self.window();
        let exec_time = timing.exec_time();
        let min_execs = ssp_min_executions(window, exec_time, timing.sse_index + 1);
        let max_probe = (min_execs * 2 + 8).max(256);
        let mut ssp_probe_n = min_execs * 2 + 8;
        let (ssp_probe, burst_logs, burst_totals, smoothed) = loop {
            let probe = self.run_probe(kernel, ssp_probe_n, calibration)?;
            // Logs inside outlier-duration executions (past the warm-ups)
            // are excluded from the stability analysis, mirroring how
            // binning discards outlier runs. The cutoff derives from the
            // probe's own *settled* durations — under a power cap the
            // settled executions run slower than the early boost-phase
            // ones, and those throttled times are the legitimate steady
            // state, not outliers.
            let probe_durations = probe.trace.execution_durations_ns();
            let settled_ns = median_u64(&probe_durations[probe_durations.len() / 2..])
                .unwrap_or(timing.exec_time_ns);
            let outlier_cutoff_ns =
                (settled_ns as f64 * (1.0 + 3.0 * self.config.time_stability_tol)) as u64;
            let logs = filtered_burst_logs(&probe, timing.sse_index, outlier_cutoff_ns);
            let totals: Vec<f64> = logs.iter().map(|l| l.power.total()).collect();
            // Median-of-3 plus a short moving average: single-log
            // excursions and the firmware's cap sawtooth must not read as
            // late stabilization.
            let smoothed = moving_average(&median_of_3(&totals), 5);
            if probe_power_converged(&smoothed, self.config.power_stability_tol)
                || ssp_probe_n >= max_probe
            {
                break (probe, logs, totals, smoothed);
            }
            ssp_probe_n = (ssp_probe_n * 2).min(max_probe);
        };
        let throttle_detected = detect_throttle(&burst_totals, self.config.throttle_detection_tol);
        let detected_ssp = detect_stable_suffix(&smoothed, self.config.power_stability_tol)
            .map(|idx| {
                // The moving average blurs the ramp edge and pushes the
                // detected onset late; walk back on the lightly-smoothed
                // series while it already sits at the settled level.
                let settled_tail = (smoothed.len() / 4).max(1);
                let settled =
                    crate::stats::median(&smoothed[smoothed.len() - settled_tail..]).unwrap_or(0.0);
                let tol = settled.abs() * self.config.power_stability_tol;
                let raw = median_of_3(&burst_totals);
                let mut idx = idx.min(raw.len().saturating_sub(1));
                while idx > 0 && (raw[idx - 1] - settled).abs() <= tol {
                    idx -= 1;
                }
                idx
            })
            .and_then(|log_idx| {
                // Map the first stable log back to the execution it fell in
                // (or the next execution after it).
                let stable = burst_logs.get(log_idx).copied()?;
                stable
                    .containing_exec
                    .map(|(pos, _)| pos as u32)
                    .or_else(|| {
                        ssp_probe
                            .trace
                            .executions
                            .iter()
                            .position(|e| (e.cpu_start.as_nanos() as f64) >= stable.cpu_ns)
                            .map(|p| p as u32)
                    })
            })
            .unwrap_or(min_execs.saturating_sub(1));
        let ssp_index = detected_ssp
            .max(min_execs.saturating_sub(1))
            .max(timing.sse_index);

        // Tail executions after the SSP point so logs keep landing in
        // SSP-quality executions (~one averaging window's worth).
        let tail = (window.as_nanos().div_ceil(timing.exec_time_ns.max(1)) as u32)
            .clamp(2, self.config.tail_executions_cap);
        let executions_per_run = ssp_index + 1 + tail;
        let loi_target = timing.guidance.recommended_lois(exec_time);
        self.emit(ProfilingEvent::StageFinished {
            stage: StageKind::SspSearch,
        });
        Ok(SspArtifact {
            ssp_index,
            throttle_detected,
            executions_per_run,
            loi_target,
        })
    }

    /// Stage: executes the main runs with golden-bin filtering and LOI
    /// top-up batches (paper steps 5–8), stitching profiles after each
    /// batch to judge the harvest (step 9's stitching is reused as the
    /// inner [`stitch_profiles`] stage).
    ///
    /// # Errors
    ///
    /// Propagates backend errors; returns
    /// [`MethodologyError::NoGoldenRuns`] when binning finds no golden bin.
    pub fn collect_runs(
        &mut self,
        kernel: KernelHandle,
        label: &str,
        calibration: &ReadDelayCalibration,
        timing: &TimingArtifact,
        ssp: &SspArtifact,
    ) -> MethodologyResult<RunCollection> {
        self.emit(ProfilingEvent::StageStarted {
            stage: StageKind::CollectRuns,
        });
        let mut collected: Vec<CollectedRun> = Vec::new();
        let mut batch = timing.runs;
        let mut batches_left = self.config.extra_run_batches;
        loop {
            for _ in 0..batch {
                let run = self.execute_run(kernel, ssp.executions_per_run, calibration, true)?;
                collected.push(run);
            }
            let binning = bin_collected(&collected, timing.margin_frac)?;
            let profiles = stitch_profiles(
                label,
                &collected,
                &binning,
                timing.sse_index,
                ssp.ssp_index,
                timing.margin_frac,
            );
            let enough = profiles.ssp.len() as u32 >= ssp.loi_target;
            if enough || batches_left == 0 {
                self.emit(ProfilingEvent::StageFinished {
                    stage: StageKind::CollectRuns,
                });
                return Ok(RunCollection {
                    collected,
                    binning,
                    profiles,
                });
            }
            batches_left -= 1;
            batch = (timing.runs / 2).max(8);
        }
    }

    /// Stage: assembles the final [`KernelPowerReport`] from every
    /// artifact (paper step 9's summary numbers, including the SSE-vs-SSP
    /// error and the drift estimate).
    pub fn finalize(
        &self,
        label: &str,
        calibration: &ReadDelayCalibration,
        timing: &TimingArtifact,
        ssp: &SspArtifact,
        collection: RunCollection,
    ) -> KernelPowerReport {
        let sse_mean = collection.profiles.sse.mean_total();
        let ssp_mean = collection.profiles.ssp.mean_total();
        let error = match (sse_mean, ssp_mean) {
            (Some(a), Some(b)) if b != 0.0 => Some((b - a).abs() / b),
            _ => None,
        };

        let drift = if self.config.drift_correction {
            let drifts: Vec<f64> = collection
                .collected
                .iter()
                .map(|r| r.sync.estimated_drift_ppm(self.backend.gpu_counter_hz()))
                .collect();
            crate::stats::mean(&drifts)
        } else {
            None
        };

        KernelPowerReport {
            label: label.to_string(),
            exec_time_ns: timing.exec_time_ns,
            guidance: timing.guidance,
            margin_frac: timing.margin_frac,
            sse_index: timing.sse_index,
            ssp_index: ssp.ssp_index,
            executions_per_run: ssp.executions_per_run,
            runs_executed: collection.collected.len() as u32,
            golden_runs: collection.binning.golden_bin().count() as u32,
            throttle_detected: ssp.throttle_detected,
            read_delay_ns: calibration.delay_ns(),
            estimated_drift_ppm: drift,
            run_profile: collection.profiles.run,
            sse_profile: collection.profiles.sse,
            ssp_profile: collection.profiles.ssp,
            sse_mean_total_w: sse_mean,
            ssp_mean_total_w: ssp_mean,
            sse_vs_ssp_error: error,
        }
    }

    /// Runs one instrumented probe (no random delay) and places its logs.
    fn run_probe(
        &mut self,
        kernel: KernelHandle,
        executions: u32,
        calibration: &ReadDelayCalibration,
    ) -> MethodologyResult<ProbeRun> {
        let run = self.execute_run(kernel, executions, calibration, false)?;
        let placed = place_logs(&run.trace, &run.sync);
        Ok(ProbeRun {
            trace: run.trace,
            placed,
        })
    }

    /// Executes one instrumented run (paper step 2's instrumentation and
    /// step 5's random pre-launch delay) and synchronizes its clocks.
    ///
    /// # Errors
    ///
    /// Propagates backend errors; returns
    /// [`MethodologyError::InsufficientSyncData`] when the trace carries no
    /// timestamp read.
    pub fn execute_run(
        &mut self,
        kernel: KernelHandle,
        executions: u32,
        calibration: &ReadDelayCalibration,
        random_delay: bool,
    ) -> MethodologyResult<CollectedRun> {
        let window = self.window();
        let coarse = self.config.logger == LoggerChoice::Coarse;
        let mut b = Script::builder().begin_run();
        b = if coarse {
            b.start_coarse_logger()
        } else {
            b.start_power_logger()
        };
        b = b.read_gpu_timestamp();
        if random_delay {
            // The delay must span at least one logging window so logs land
            // at uniformly distributed times-of-interest (step 5).
            let delay_max = if self.config.random_delay_max > window {
                self.config.random_delay_max
            } else {
                window
            };
            b = b.sleep_uniform(SimDuration::ZERO, delay_max);
        }
        b = b
            .launch_timed(kernel, executions)
            .sleep(window + SimDuration::from_micros(100))
            .read_gpu_timestamp();
        b = if coarse {
            b.stop_coarse_logger()
        } else {
            b.stop_power_logger()
        };
        let script = b.sleep(self.config.inter_run_idle).build();
        let mut trace = self.run_script(&script)?;
        if coarse {
            // Downstream placement machinery reads `power_logs`; when the
            // methodology drives the external logger, its logs take that
            // role (and its window governed every window computation).
            trace.power_logs = std::mem::take(&mut trace.coarse_logs);
        }

        let sync = self.sync_for(&trace, calibration)?;
        let durations = trace.execution_durations_ns();
        let steady_start = durations.len().saturating_sub(durations.len() / 2 + 1);
        let steady_median_ns =
            median_u64(&durations[steady_start..]).ok_or(MethodologyError::EmptyProbe)?;
        Ok(CollectedRun {
            trace,
            sync,
            steady_median_ns,
        })
    }

    /// Builds the per-run sync from its timestamp reads.
    fn sync_for(
        &self,
        trace: &RunTrace,
        calibration: &ReadDelayCalibration,
    ) -> MethodologyResult<TimeSync> {
        let reads = &trace.timestamp_reads;
        let first = reads
            .first()
            .ok_or(MethodologyError::InsufficientSyncData)?;
        if self.config.drift_correction && reads.len() >= 2 {
            let last = reads.last().expect("len >= 2");
            if let Ok(sync) = TimeSync::from_two_anchors(first, last, calibration) {
                return Ok(sync);
            }
        }
        Ok(TimeSync::from_anchor(
            first,
            calibration,
            self.backend.gpu_counter_hz(),
        ))
    }
}

/// Intermediate probe output.
struct ProbeRun {
    trace: RunTrace,
    placed: Vec<PlacedLog>,
}

/// Logs that landed during the launch burst, in time order.
fn placed_burst_logs(placed: &[PlacedLog]) -> Vec<PlacedLog> {
    let mut logs: Vec<PlacedLog> = placed
        .iter()
        .filter(|l| l.run_time_ns >= 0.0)
        .copied()
        .collect();
    logs.sort_by(|a, b| a.cpu_ns.partial_cmp(&b.cpu_ns).expect("finite"));
    logs
}

/// True when a probe's power series has demonstrably settled: its last
/// quarter and the quarter before agree within tolerance. Requires at
/// least eight logs to judge (shorter series force a longer probe).
fn probe_power_converged(totals: &[f64], tol_frac: f64) -> bool {
    if totals.len() < 8 {
        return false;
    }
    let q = totals.len() / 4;
    let last = &totals[totals.len() - q..];
    let prev = &totals[totals.len() - 2 * q..totals.len() - q];
    let m_last = last.iter().sum::<f64>() / q as f64;
    let m_prev = prev.iter().sum::<f64>() / q as f64;
    (m_last - m_prev).abs() <= tol_frac * m_last.abs().max(1.0)
}

/// Burst logs in time order, excluding logs that landed inside
/// outlier-duration executions beyond the warm-up region. The returned
/// list's indices align with the stability series derived from it.
fn filtered_burst_logs(probe: &ProbeRun, sse_index: u32, outlier_cutoff_ns: u64) -> Vec<PlacedLog> {
    let last_end = probe
        .trace
        .executions
        .last()
        .map(|e| e.cpu_end.as_nanos() as f64)
        .unwrap_or(f64::MAX);
    let durations = probe.trace.execution_durations_ns();
    placed_burst_logs(&probe.placed)
        .into_iter()
        .filter(|l| l.cpu_ns <= last_end)
        .filter(|l| match l.containing_exec {
            Some((pos, _)) if pos as u32 >= sse_index => durations
                .get(pos)
                .map(|&d| d <= outlier_cutoff_ns)
                .unwrap_or(true),
            _ => true,
        })
        .collect()
}

/// Stage: bins collected runs by their steady-median durations (paper step
/// 6). Pure function — usable on any run set without a backend.
///
/// # Errors
///
/// Returns [`MethodologyError::NoGoldenRuns`] when no golden bin exists.
pub fn bin_collected(collected: &[CollectedRun], margin: f64) -> MethodologyResult<Binning> {
    let metrics: Vec<u64> = collected.iter().map(|r| r.steady_median_ns).collect();
    bin_durations(&metrics, margin).ok_or(MethodologyError::NoGoldenRuns)
}

/// Stage: stitches golden runs into run/SSE/SSP profiles, filtering SSP
/// LOIs to executions whose duration stays within the golden margin
/// (intra-run outlier rejection; paper step 9). Pure function.
pub fn stitch_profiles(
    label: &str,
    collected: &[CollectedRun],
    binning: &Binning,
    sse_index: u32,
    ssp_index: u32,
    margin: f64,
) -> StitchedProfiles {
    let mut run_profile = PowerProfile::new(label, ProfileKind::Run);
    let mut sse_profile = PowerProfile::new(label, ProfileKind::Sse);
    let mut ssp_profile = PowerProfile::new(label, ProfileKind::Ssp);
    let center = binning.golden_bin().center_ns() as f64;

    for (run_idx, run) in collected.iter().enumerate() {
        if !binning.is_golden(run_idx) {
            continue;
        }
        let placed = place_logs(&run.trace, &run.sync);
        push_run_profile_points(&mut run_profile.store, run_idx as u32, &placed);

        let durations = run.trace.execution_durations_ns();
        let within_margin = |pos: usize| -> bool {
            durations
                .get(pos)
                .map(|&d| (d as f64 - center).abs() <= center * margin.max(0.001) * 1.5)
                .unwrap_or(false)
        };
        push_loi_points(&mut sse_profile.store, run_idx as u32, &placed, |pos| {
            pos as u32 == sse_index
        });
        push_loi_points(&mut ssp_profile.store, run_idx as u32, &placed, |pos| {
            pos as u32 >= ssp_index && within_margin(pos)
        });
    }

    StitchedProfiles {
        run: run_profile,
        sse: sse_profile,
        ssp: ssp_profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{FingravRunner, RunnerConfig};
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::kernel::KernelDesc;
    use fingrav_sim::power::Activity;

    fn kernel(base_us: u64) -> KernelDesc {
        KernelDesc {
            name: format!("stage-{base_us}us"),
            base_exec: SimDuration::from_micros(base_us),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.85, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1e11,
            hbm_bytes: 1e8,
            llc_bytes: 1e9,
            workgroups: 256,
        }
    }

    /// Drives the stages one by one, asserting each artifact's invariants.
    #[test]
    fn stages_compose_with_plausible_artifacts() {
        let mut sim = Simulation::new(SimConfig::default(), 301).unwrap();
        let desc = kernel(200);
        let handle = PowerBackend::register_kernel(&mut sim, &desc).unwrap();
        let mut pipeline = StagePipeline::new(&mut sim, RunnerConfig::quick(14)).unwrap();

        let calibration = pipeline.calibrate().unwrap();
        assert!(calibration.delay_ns() > 0.0);

        let timing = pipeline.timing_probe(handle, &calibration).unwrap();
        assert!(timing.exec_time_ns > 150_000 && timing.exec_time_ns < 400_000);
        assert!(timing.sse_index >= 1, "warm-ups exist");
        assert_eq!(timing.runs, 14, "override respected");

        let ssp = pipeline.ssp_search(handle, &calibration, &timing).unwrap();
        assert!(ssp.ssp_index >= timing.sse_index);
        assert!(ssp.executions_per_run > ssp.ssp_index);
        assert!(ssp.loi_target > 0);

        let collection = pipeline
            .collect_runs(handle, &desc.name, &calibration, &timing, &ssp)
            .unwrap();
        assert!(collection.collected.len() >= 14);
        assert!(collection.binning.golden_bin().count() > 0);
        assert!(!collection.profiles.run.is_empty());

        let report = pipeline.finalize(&desc.name, &calibration, &timing, &ssp, collection);
        assert_eq!(report.label, desc.name);
        assert!(report.ssp_mean_total_w.unwrap() > 100.0);
    }

    /// The staged pipeline and the composed runner must produce
    /// bit-identical reports from the same seed: profiling is the exact
    /// same backend call sequence either way.
    #[test]
    fn staged_pipeline_matches_runner_exactly() {
        let desc = kernel(120);
        let config = RunnerConfig::quick(10);

        let mut sim = Simulation::new(SimConfig::default(), 302).unwrap();
        let mut runner = FingravRunner::new(&mut sim, config.clone());
        let via_runner = runner.profile(&desc).unwrap();

        let mut sim = Simulation::new(SimConfig::default(), 302).unwrap();
        let handle = PowerBackend::register_kernel(&mut sim, &desc).unwrap();
        let mut pipeline = StagePipeline::new(&mut sim, config).unwrap();
        let calibration = pipeline.calibrate().unwrap();
        let timing = pipeline.timing_probe(handle, &calibration).unwrap();
        let ssp = pipeline.ssp_search(handle, &calibration, &timing).unwrap();
        let collection = pipeline
            .collect_runs(handle, &desc.name, &calibration, &timing, &ssp)
            .unwrap();
        let via_stages = pipeline.finalize(&desc.name, &calibration, &timing, &ssp, collection);

        assert_eq!(via_runner, via_stages);
    }

    /// Binning and stitching are pure over collected runs: re-running them
    /// on the same input yields the same output, and every golden run's
    /// points carry its run index.
    #[test]
    fn binning_and_stitching_stages_are_pure() {
        let mut sim = Simulation::new(SimConfig::default(), 303).unwrap();
        let desc = kernel(150);
        let handle = PowerBackend::register_kernel(&mut sim, &desc).unwrap();
        let mut pipeline = StagePipeline::new(&mut sim, RunnerConfig::quick(8)).unwrap();
        let calibration = pipeline.calibrate().unwrap();
        let mut collected = Vec::new();
        for _ in 0..8 {
            collected.push(
                pipeline
                    .execute_run(handle, 12, &calibration, true)
                    .unwrap(),
            );
        }

        let a = bin_collected(&collected, 0.05).unwrap();
        let b = bin_collected(&collected, 0.05).unwrap();
        assert_eq!(a.golden_bin().members, b.golden_bin().members);

        let s1 = stitch_profiles("k", &collected, &a, 2, 4, 0.05);
        let s2 = stitch_profiles("k", &collected, &a, 2, 4, 0.05);
        assert_eq!(s1.run.store, s2.run.store);
        for p in s1.run.iter() {
            assert!(a.is_golden(p.run() as usize), "only golden runs stitched");
        }
    }

    /// An invalid configuration is rejected at pipeline construction,
    /// before any device interaction.
    #[test]
    fn pipeline_construction_validates_config() {
        let mut sim = Simulation::new(SimConfig::default(), 304).unwrap();
        let bad = RunnerConfig {
            runs_override: Some(0),
            ..RunnerConfig::default()
        };
        assert!(matches!(
            StagePipeline::new(&mut sim, bad).err(),
            Some(MethodologyError::InvalidConfig(_))
        ));
    }
}
