//! LOI/TOI extraction and power-profile stitching.
//!
//! After CPU–GPU sync, every power log can be placed on the CPU timeline.
//! A log whose emission lands inside a kernel execution is a
//! **log-of-interest (LOI)**, and its offset into that execution is the
//! **time-of-interest (TOI)**. Because each run lands its logs at different
//! (randomized) TOIs, stitching the LOIs of many golden runs yields a
//! fine-grain profile (paper step 9).
//!
//! Stitched points live in a columnar [`ProfileStore`] (see
//! [`crate::store`]): consumers either borrow column slices directly or
//! iterate [`ProfilePointRef`] views; [`ProfilePoint`] is the owned row
//! value used to append points and to materialize individual rows.

use std::fmt;

use fingrav_sim::power::{Component, ComponentPower};
use fingrav_sim::trace::RunTrace;
use serde::{Deserialize, Serialize};

use crate::regression::{FitError, PolyFit};
pub use crate::store::{ProfilePointRef, ProfileStore};
use crate::sync::TimeSync;

/// What a profile represents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileKind {
    /// All logs of a run, placed on run-relative time (Fig. 6/8 style).
    Run,
    /// LOIs within the steady-state-execution (SSE) execution.
    Sse,
    /// LOIs within executions at/after the steady-state-power (SSP) point.
    Ssp,
    /// LOIs within a selected outlier execution-time bin (Section VI).
    Outlier,
    /// A custom selection.
    Custom(String),
}

impl fmt::Display for ProfileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileKind::Run => f.write_str("run"),
            ProfileKind::Sse => f.write_str("sse"),
            ProfileKind::Ssp => f.write_str("ssp"),
            ProfileKind::Outlier => f.write_str("outlier"),
            ProfileKind::Custom(s) => write!(f, "custom:{s}"),
        }
    }
}

/// One stitched profile point, as an owned row value.
///
/// Historically `exec_pos` was a raw `u32` with `u32::MAX` marking "fell
/// outside any execution"; the sentinel is gone from the public API — both
/// `exec_pos` and `toi_ns` are `Option`s backed by the store's validity
/// bitmap, and they are `Some`/`None` together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilePoint {
    /// Which run contributed the point.
    pub run: u32,
    /// Position of the containing execution within the run's launch
    /// sequence, or `None` when the log fell outside any execution.
    pub exec_pos: Option<u32>,
    /// Time-of-interest: nanoseconds into the containing execution, or
    /// `None` when the log fell outside any execution (run-profile points).
    pub toi_ns: Option<f64>,
    /// Run-relative time: nanoseconds since the run's first launch.
    pub run_time_ns: f64,
    /// The averaged component power of the log.
    pub power: ComponentPower,
}

impl ProfilePoint {
    /// The historical sentinel encoding of `exec_pos`.
    #[deprecated(
        since = "0.2.0",
        note = "the u32::MAX sentinel is no longer part of the data model; \
                match on the `exec_pos: Option<u32>` field instead"
    )]
    pub fn raw_exec_pos(&self) -> u32 {
        self.exec_pos.unwrap_or(u32::MAX)
    }
}

/// A stitched power profile: a labelled, kinded [`ProfileStore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Kernel label, e.g. `CB-4K-GEMM`.
    pub label: String,
    /// What the profile represents.
    pub kind: ProfileKind,
    /// The stitched points, in columnar storage (unordered; sort by the
    /// axis you plot via [`ProfileStore::argsort_by_axis`]).
    pub store: ProfileStore,
}

/// Choice of x-axis for series extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileAxis {
    /// Run-relative time (ns since first launch of the run).
    RunTime,
    /// Time-of-interest (ns into the containing execution).
    Toi,
}

/// Choice of y-axis for series extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerAxis {
    /// Total (VR output) power.
    Total,
    /// One sub-component.
    Component(Component),
}

impl PowerProfile {
    /// Creates an empty profile.
    pub fn new(label: impl Into<String>, kind: ProfileKind) -> Self {
        PowerProfile {
            label: label.into(),
            kind,
            store: ProfileStore::new(),
        }
    }

    /// Creates a profile from owned points.
    pub fn from_points<I: IntoIterator<Item = ProfilePoint>>(
        label: impl Into<String>,
        kind: ProfileKind,
        points: I,
    ) -> Self {
        PowerProfile {
            label: label.into(),
            kind,
            store: ProfileStore::from_points(points),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the profile holds no points.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Appends one point.
    pub fn push(&mut self, point: ProfilePoint) {
        self.store.push(point);
    }

    /// Appends owned points.
    pub fn extend_points<I: IntoIterator<Item = ProfilePoint>>(&mut self, points: I) {
        self.store.extend(points);
    }

    /// Iterates borrowed point views in storage order.
    pub fn iter(&self) -> impl Iterator<Item = ProfilePointRef<'_>> {
        self.store.iter()
    }

    /// Materializes point `i`.
    pub fn point(&self, i: usize) -> ProfilePoint {
        self.store.point(i)
    }

    /// Keeps only points satisfying `pred`.
    pub fn retain(&mut self, pred: impl FnMut(ProfilePointRef<'_>) -> bool) {
        self.store.retain(pred);
    }

    /// Mean component power over all points; `None` if empty.
    pub fn mean_power(&self) -> Option<ComponentPower> {
        self.store.mean_power()
    }

    /// Mean total power; `None` if empty.
    pub fn mean_total(&self) -> Option<f64> {
        self.mean_power().map(|p| p.total())
    }

    /// Extracts an `(x, y)` series sorted by x. Points without a
    /// time-of-interest are skipped on the [`ProfileAxis::Toi`] axis.
    pub fn series(&self, x: ProfileAxis, y: PowerAxis) -> (Vec<f64>, Vec<f64>) {
        let mut pairs: Vec<(f64, f64)> = self
            .iter()
            .filter_map(|p| {
                let xv = match x {
                    ProfileAxis::RunTime => p.run_time_ns(),
                    ProfileAxis::Toi => p.toi_ns()?,
                };
                let yv = match y {
                    PowerAxis::Total => p.total_w(),
                    PowerAxis::Component(c) => p.power().get(c),
                };
                Some((xv, yv))
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        pairs.into_iter().unzip()
    }

    /// Straight-line fit of a series (the Fig. 7/10 regression lines).
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] when the series is degenerate.
    pub fn linear_fit(&self, x: ProfileAxis, y: PowerAxis) -> Result<PolyFit, FitError> {
        let (xs, ys) = self.series(x, y);
        crate::regression::linear(&xs, &ys)
    }

    /// Degree-4 fit of a series (the paper's Fig. 5 smoothing).
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] when the series is degenerate.
    pub fn quartic_fit(&self, x: ProfileAxis, y: PowerAxis) -> Result<PolyFit, FitError> {
        let (xs, ys) = self.series(x, y);
        crate::regression::degree4(&xs, &ys)
    }

    /// A copy with every power scaled by `1 / reference_w` — the paper
    /// plots *relative* power throughout. A column-wise multiply; no
    /// points are materialized.
    pub fn relative_to(&self, reference_w: f64) -> PowerProfile {
        assert!(reference_w > 0.0, "reference power must be positive");
        PowerProfile {
            label: self.label.clone(),
            kind: self.kind.clone(),
            store: self.store.scale_power(1.0 / reference_w),
        }
    }

    /// Appends another profile's points.
    pub fn merge(&mut self, other: &PowerProfile) {
        self.store.extend_from(&other.store);
    }
}

/// One synchronized log-of-interest candidate (any log, placed in CPU time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedLog {
    /// The log's emission time on the CPU timeline, ns.
    pub cpu_ns: f64,
    /// ns since the run's first launch (negative when before it).
    pub run_time_ns: f64,
    /// Containing execution, if the log landed inside one:
    /// `(position in trace.executions, toi_ns)`.
    pub containing_exec: Option<(usize, f64)>,
    /// The averaged power.
    pub power: ComponentPower,
}

/// Places every power log of a trace on the CPU timeline and associates it
/// with the execution it landed in (if any).
pub fn place_logs(trace: &RunTrace, sync: &TimeSync) -> Vec<PlacedLog> {
    let origin = trace
        .first_launch_cpu()
        .map(|t| t.as_nanos() as f64)
        .unwrap_or(0.0);
    trace
        .power_logs
        .iter()
        .map(|log| {
            let cpu_ns = sync.cpu_ns_of_ticks(log.ticks.as_raw());
            let containing_exec = trace.executions.iter().enumerate().find_map(|(i, e)| {
                let start = e.cpu_start.as_nanos() as f64;
                let end = e.cpu_end.as_nanos() as f64;
                if cpu_ns >= start && cpu_ns <= end {
                    Some((i, cpu_ns - start))
                } else {
                    None
                }
            });
            PlacedLog {
                cpu_ns,
                run_time_ns: cpu_ns - origin,
                containing_exec,
                power: log.avg,
            }
        })
        .collect()
}

/// Appends a [`ProfileKind::Run`] profile (all logs, on run-relative time)
/// for one run straight into a columnar store — the stitching fast path.
pub fn push_run_profile_points(store: &mut ProfileStore, run: u32, placed: &[PlacedLog]) {
    for l in placed {
        store.push(ProfilePoint {
            run,
            exec_pos: l.containing_exec.map(|(i, _)| i as u32),
            toi_ns: l.containing_exec.map(|(_, t)| t),
            run_time_ns: l.run_time_ns,
            power: l.power,
        });
    }
}

/// Appends LOI points for executions selected by `select` (by position in
/// the trace's execution list) straight into a columnar store.
pub fn push_loi_points(
    store: &mut ProfileStore,
    run: u32,
    placed: &[PlacedLog],
    mut select: impl FnMut(usize) -> bool,
) {
    for l in placed {
        let Some((pos, toi)) = l.containing_exec else {
            continue;
        };
        if !select(pos) {
            continue;
        }
        store.push(ProfilePoint {
            run,
            exec_pos: Some(pos as u32),
            toi_ns: Some(toi),
            run_time_ns: l.run_time_ns,
            power: l.power,
        });
    }
}

/// Builds a [`ProfileKind::Run`] profile from placed logs as owned points —
/// the legacy AoS path, retained **only** so the columnar fast path can be
/// proven equivalent in tests. Hidden from the public API surface: the one
/// supported way to build profiles is [`push_run_profile_points`] (the AoS
/// and columnar paths were proven byte-equivalent in PR 2, so there is
/// nothing this buys a caller).
#[doc(hidden)]
pub fn run_profile_points(run: u32, placed: &[PlacedLog]) -> Vec<ProfilePoint> {
    placed
        .iter()
        .map(|l| ProfilePoint {
            run,
            exec_pos: l.containing_exec.map(|(i, _)| i as u32),
            toi_ns: l.containing_exec.map(|(_, t)| t),
            run_time_ns: l.run_time_ns,
            power: l.power,
        })
        .collect()
}

/// Builds LOI points for executions selected by `select` as owned points —
/// the legacy AoS path, retained **only** for columnar-equivalence tests
/// (see [`run_profile_points`]). The supported builder is
/// [`push_loi_points`].
#[doc(hidden)]
pub fn loi_points(
    run: u32,
    placed: &[PlacedLog],
    mut select: impl FnMut(usize) -> bool,
) -> Vec<ProfilePoint> {
    placed
        .iter()
        .filter_map(|l| {
            let (pos, toi) = l.containing_exec?;
            if !select(pos) {
                return None;
            }
            Some(ProfilePoint {
                run,
                exec_pos: Some(pos as u32),
                toi_ns: Some(toi),
                run_time_ns: l.run_time_ns,
                power: l.power,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::ReadDelayCalibration;
    use fingrav_sim::kernel::KernelHandle;
    use fingrav_sim::telemetry::PowerLog;
    use fingrav_sim::time::{CpuTime, GpuTicks};
    use fingrav_sim::trace::{TimedExecution, TimestampRead};

    fn p(total_quarter: f64) -> ComponentPower {
        ComponentPower::new(total_quarter, total_quarter, total_quarter, total_quarter)
    }

    fn point(run: u32, run_time: f64, toi: f64, watts: f64) -> ProfilePoint {
        ProfilePoint {
            run,
            exec_pos: Some(0),
            toi_ns: Some(toi),
            run_time_ns: run_time,
            power: p(watts / 4.0),
        }
    }

    #[test]
    fn mean_power_and_total() {
        let mut prof = PowerProfile::new("k", ProfileKind::Ssp);
        assert!(prof.mean_power().is_none());
        prof.push(point(0, 0.0, 0.0, 400.0));
        prof.push(point(1, 1.0, 0.0, 600.0));
        assert!((prof.mean_total().unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn series_sorted_by_x() {
        let prof = PowerProfile::from_points(
            "k",
            ProfileKind::Run,
            [
                point(0, 300.0, 0.0, 3.0),
                point(0, 100.0, 0.0, 1.0),
                point(0, 200.0, 0.0, 2.0),
            ],
        );
        let (xs, ys) = prof.series(ProfileAxis::RunTime, PowerAxis::Total);
        assert_eq!(xs, vec![100.0, 200.0, 300.0]);
        assert_eq!(ys, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn component_series() {
        let mut prof = PowerProfile::new("k", ProfileKind::Ssp);
        prof.push(ProfilePoint {
            run: 0,
            exec_pos: Some(0),
            toi_ns: Some(5.0),
            run_time_ns: 5.0,
            power: ComponentPower::new(10.0, 20.0, 30.0, 40.0),
        });
        let (_, xcd) = prof.series(ProfileAxis::Toi, PowerAxis::Component(Component::Xcd));
        assert_eq!(xcd, vec![10.0]);
        let (_, hbm) = prof.series(ProfileAxis::Toi, PowerAxis::Component(Component::Hbm));
        assert_eq!(hbm, vec![30.0]);
    }

    #[test]
    fn relative_scaling() {
        let mut prof = PowerProfile::new("k", ProfileKind::Ssp);
        prof.push(point(0, 0.0, 0.0, 500.0));
        let rel = prof.relative_to(500.0);
        assert!((rel.mean_total().unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(rel.label, prof.label);
    }

    #[test]
    fn merge_extends() {
        let mut a = PowerProfile::new("k", ProfileKind::Run);
        a.push(point(0, 0.0, 0.0, 1.0));
        let mut b = PowerProfile::new("k", ProfileKind::Run);
        b.push(point(1, 1.0, 0.0, 2.0));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn retain_filters_points() {
        let mut prof = PowerProfile::from_points(
            "k",
            ProfileKind::Run,
            [point(0, 1.0, 0.0, 1.0), point(1, 2.0, 0.0, 2.0)],
        );
        prof.retain(|p| p.run() == 1);
        assert_eq!(prof.len(), 1);
        assert_eq!(prof.point(0).run, 1);
    }

    #[test]
    fn deprecated_sentinel_accessor_still_encodes_max() {
        let pt = ProfilePoint {
            run: 0,
            exec_pos: None,
            toi_ns: None,
            run_time_ns: 0.0,
            power: ComponentPower::ZERO,
        };
        #[allow(deprecated)] // the deprecated accessor is the test subject
        let raw = pt.raw_exec_pos();
        assert_eq!(raw, u32::MAX);
    }

    /// Builds a tiny trace with one execution [1000, 2000] ns CPU time and
    /// three logs (before, inside, after), under an identity-ish sync.
    fn trace_with_logs() -> (RunTrace, TimeSync) {
        let mut t = RunTrace::default();
        t.executions.push(TimedExecution {
            kernel: KernelHandle::default(),
            index: 0,
            cpu_start: CpuTime::from_nanos(1_000),
            cpu_end: CpuTime::from_nanos(2_000),
        });
        // 100 MHz counter anchored so tick 0 == cpu 0 (rtt 0, frac 0.5).
        let read = TimestampRead {
            cpu_before: CpuTime::from_nanos(0),
            cpu_after: CpuTime::from_nanos(0),
            ticks: GpuTicks::from_raw(0),
        };
        let calib = ReadDelayCalibration {
            median_rtt_ns: 0,
            assumed_sample_frac: 0.5,
        };
        let sync = TimeSync::from_anchor(&read, &calib, 100e6);
        for (tick, w) in [(50u64, 1.0), (150, 2.0), (250, 3.0)] {
            // tick*10 ns: 500, 1500, 2500.
            t.power_logs.push(PowerLog {
                ticks: GpuTicks::from_raw(tick),
                avg: p(w),
            });
        }
        (t, sync)
    }

    #[test]
    fn place_logs_assigns_containing_execution() {
        let (t, sync) = trace_with_logs();
        let placed = place_logs(&t, &sync);
        assert_eq!(placed.len(), 3);
        assert!(placed[0].containing_exec.is_none(), "before the execution");
        let (pos, toi) = placed[1].containing_exec.expect("inside");
        assert_eq!(pos, 0);
        assert!((toi - 500.0).abs() < 1e-9);
        assert!(placed[2].containing_exec.is_none(), "after the execution");
    }

    #[test]
    fn run_time_is_relative_to_first_launch() {
        let (t, sync) = trace_with_logs();
        let placed = place_logs(&t, &sync);
        // First log at cpu 500, launch at cpu 1000: run time -500.
        assert!((placed[0].run_time_ns - (-500.0)).abs() < 1e-9);
        assert!((placed[1].run_time_ns - 500.0).abs() < 1e-9);
    }

    #[test]
    fn loi_points_filters_by_execution() {
        let (t, sync) = trace_with_logs();
        let placed = place_logs(&t, &sync);
        let all = loi_points(3, &placed, |_| true);
        assert_eq!(all.len(), 1, "only the inside log is an LOI");
        assert_eq!(all[0].run, 3);
        assert_eq!(all[0].exec_pos, Some(0));
        let none = loi_points(3, &placed, |pos| pos > 0);
        assert!(none.is_empty());
    }

    #[test]
    fn run_profile_keeps_every_log() {
        let (t, sync) = trace_with_logs();
        let placed = place_logs(&t, &sync);
        let pts = run_profile_points(7, &placed);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].exec_pos, None);
        assert!(pts[0].toi_ns.is_none());
        assert_eq!(pts[1].exec_pos, Some(0));
        assert!(pts[1].toi_ns.is_some());
    }

    #[test]
    fn columnar_appenders_match_legacy_aos_paths() {
        let (t, sync) = trace_with_logs();
        let placed = place_logs(&t, &sync);

        let mut run_store = ProfileStore::new();
        push_run_profile_points(&mut run_store, 7, &placed);
        assert_eq!(
            run_store,
            ProfileStore::from_points(run_profile_points(7, &placed))
        );

        let mut loi_store = ProfileStore::new();
        push_loi_points(&mut loi_store, 3, &placed, |_| true);
        assert_eq!(
            loi_store,
            ProfileStore::from_points(loi_points(3, &placed, |_| true))
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(format!("{}", ProfileKind::Run), "run");
        assert_eq!(format!("{}", ProfileKind::Sse), "sse");
        assert_eq!(format!("{}", ProfileKind::Ssp), "ssp");
        assert_eq!(format!("{}", ProfileKind::Outlier), "outlier");
        assert_eq!(format!("{}", ProfileKind::Custom("x".into())), "custom:x");
    }
}
