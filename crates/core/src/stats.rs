//! Small statistics helpers used across the methodology.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Median (average of the middle two for even lengths); `None` if empty.
///
/// Sorts by [`f64::total_cmp`], so NaN inputs never panic: negative NaNs
/// order below `-inf` and positive NaNs above `+inf`. A NaN therefore only
/// reaches the middle of the sorted slice — and poisons the result — when
/// NaNs make up enough of the input to span it; isolated NaNs at the
/// extremes leave the median finite.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Integer-median convenience for nanosecond durations.
///
/// The even-length midpoint is computed as `lo + (hi - lo) / 2`, which
/// cannot overflow — raw device tick counters and absolute-epoch
/// nanosecond stamps routinely sit above `u64::MAX / 2`, where the naive
/// `(lo + hi) / 2` would wrap.
pub fn median_u64(xs: &[u64]) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        let (lo, hi) = (v[n / 2 - 1], v[n / 2]);
        lo + (hi - lo) / 2
    })
}

/// The `p`-quantile (0.0..=1.0) by linear interpolation; `None` if empty.
///
/// Sorts by [`f64::total_cmp`] (see [`median`] for the NaN placement):
/// NaNs never panic, they gather at the ends of the sorted slice —
/// positive NaNs above `+inf`, negative below `-inf` — so only quantiles
/// that land on (or interpolate across) a NaN come back NaN.
pub fn quantile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let t = pos - lo as f64;
        Some(v[lo] * (1.0 - t) + v[hi] * t)
    }
}

/// Relative difference `|a - b| / |b|`; `None` when `b` is zero.
///
/// The reference magnitude is `|b|`, so a negative reference yields the
/// same (non-negative) relative difference as its positive mirror:
/// `relative_diff(-110.0, -100.0) == relative_diff(110.0, 100.0)`.
pub fn relative_diff(a: f64, b: f64) -> Option<f64> {
    if b == 0.0 {
        None
    } else {
        Some((a - b).abs() / b.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let sd = std_dev(&[2.0, 4.0]).unwrap();
        assert!((sd - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_u64_works() {
        assert_eq!(median_u64(&[30, 10, 20]), Some(20));
        assert_eq!(median_u64(&[10, 20]), Some(15));
        assert_eq!(median_u64(&[]), None);
    }

    #[test]
    fn median_u64_survives_values_above_half_range() {
        // Absolute-epoch stamps live near the top of the u64 range; the
        // naive (lo + hi) / 2 midpoint wraps here.
        assert_eq!(median_u64(&[u64::MAX, u64::MAX - 2]), Some(u64::MAX - 1));
        assert_eq!(median_u64(&[u64::MAX, u64::MAX]), Some(u64::MAX));
        let above_half = u64::MAX / 2 + 1;
        assert_eq!(
            median_u64(&[above_half, above_half + 2]),
            Some(above_half + 1)
        );
        // Odd lengths index straight into the sorted slice and were
        // never at risk; pin that they still work at the boundary.
        assert_eq!(median_u64(&[u64::MAX, 0, u64::MAX]), Some(u64::MAX));
    }

    #[test]
    fn median_and_quantile_tolerate_nans() {
        // A single NaN sorts to an extreme (total order) and must not
        // panic nor displace a finite median.
        assert_eq!(median(&[1.0, f64::NAN, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[-f64::NAN, 1.0, 2.0, 3.0]), Some(1.5));
        // All-NaN input stays NaN rather than aborting the process.
        assert!(median(&[f64::NAN, f64::NAN]).unwrap().is_nan());
        // Quantiles at the NaN-bearing extreme observe the NaN; interior
        // quantiles stay finite.
        let xs = [1.0, 2.0, 3.0, f64::NAN];
        assert!(quantile(&xs, 1.0).unwrap().is_nan());
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert!(quantile(&xs, 0.5).unwrap().is_finite());
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn relative_diff_basics() {
        assert_eq!(relative_diff(110.0, 100.0), Some(0.1));
        assert_eq!(relative_diff(90.0, 100.0), Some(0.1));
        assert_eq!(relative_diff(1.0, 0.0), None);
    }

    #[test]
    fn relative_diff_divides_by_reference_magnitude() {
        // Negative references divide by |b|: the result stays
        // non-negative and mirrors the positive-reference case.
        assert_eq!(relative_diff(-110.0, -100.0), Some(0.1));
        assert_eq!(relative_diff(-90.0, -100.0), Some(0.1));
        assert_eq!(relative_diff(110.0, -100.0), Some(2.1));
        assert_eq!(relative_diff(-0.0, 5.0), Some(1.0));
        // Signed zero is still zero.
        assert_eq!(relative_diff(1.0, -0.0), None);
    }
}
