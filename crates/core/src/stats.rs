//! Small statistics helpers used across the methodology.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Median (average of the middle two for even lengths); `None` if empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in medians"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Integer-median convenience for nanosecond durations.
pub fn median_u64(xs: &[u64]) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2
    })
}

/// The `p`-quantile (0.0..=1.0) by linear interpolation; `None` if empty.
pub fn quantile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantiles"));
    let p = p.clamp(0.0, 1.0);
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let t = pos - lo as f64;
        Some(v[lo] * (1.0 - t) + v[hi] * t)
    }
}

/// Relative difference `|a - b| / b`; `None` when `b` is zero.
pub fn relative_diff(a: f64, b: f64) -> Option<f64> {
    if b == 0.0 {
        None
    } else {
        Some((a - b).abs() / b.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let sd = std_dev(&[2.0, 4.0]).unwrap();
        assert!((sd - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_u64_works() {
        assert_eq!(median_u64(&[30, 10, 20]), Some(20));
        assert_eq!(median_u64(&[10, 20]), Some(15));
        assert_eq!(median_u64(&[]), None);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn relative_diff_basics() {
        assert_eq!(relative_diff(110.0, 100.0), Some(0.1));
        assert_eq!(relative_diff(90.0, 100.0), Some(0.1));
        assert_eq!(relative_diff(1.0, 0.0), None);
    }
}
