//! Least-squares polynomial regression.
//!
//! The paper smooths stitched power profiles with linear-regression lines
//! (Fig. 7/10) and demonstrates run-count resiliency with "a linear
//! regression of degree four over the power data we get with 50 runs only"
//! (Fig. 5). This module implements exactly that: ordinary least squares
//! on a polynomial basis, solved by Gaussian elimination with partial
//! pivoting on the normal equations. Inputs are centred and scaled
//! internally for conditioning.

use serde::{Deserialize, Serialize};

/// A fitted polynomial `y = c0 + c1·x̂ + … + ck·x̂^k` where `x̂` is the
/// internally normalized abscissa.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolyFit {
    coeffs: Vec<f64>,
    x_center: f64,
    x_scale: f64,
}

/// Errors from a regression attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer points than coefficients.
    Underdetermined,
    /// Input arrays differ in length.
    LengthMismatch,
    /// The normal equations were singular (e.g. all x identical).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FitError::Underdetermined => "not enough points for the requested degree",
            FitError::LengthMismatch => "x and y lengths differ",
            FitError::Singular => "singular normal equations",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FitError {}

impl PolyFit {
    /// Fits a degree-`degree` polynomial to `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// * [`FitError::LengthMismatch`] if `xs.len() != ys.len()`;
    /// * [`FitError::Underdetermined`] if there are fewer than `degree + 1`
    ///   points;
    /// * [`FitError::Singular`] if the design matrix is rank-deficient.
    ///
    /// # Examples
    ///
    /// ```
    /// use fingrav_core::regression::PolyFit;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
    /// let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
    /// let fit = PolyFit::fit(&xs, &ys, 1)?;
    /// assert!((fit.eval(10.0) - 23.0).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit, FitError> {
        if xs.len() != ys.len() {
            return Err(FitError::LengthMismatch);
        }
        let n_coeffs = degree + 1;
        if xs.len() < n_coeffs {
            return Err(FitError::Underdetermined);
        }

        // Normalize x for conditioning.
        let x_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let x_center = 0.5 * (x_min + x_max);
        let spread = 0.5 * (x_max - x_min);
        let x_scale = if spread > 0.0 { spread } else { 1.0 };

        // Build the normal equations A^T A c = A^T y.
        let mut ata = vec![vec![0.0; n_coeffs]; n_coeffs];
        let mut aty = vec![0.0; n_coeffs];
        for (&x, &y) in xs.iter().zip(ys) {
            let xn = (x - x_center) / x_scale;
            let mut pow = vec![1.0; n_coeffs];
            for k in 1..n_coeffs {
                pow[k] = pow[k - 1] * xn;
            }
            for i in 0..n_coeffs {
                aty[i] += pow[i] * y;
                for j in 0..n_coeffs {
                    ata[i][j] += pow[i] * pow[j];
                }
            }
        }

        let coeffs = solve(ata, aty)?;
        Ok(PolyFit {
            coeffs,
            x_center,
            x_scale,
        })
    }

    /// Degree of the fitted polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the fit at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let xn = (x - self.x_center) / self.x_scale;
        // Horner's rule.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * xn + c)
    }

    /// Root-mean-square residual over a dataset.
    pub fn rms_residual(&self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let ss: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| (self.eval(x) - y).powi(2))
            .sum();
        (ss / xs.len() as f64).sqrt()
    }

    /// Samples the fitted curve at `n` evenly spaced points over `[lo, hi]`.
    pub fn sample(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(lo, self.eval(lo))];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
// Index-based row elimination mirrors the textbook algorithm; iterator
// adaptors over split borrows of `a` would obscure it.
#[allow(clippy::needless_range_loop)] // textbook index form, see comment above
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, FitError> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(FitError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);

        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Convenience: the paper's degree-4 smoothing fit.
///
/// # Errors
///
/// Same as [`PolyFit::fit`].
pub fn degree4(xs: &[f64], ys: &[f64]) -> Result<PolyFit, FitError> {
    PolyFit::fit(xs, ys, 4)
}

/// Convenience: a straight-line fit (the Fig. 7/10 regression lines).
///
/// # Errors
///
/// Same as [`PolyFit::fit`].
pub fn linear(xs: &[f64], ys: &[f64]) -> Result<PolyFit, FitError> {
    PolyFit::fit(xs, ys, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -1.5 + 4.0 * x).collect();
        let fit = linear(&xs, &ys).unwrap();
        for &x in &xs {
            assert!((fit.eval(x) - (-1.5 + 4.0 * x)).abs() < 1e-9);
        }
        assert!(fit.rms_residual(&xs, &ys) < 1e-9);
        assert_eq!(fit.degree(), 1);
    }

    #[test]
    fn recovers_exact_quartic() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        let f = |x: f64| 2.0 - x + 0.5 * x.powi(2) - 0.1 * x.powi(3) + 0.02 * x.powi(4);
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let fit = degree4(&xs, &ys).unwrap();
        for &x in &xs {
            assert!((fit.eval(x) - f(x)).abs() < 1e-6, "at {x}");
        }
    }

    #[test]
    fn smooths_noise_toward_truth() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 100.0 + 0.5 * x + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let fit = linear(&xs, &ys).unwrap();
        // Fit should land near the noise-free line.
        assert!((fit.eval(100.0) - 150.0).abs() < 0.5);
    }

    #[test]
    fn handles_large_x_values() {
        // Nanosecond-scale abscissas (1e9-ish) must not break conditioning.
        let xs: Vec<f64> = (0..50).map(|i| 1.0e9 + i as f64 * 1.0e6).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 1e-9 * x).collect();
        let fit = degree4(&xs, &ys).unwrap();
        assert!(fit.rms_residual(&xs, &ys) < 1e-6);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            PolyFit::fit(&[1.0, 2.0], &[1.0], 1).unwrap_err(),
            FitError::LengthMismatch
        );
        assert_eq!(
            PolyFit::fit(&[1.0], &[1.0], 1).unwrap_err(),
            FitError::Underdetermined
        );
        // All x identical: singular beyond degree 0.
        assert_eq!(
            PolyFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1).unwrap_err(),
            FitError::Singular
        );
    }

    #[test]
    fn sample_endpoints() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys = xs.clone();
        let fit = linear(&xs, &ys).unwrap();
        let pts = fit.sample(0.0, 9.0, 10);
        assert_eq!(pts.len(), 10);
        assert!((pts[0].0 - 0.0).abs() < 1e-12);
        assert!((pts[9].0 - 9.0).abs() < 1e-12);
        assert_eq!(fit.sample(0.0, 1.0, 0).len(), 0);
        assert_eq!(fit.sample(0.0, 1.0, 1).len(), 1);
    }

    #[test]
    fn display_for_errors() {
        assert!(!format!("{}", FitError::Singular).is_empty());
        assert!(!format!("{}", FitError::Underdetermined).is_empty());
        assert!(!format!("{}", FitError::LengthMismatch).is_empty());
    }
}
