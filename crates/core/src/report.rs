//! CSV and markdown rendering of profiles and reports.
//!
//! The bench harness regenerates every paper table/figure as plain-text
//! artefacts: CSV series (one row per stitched point) for figures and
//! markdown tables for tabular results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::profile::{PowerProfile, ProfileAxis};
use crate::runner::KernelPowerReport;
use crate::store::{ProfileColumns, ProfileStoreView};

/// Renders any columnar store — owned [`crate::store::ProfileStore`] or
/// borrowed [`ProfileStoreView`] — as CSV with header
/// `run,exec_pos,x_ns,total_w,xcd_w,iod_w,hbm_w,rest_w`, with `x` chosen
/// by `axis`, sorted by x.
///
/// Rows come out of the columns through a stable index argsort (no point
/// structs are materialized), and points that fell outside any execution
/// render the historical `4294967295` (`u32::MAX`) sentinel in the
/// `exec_pos` field. Both implementations of [`ProfileColumns`] drive the
/// exact same formatting over the exact same kernel, so a view renders
/// byte-identically to the owned store it was decoded from.
pub fn columns_to_csv<C: ProfileColumns + ?Sized>(store: &C, axis: ProfileAxis) -> String {
    let key = |i: usize| match axis {
        ProfileAxis::RunTime => Some(store.run_time_at(i)),
        ProfileAxis::Toi => store.toi_at(i),
    };
    let mut out = String::from("run,exec_pos,x_ns,total_w,xcd_w,iod_w,hbm_w,rest_w\n");
    for i in crate::store::argsort_columns_by_axis(store, axis) {
        let i = i as usize;
        let Some(x) = key(i) else { continue };
        if !x.is_finite() {
            continue;
        }
        let power = store.power_at(i);
        let _ = writeln!(
            out,
            "{},{},{:.1},{:.3},{:.3},{:.3},{:.3},{:.3}",
            store.run_at(i),
            store.exec_pos_at(i).unwrap_or(u32::MAX),
            x,
            power.total(),
            power.xcd,
            power.iod,
            power.hbm,
            power.rest
        );
    }
    out
}

/// Renders a profile as CSV — see [`columns_to_csv`] for the format.
pub fn profile_to_csv(profile: &PowerProfile, axis: ProfileAxis) -> String {
    columns_to_csv(&profile.store, axis)
}

/// Renders a zero-copy store view as CSV, byte-identical to
/// [`profile_to_csv`] over the decoded store — the view path goes from
/// mapped file (or wire frame) straight to CSV text without materialising
/// the per-column `Vec`s.
pub fn view_to_csv(view: &ProfileStoreView<'_>, axis: ProfileAxis) -> String {
    columns_to_csv(view, axis)
}

/// Writes a profile CSV to disk.
///
/// # Errors
///
/// Propagates I/O errors (missing directory, permissions).
pub fn write_profile_csv(
    profile: &PowerProfile,
    axis: ProfileAxis,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    std::fs::write(path, profile_to_csv(profile, axis))
}

/// Renders a kernel report summary as one markdown table row:
/// `| label | exec | sse idx | ssp idx | runs | golden | SSE W | SSP W | err % |`.
pub fn report_summary_row(r: &KernelPowerReport) -> String {
    let fmt_w = |w: Option<f64>| match w {
        Some(w) => format!("{w:.0}"),
        None => "-".to_string(),
    };
    let err = match r.sse_vs_ssp_error {
        Some(e) => format!("{:.0}%", e * 100.0),
        None => "-".to_string(),
    };
    format!(
        "| {} | {:.1}us | {} | {} | {} | {} | {} | {} | {} |",
        r.label,
        r.exec_time_ns as f64 / 1_000.0,
        r.sse_index,
        r.ssp_index,
        r.runs_executed,
        r.golden_runs,
        fmt_w(r.sse_mean_total_w),
        fmt_w(r.ssp_mean_total_w),
        err
    )
}

/// The header matching [`report_summary_row`].
pub fn report_summary_header() -> String {
    "| kernel | exec | SSE idx | SSP idx | runs | golden | SSE W | SSP W | SSE vs SSP err |\n\
     |---|---|---|---|---|---|---|---|---|"
        .to_string()
}

/// Renders a full summary table for several reports.
pub fn summary_table(reports: &[&KernelPowerReport]) -> String {
    let mut out = report_summary_header();
    out.push('\n');
    for r in reports {
        out.push_str(&report_summary_row(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileKind, ProfilePoint};
    use fingrav_sim::power::ComponentPower;

    fn profile() -> PowerProfile {
        let mut p = PowerProfile::new("CB-4K-GEMM", ProfileKind::Run);
        p.push(ProfilePoint {
            run: 1,
            exec_pos: Some(2),
            toi_ns: Some(250.0),
            run_time_ns: 2_000.0,
            power: ComponentPower::new(400.0, 80.0, 70.0, 30.0),
        });
        p.push(ProfilePoint {
            run: 0,
            exec_pos: Some(0),
            toi_ns: Some(100.0),
            run_time_ns: 1_000.0,
            power: ComponentPower::new(100.0, 50.0, 40.0, 20.0),
        });
        p
    }

    #[test]
    fn csv_sorted_and_complete() {
        let csv = profile_to_csv(&profile(), ProfileAxis::RunTime);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("run,exec_pos,x_ns"));
        // Sorted by run time: the run-0 point first.
        assert!(lines[1].starts_with("0,0,1000.0"));
        assert!(lines[2].starts_with("1,2,2000.0"));
        assert!(lines[1].contains("210.000")); // total of the first point
    }

    #[test]
    fn csv_by_toi() {
        let csv = profile_to_csv(&profile(), ProfileAxis::Toi);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].contains(",100.0,"));
    }

    #[test]
    fn csv_skips_points_without_toi() {
        let mut p = profile();
        p.push(ProfilePoint {
            run: 9,
            exec_pos: None,
            toi_ns: None,
            run_time_ns: 3_000.0,
            power: ComponentPower::ZERO,
        });
        let by_toi = profile_to_csv(&p, ProfileAxis::Toi);
        assert_eq!(by_toi.lines().count(), 3, "TOI-less row skipped");
        let by_run = profile_to_csv(&p, ProfileAxis::RunTime);
        assert_eq!(by_run.lines().count(), 4, "finite run-time row kept");
        // The sentinel encoding survives in the rendered CSV bytes.
        assert!(by_run.contains(",4294967295,"));
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("fingrav-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.csv");
        write_profile_csv(&profile(), ProfileAxis::RunTime, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("run,exec_pos"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn summary_header_and_row_align() {
        let header = report_summary_header();
        let cols = header.lines().next().unwrap().matches('|').count();
        // A representative report row must have the same column count.
        use crate::guidance::GuidanceTable;
        use fingrav_sim::time::SimDuration;
        let r = KernelPowerReport {
            label: "X".into(),
            exec_time_ns: 48_000,
            guidance: *GuidanceTable::paper().lookup(SimDuration::from_micros(48)),
            margin_frac: 0.05,
            sse_index: 3,
            ssp_index: 21,
            executions_per_run: 42,
            runs_executed: 400,
            golden_runs: 361,
            throttle_detected: false,
            read_delay_ns: 750.0,
            estimated_drift_ppm: Some(18.0),
            run_profile: PowerProfile::new("X", ProfileKind::Run),
            sse_profile: PowerProfile::new("X", ProfileKind::Sse),
            ssp_profile: PowerProfile::new("X", ProfileKind::Ssp),
            sse_mean_total_w: Some(150.0),
            ssp_mean_total_w: Some(700.0),
            sse_vs_ssp_error: Some(0.78),
        };
        let row = report_summary_row(&r);
        assert_eq!(row.matches('|').count(), cols);
        assert!(row.contains("78%"));
        let table = summary_table(&[&r]);
        assert_eq!(table.lines().count(), 3);
    }
}
