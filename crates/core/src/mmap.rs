//! Memory-mapped (or read-to-buffer) access to persisted artefacts.
//!
//! [`MappedProfile`] opens a file and exposes its bytes for zero-copy
//! decoding: hand [`MappedProfile::bytes`] to
//! [`ProfileStoreView`] (for `.fgrv`
//! profile stores) or to the checkpoint entry parser (for `.fgrvckpt`
//! shard entries) and the kernels run straight over the page cache —
//! no per-column `Vec`, no decode copy.
//!
//! On 64-bit unix targets with the `mmap` crate feature (default), the
//! file is mapped read-only with a thin `unsafe extern "C"` wrapper
//! over `mmap(2)`/`munmap(2)` — deliberately minimal, no `libc`
//! dependency. Everywhere else the file is read into an owned `Vec`:
//! identical API and identical bytes, so non-unix builds and tests are
//! unaffected.

use std::fs::File;
use std::io;
use std::path::Path;

use crate::store::{ProfileStoreView, StoreCodecError};

#[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
mod sys {
    //! Raw mmap(2)/munmap(2) bindings for 64-bit unix. The constants
    //! are the POSIX-universal values (identical on Linux and the BSDs
    //! for these two flags); `off_t` is 64-bit on every supported
    //! target here, which is why the fast path is gated on
    //! `target_pointer_width = "64"`.
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    /// Pages may be read.
    pub const PROT_READ: c_int = 1;
    /// Private (copy-on-write) mapping; we never write, so this is a
    /// plain shared read of the page cache.
    pub const MAP_PRIVATE: c_int = 2;
    /// `mmap` failure sentinel (`(void *)-1`).
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// How the file's bytes are held.
enum Backing {
    /// Read-only `mmap(2)` region (64-bit unix, `mmap` feature).
    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *mut std::os::raw::c_void,
        /// Mapping length in bytes (the file size at open).
        len: usize,
    },
    /// Owned fallback buffer (non-unix, `--no-default-features`, empty
    /// files, or an `mmap` syscall failure).
    Owned(Vec<u8>),
}

/// A file opened for zero-copy decoding: mmap-backed where supported,
/// an owned read-to-`Vec` buffer otherwise. See the module docs.
///
/// The mapping is private and read-only; `MappedProfile` is `Send` and
/// `Sync` like the `&[u8]` it hands out.
pub struct MappedProfile {
    backing: Backing,
}

// SAFETY: the mapped region is immutable for the lifetime of the value
// (PROT_READ, MAP_PRIVATE, never written through `ptr`), so sharing or
// moving it across threads is no different from sharing a `Vec<u8>`.
unsafe impl Send for MappedProfile {}
unsafe impl Sync for MappedProfile {}

impl MappedProfile {
    /// Opens `path` and makes its bytes addressable. Uses `mmap(2)` on
    /// 64-bit unix (feature `mmap`, default); falls back to reading the
    /// file into an owned buffer elsewhere — and for empty files, which
    /// `mmap` rejects with `EINVAL`.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file; a failed `mmap`
    /// syscall is transparently degraded to the read fallback.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<MappedProfile> {
        let file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "file larger than the address space",
            )
        })?;
        Ok(MappedProfile {
            backing: Self::map_or_read(file, len)?,
        })
    }

    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    fn map_or_read(file: File, len: usize) -> io::Result<Backing> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Backing::Owned(Vec::new()));
        }
        // SAFETY: `fd` is a valid open descriptor for the duration of
        // the call; a PROT_READ + MAP_PRIVATE mapping of `len` bytes at
        // a kernel-chosen address aliases no Rust-managed memory. The
        // mapping outlives the `File` (POSIX keeps it valid after
        // close) and is unmapped exactly once, in `Drop`.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            // Degrade gracefully (e.g. a filesystem without mmap
            // support): same bytes, one copy.
            return Ok(Backing::Owned(Self::read_all(file, len)?));
        }
        Ok(Backing::Mapped { ptr, len })
    }

    #[cfg(not(all(unix, target_pointer_width = "64", feature = "mmap")))]
    fn map_or_read(file: File, len: usize) -> io::Result<Backing> {
        Ok(Backing::Owned(Self::read_all(file, len)?))
    }

    fn read_all(mut file: File, len: usize) -> io::Result<Vec<u8>> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            // SAFETY: `ptr` points at a live PROT_READ mapping of
            // exactly `len` bytes (established in `map_or_read`,
            // released only in `Drop`).
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.cast::<u8>(), *len)
            },
            Backing::Owned(buf) => buf,
        }
    }

    /// Number of bytes in the file.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes are served by an actual `mmap` region (false
    /// on the read-to-`Vec` fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// Parses the file as one encoded `FGRVPROF` store and returns the
    /// zero-copy view over the mapped bytes.
    ///
    /// # Errors
    ///
    /// The [`StoreCodecError`] taxonomy of
    /// [`ProfileStoreView::new`] — the mapped file is validated exactly
    /// like an in-memory buffer.
    pub fn view(&self) -> Result<ProfileStoreView<'_>, StoreCodecError> {
        ProfileStoreView::new(self.bytes())
    }
}

impl Drop for MappedProfile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: `ptr`/`len` came from a successful `mmap` and are
            // unmapped exactly once; no `bytes()` borrow can outlive
            // `self`.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

impl std::fmt::Debug for MappedProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedProfile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfilePoint;
    use crate::store::ProfileStore;
    use fingrav_sim::ComponentPower;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fingrav-mmap-{}-{name}", std::process::id()));
        p
    }

    fn sample_store() -> ProfileStore {
        let mut s = ProfileStore::new();
        for i in 0..130u32 {
            let valid = i % 3 != 0;
            s.push(ProfilePoint {
                run: i,
                exec_pos: valid.then_some(i % 7),
                toi_ns: valid.then_some(f64::from(i) * 1.5),
                run_time_ns: f64::from(i) * 10.0,
                power: ComponentPower::new(300.0, 80.0, 60.0, 40.0),
            });
        }
        s
    }

    #[test]
    fn mapped_file_round_trips_through_the_view() {
        let store = sample_store();
        let path = temp_path("roundtrip.fgrv");
        std::fs::write(&path, store.to_bytes()).unwrap();
        let mapped = MappedProfile::open(&path).unwrap();
        assert_eq!(mapped.len(), store.encoded_len());
        let view = mapped.view().unwrap();
        assert_eq!(view.to_store(), store);
        assert_eq!(view.mean_power(), store.mean_power());
        #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
        assert!(mapped.is_mapped(), "unix fast path should actually map");
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_uses_the_owned_fallback() {
        let path = temp_path("empty.fgrv");
        std::fs::write(&path, []).unwrap();
        let mapped = MappedProfile::open(&path).unwrap();
        assert!(mapped.is_empty());
        assert!(!mapped.is_mapped());
        assert!(mapped.view().is_err(), "an empty file is not a store");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(MappedProfile::open(temp_path("does-not-exist")).is_err());
    }
}
