//! Energy accounting on top of power profiles.
//!
//! Energy is power integrated over time; the paper stresses that accurate
//! fine-grain power profiles are what make application-level energy
//! estimates trustworthy, and that conflating the SSE and SSP profiles
//! produces energy errors as high as 80%.

use serde::{Deserialize, Serialize};

use crate::runner::KernelPowerReport;

/// Energy of one kernel execution from a mean power and duration.
///
/// # Examples
///
/// ```
/// use fingrav_core::energy::energy_joules;
///
/// // 700 W for 1.6 ms is 1.12 J.
/// let e = energy_joules(700.0, 1_600_000);
/// assert!((e - 1.12).abs() < 1e-9);
/// ```
pub fn energy_joules(mean_power_w: f64, exec_time_ns: u64) -> f64 {
    mean_power_w * exec_time_ns as f64 * 1e-9
}

/// SSE-vs-SSP energy comparison for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyComparison {
    /// Energy per execution using the (naive) SSE power, joules.
    pub sse_energy_j: f64,
    /// Energy per execution using the SSP power, joules.
    pub ssp_energy_j: f64,
    /// Relative error of the SSE estimate against SSP.
    pub error_frac: f64,
}

impl EnergyComparison {
    /// Builds the comparison from a kernel report, if both profiles have
    /// measurements.
    pub fn from_report(report: &KernelPowerReport) -> Option<EnergyComparison> {
        let sse = report.sse_mean_total_w?;
        let ssp = report.ssp_mean_total_w?;
        if ssp == 0.0 {
            return None;
        }
        let sse_energy_j = energy_joules(sse, report.exec_time_ns);
        let ssp_energy_j = energy_joules(ssp, report.exec_time_ns);
        Some(EnergyComparison {
            sse_energy_j,
            ssp_energy_j,
            error_frac: (ssp_energy_j - sse_energy_j).abs() / ssp_energy_j,
        })
    }
}

/// Joules to kilowatt-hours.
///
/// # Examples
///
/// ```
/// use fingrav_core::energy::joules_to_kwh;
///
/// assert!((joules_to_kwh(3_600_000.0) - 1.0).abs() < 1e-12);
/// ```
pub fn joules_to_kwh(joules: f64) -> f64 {
    joules / 3.6e6
}

/// Cluster-scale extrapolation: total energy of `gpus` devices drawing
/// `mean_power_w` each for `hours`, in kWh. This is the paper's intro
/// arithmetic (a 200B-parameter training run ≈ 11.9 GWh) applied to
/// measured kernel powers.
///
/// # Examples
///
/// ```
/// use fingrav_core::energy::cluster_energy_kwh;
///
/// // 1024 GPUs at 700 W for 48 days.
/// let kwh = cluster_energy_kwh(1024, 700.0, 48.0 * 24.0);
/// assert!(kwh > 800_000.0 && kwh < 900_000.0);
/// ```
pub fn cluster_energy_kwh(gpus: u64, mean_power_w: f64, hours: f64) -> f64 {
    gpus as f64 * mean_power_w * hours / 1_000.0
}

/// One step of an application-level kernel sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceStep {
    /// Mean power while the kernel runs, watts.
    pub power_w: f64,
    /// Execution time per invocation, ns.
    pub exec_time_ns: u64,
    /// Number of invocations.
    pub count: u64,
}

/// Total energy of a kernel sequence (the application-level view the paper
/// motivates: applications are sequences of kernels).
pub fn sequence_energy_joules(steps: &[SequenceStep]) -> f64 {
    steps
        .iter()
        .map(|s| energy_joules(s.power_w, s.exec_time_ns) * s.count as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly() {
        assert_eq!(energy_joules(100.0, 1_000_000_000), 100.0);
        assert_eq!(energy_joules(0.0, 1_000_000_000), 0.0);
        assert_eq!(energy_joules(100.0, 0), 0.0);
    }

    #[test]
    fn kwh_conversion_and_cluster_scale() {
        assert!((joules_to_kwh(7.2e6) - 2.0).abs() < 1e-12);
        // One GPU, one hour, 1 kW -> 1 kWh.
        assert!((cluster_energy_kwh(1, 1000.0, 1.0) - 1.0).abs() < 1e-12);
        // A measurement error of 20% propagates linearly to the bill.
        let accurate = cluster_energy_kwh(10_000, 700.0, 24.0);
        let naive = cluster_energy_kwh(10_000, 560.0, 24.0);
        assert!(((accurate - naive) / accurate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sequence_energy_sums() {
        let steps = vec![
            SequenceStep {
                power_w: 700.0,
                exec_time_ns: 1_000_000,
                count: 10,
            },
            SequenceStep {
                power_w: 300.0,
                exec_time_ns: 500_000,
                count: 4,
            },
        ];
        let e = sequence_energy_joules(&steps);
        let expected = 700.0 * 1e-3 * 10.0 + 300.0 * 0.5e-3 * 4.0;
        assert!((e - expected).abs() < 1e-9);
        assert_eq!(sequence_energy_joules(&[]), 0.0);
    }
}
