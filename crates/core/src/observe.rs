//! Stage-scoped observation of a running methodology pipeline.
//!
//! The simulator streams raw device moments ([`TelemetryEvent`]: logs,
//! launches, timestamp reads) out of a script session; the methodology
//! layers above it know *why* a script is running — calibration, timing
//! probe, SSP search, main run collection. This module adds that context:
//! a [`ProfilingSink`] receives [`ProfilingEvent`]s, which are either
//! stage boundaries or device events forwarded from the session in flight.
//!
//! # Ordering guarantees
//!
//! A pipeline's event stream is deterministic (it inherits the engine's
//! determinism; see [`fingrav_sim::session`]): for a given backend seed,
//! kernel, and configuration the stream is identical event for event, no
//! matter who consumes it or how slowly. Within one kernel's profiling:
//!
//! 1. Stages arrive in methodology order (calibrate → timing probe → SSP
//!    search → collect runs), each bracketed by
//!    [`ProfilingEvent::StageStarted`] / [`ProfilingEvent::StageFinished`].
//! 2. Every [`ProfilingEvent::Device`] event falls between the brackets of
//!    the stage whose script produced it, in session order.
//!
//! Campaign executors tag each kernel's stream with its campaign slot (see
//! [`crate::executor::CampaignObserver`]); streams of different slots may
//! interleave arbitrarily when sharded across workers, but each slot's own
//! stream is always in the order above — which is what makes live
//! observation compatible with the executor's bit-identical-results
//! guarantee.
//!
//! # Example: watch the stages of one profile run
//!
//! Any `FnMut(ProfilingEvent)` closure is a [`ProfilingSink`]; here one
//! collects the stage brackets while a kernel profiles:
//!
//! ```
//! use fingrav_core::observe::{ProfilingEvent, StageKind};
//! use fingrav_core::runner::{FingravRunner, RunnerConfig};
//! use fingrav_sim::config::SimConfig;
//! use fingrav_sim::engine::Simulation;
//! use fingrav_workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Simulation::new(SimConfig::default(), 7)?;
//! let kernel = suite::cb_gemm(&SimConfig::default().machine, 2048);
//!
//! let mut stages = Vec::new();
//! let mut device_events = 0usize;
//! let mut sink = |event: ProfilingEvent| match event {
//!     ProfilingEvent::StageStarted { stage } => stages.push(stage),
//!     ProfilingEvent::Device(_) => device_events += 1,
//!     _ => {}
//! };
//! let mut runner = FingravRunner::new(&mut sim, RunnerConfig::quick(6))
//!     .with_observer(&mut sink);
//! runner.profile(&kernel)?;
//!
//! // Stages arrive in methodology order, device events in between.
//! assert_eq!(
//!     stages,
//!     vec![
//!         StageKind::Calibrate,
//!         StageKind::TimingProbe,
//!         StageKind::SspSearch,
//!         StageKind::CollectRuns,
//!     ]
//! );
//! assert!(device_events > 0);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use fingrav_sim::session::{TelemetryEvent, TelemetrySink};

/// The methodology stage a device event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StageKind {
    /// Timestamp-read delay calibration (paper step 2 precursor).
    Calibrate,
    /// Timing probe + warm-up detection (paper steps 1 + 3).
    TimingProbe,
    /// SSP search (paper step 4).
    SspSearch,
    /// Main run collection with binning and top-up (paper steps 5–8).
    CollectRuns,
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageKind::Calibrate => f.write_str("calibrate"),
            StageKind::TimingProbe => f.write_str("timing-probe"),
            StageKind::SspSearch => f.write_str("ssp-search"),
            StageKind::CollectRuns => f.write_str("collect-runs"),
        }
    }
}

/// One observable moment of a running [`crate::stages::StagePipeline`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfilingEvent {
    /// A methodology stage began.
    StageStarted {
        /// The stage.
        stage: StageKind,
    },
    /// A methodology stage completed.
    StageFinished {
        /// The stage.
        stage: StageKind,
    },
    /// A device event from the script session currently in flight.
    Device(TelemetryEvent),
}

/// A consumer of [`ProfilingEvent`]s.
///
/// Any `FnMut(ProfilingEvent)` closure is a sink. Like
/// [`TelemetrySink`], implementations may block (backpressure) but must
/// not panic.
pub trait ProfilingSink {
    /// Receives one event, in pipeline order.
    fn on_event(&mut self, event: ProfilingEvent);
}

impl<F: FnMut(ProfilingEvent)> ProfilingSink for F {
    fn on_event(&mut self, event: ProfilingEvent) {
        self(event)
    }
}

/// Adapts a [`ProfilingSink`] into the [`TelemetrySink`] a script session
/// expects, wrapping every device event in [`ProfilingEvent::Device`].
pub struct ForwardDeviceEvents<'a>(pub &'a mut dyn ProfilingSink);

impl TelemetrySink for ForwardDeviceEvents<'_> {
    fn on_event(&mut self, event: TelemetryEvent) {
        self.0.on_event(ProfilingEvent::Device(event));
    }
}

// ---------------------------------------------------------------------
// Wire codecs: progress events are serializable so a cross-node campaign
// can stream them from worker to coordinator (see `crate::transport`).
// ---------------------------------------------------------------------

use crate::checkpoint::{CheckpointError, Codec};
use std::io::{self, Read, Write};

impl Codec for StageKind {
    const BLOCK: &'static str = "stage kind";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let tag: u8 = match self {
            StageKind::Calibrate => 0,
            StageKind::TimingProbe => 1,
            StageKind::SspSearch => 2,
            StageKind::CollectRuns => 3,
        };
        tag.encode(w)
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(StageKind::Calibrate),
            1 => Ok(StageKind::TimingProbe),
            2 => Ok(StageKind::SspSearch),
            3 => Ok(StageKind::CollectRuns),
            other => Err(CheckpointError::Corrupt(format!(
                "unknown stage-kind tag {other}"
            ))),
        }
    }
}

impl Codec for ProfilingEvent {
    const BLOCK: &'static str = "profiling event";
    fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            ProfilingEvent::StageStarted { stage } => {
                0u8.encode(w)?;
                stage.encode(w)
            }
            ProfilingEvent::StageFinished { stage } => {
                1u8.encode(w)?;
                stage.encode(w)
            }
            ProfilingEvent::Device(event) => {
                2u8.encode(w)?;
                event.encode(w)
            }
        }
    }
    fn decode<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(ProfilingEvent::StageStarted {
                stage: StageKind::decode(r)?,
            }),
            1 => Ok(ProfilingEvent::StageFinished {
                stage: StageKind::decode(r)?,
            }),
            2 => Ok(ProfilingEvent::Device(TelemetryEvent::decode(r)?)),
            other => {
                crate::cover::hit(crate::cover::WIRE_EVENT_BAD_TAG);
                Err(CheckpointError::Corrupt(format!(
                    "unknown profiling-event tag {other}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_kinds_display() {
        assert_eq!(StageKind::Calibrate.to_string(), "calibrate");
        assert_eq!(StageKind::TimingProbe.to_string(), "timing-probe");
        assert_eq!(StageKind::SspSearch.to_string(), "ssp-search");
        assert_eq!(StageKind::CollectRuns.to_string(), "collect-runs");
    }

    #[test]
    fn forwarder_wraps_device_events() {
        let mut seen = Vec::new();
        {
            let mut sink = |e: ProfilingEvent| seen.push(e);
            let mut fwd = ForwardDeviceEvents(&mut sink);
            fwd.on_event(TelemetryEvent::ScriptStarted { ops: 3 });
        }
        assert_eq!(
            seen,
            vec![ProfilingEvent::Device(TelemetryEvent::ScriptStarted {
                ops: 3
            })]
        );
    }
}
