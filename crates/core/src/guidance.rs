//! The FinGraV empirical profiling-guidance table (paper Table I).
//!
//! FinGraV step 1 times the kernel and looks up the recommended number of
//! runs, log-of-interest (LOI) density, and binning margin:
//!
//! | Exec range  | # Runs | # LOI    | Binning margin |
//! |-------------|--------|----------|----------------|
//! | 25–50 µs    | 400    | 1 / 5 µs | 5 %            |
//! | 50–200 µs   | 200    | 1 / 10 µs| 5 %            |
//! | 200 µs–1 ms | 200    | 1 / 10 µs| 2 %            |
//! | > 1 ms      | 200    | 1 / 10 µs| 2 %            |
//!
//! Kernels faster than 25 µs clamp to the first row (more runs, wider
//! margin); the paper observes smaller kernels need more runs to harvest
//! enough LOIs.

use fingrav_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One row of the guidance table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuidanceEntry {
    /// Inclusive lower bound of the execution-time range.
    pub min_exec: SimDuration,
    /// Exclusive upper bound (`None` = unbounded).
    pub max_exec: Option<SimDuration>,
    /// Recommended number of profiling runs.
    pub runs: u32,
    /// Target LOI density: one LOI per this much kernel execution time.
    pub loi_interval: SimDuration,
    /// Execution-time binning margin (fraction).
    pub margin_frac: f64,
}

impl GuidanceEntry {
    /// Recommended number of LOIs for a kernel of duration `exec`.
    pub fn recommended_lois(&self, exec: SimDuration) -> u32 {
        let per = self.loi_interval.as_nanos().max(1);
        (exec.as_nanos().div_ceil(per)).max(1) as u32
    }

    /// True if `exec` falls in this row's range.
    pub fn covers(&self, exec: SimDuration) -> bool {
        exec >= self.min_exec && self.max_exec.is_none_or(|hi| exec < hi)
    }
}

/// The full guidance table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidanceTable {
    entries: Vec<GuidanceEntry>,
}

impl GuidanceTable {
    /// The paper's Table I.
    pub fn paper() -> Self {
        GuidanceTable {
            entries: vec![
                GuidanceEntry {
                    min_exec: SimDuration::from_micros(25),
                    max_exec: Some(SimDuration::from_micros(50)),
                    runs: 400,
                    loi_interval: SimDuration::from_micros(5),
                    margin_frac: 0.05,
                },
                GuidanceEntry {
                    min_exec: SimDuration::from_micros(50),
                    max_exec: Some(SimDuration::from_micros(200)),
                    runs: 200,
                    loi_interval: SimDuration::from_micros(10),
                    margin_frac: 0.05,
                },
                GuidanceEntry {
                    min_exec: SimDuration::from_micros(200),
                    max_exec: Some(SimDuration::from_millis(1)),
                    runs: 200,
                    loi_interval: SimDuration::from_micros(10),
                    margin_frac: 0.02,
                },
                GuidanceEntry {
                    min_exec: SimDuration::from_millis(1),
                    max_exec: None,
                    runs: 200,
                    loi_interval: SimDuration::from_micros(10),
                    margin_frac: 0.02,
                },
            ],
        }
    }

    /// Builds a custom table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn new(entries: Vec<GuidanceEntry>) -> Self {
        assert!(!entries.is_empty(), "guidance table needs at least one row");
        GuidanceTable { entries }
    }

    /// The table rows.
    pub fn entries(&self) -> &[GuidanceEntry] {
        &self.entries
    }

    /// Looks up the row covering `exec`, clamping out-of-range durations to
    /// the nearest row.
    pub fn lookup(&self, exec: SimDuration) -> &GuidanceEntry {
        if let Some(e) = self.entries.iter().find(|e| e.covers(exec)) {
            return e;
        }
        // Below the table: first row; above: last row.
        if exec < self.entries[0].min_exec {
            &self.entries[0]
        } else {
            self.entries.last().expect("non-empty table")
        }
    }

    /// Renders the table as GitHub-flavoured markdown (used by the Table I
    /// regeneration binary).
    pub fn as_markdown(&self) -> String {
        let mut out =
            String::from("| Exec range | # Runs | # LOI | Binning margin |\n|---|---|---|---|\n");
        for e in &self.entries {
            let range = match e.max_exec {
                Some(hi) => format!("{}-{}", e.min_exec, hi),
                None => format!(">{}", e.min_exec),
            };
            out.push_str(&format!(
                "| {} | {} | 1/{} | {:.0}% |\n",
                range,
                e.runs,
                e.loi_interval,
                e.margin_frac * 100.0
            ));
        }
        out
    }
}

impl Default for GuidanceTable {
    fn default() -> Self {
        GuidanceTable::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn paper_rows_lookup() {
        let t = GuidanceTable::paper();
        assert_eq!(t.entries().len(), 4);

        let row = t.lookup(us(30));
        assert_eq!(row.runs, 400);
        assert_eq!(row.margin_frac, 0.05);
        assert_eq!(row.loi_interval, us(5));

        let row = t.lookup(us(100));
        assert_eq!(row.runs, 200);
        assert_eq!(row.margin_frac, 0.05);

        let row = t.lookup(us(500));
        assert_eq!(row.runs, 200);
        assert_eq!(row.margin_frac, 0.02);

        let row = t.lookup(SimDuration::from_millis(2));
        assert_eq!(row.runs, 200);
        assert_eq!(row.margin_frac, 0.02);
        assert!(row.max_exec.is_none());
    }

    #[test]
    fn boundaries_are_half_open() {
        let t = GuidanceTable::paper();
        // Exactly 50 us belongs to the second row.
        assert_eq!(t.lookup(us(50)).loi_interval, us(10));
        // Exactly 1 ms belongs to the last row.
        assert_eq!(t.lookup(SimDuration::from_millis(1)).margin_frac, 0.02);
    }

    #[test]
    fn sub_25us_clamps_to_first_row() {
        let t = GuidanceTable::paper();
        let row = t.lookup(us(10));
        assert_eq!(row.runs, 400);
        assert_eq!(row.margin_frac, 0.05);
    }

    #[test]
    fn recommended_loi_counts() {
        let t = GuidanceTable::paper();
        // 48 us kernel in the 25-50 us row: one LOI per 5 us -> 10.
        assert_eq!(t.lookup(us(48)).recommended_lois(us(48)), 10);
        // 1.6 ms kernel: one per 10 us -> 160.
        assert_eq!(t.lookup(us(1600)).recommended_lois(us(1600)), 160);
        // Never below one.
        assert_eq!(t.lookup(us(1)).recommended_lois(us(1)), 1);
    }

    #[test]
    fn markdown_has_all_rows() {
        let md = GuidanceTable::paper().as_markdown();
        assert_eq!(md.lines().count(), 2 + 4);
        assert!(md.contains("400"));
        assert!(md.contains("2%"));
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_table_rejected() {
        let _ = GuidanceTable::new(vec![]);
    }
}
