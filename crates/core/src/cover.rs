//! Feature-gated decoder instrumentation driving coverage-guided fuzzing.
//!
//! Every untrusted-input decode path (`FGRVPROF` stores, `FGRVCKPT`
//! checkpoint sections, `FGRVWIRE` frames) reports the validation branch
//! it took through [`hit`], a per-thread bucket counter keyed by the
//! site ids declared below. The `fgrv-fuzz` harness snapshots the table
//! after each input and retains inputs that light up new buckets — the
//! classic coverage-feedback loop, hand-rolled because the build is
//! fully offline.
//!
//! The layer is compiled out by default: without the `fuzz-cover`
//! feature, [`hit`] is an empty `#[inline(always)]` function and no
//! thread-local table exists, so production and benchmark builds carry
//! zero instrumentation cost. Only the site-id constants and
//! [`SITE_NAMES`] stay resident (they are `const` data the harness and
//! its docs need in either configuration). The `fgrv-fuzz` crate keeps
//! the feature behind its own off-by-default `cover` feature so cargo's
//! feature unification can never switch instrumentation on for a
//! default workspace build; `tests/smoke.rs` pins that with a
//! default-build bit-identity test over [`ENABLED`].
//!
//! Counters saturate rather than wrap, and [`snapshot`] always returns
//! a full table (all zeros when the feature is off), so harness code
//! needs no conditional compilation of its own.

/// Declares the instrumentation-site table: sequential `u16` ids plus
/// the parallel [`SITE_NAMES`] table used in coverage reports.
macro_rules! cover_sites {
    ($($name:ident),* $(,)?) => {
        cover_sites!(@assign 0u16; $($name),*);
        /// Number of declared instrumentation sites.
        pub const SITE_COUNT: usize = [$(stringify!($name)),*].len();
        /// Site names, indexed by site id (for coverage reports).
        pub const SITE_NAMES: [&str; SITE_COUNT] = [$(stringify!($name)),*];
    };
    (@assign $idx:expr; $name:ident $(, $rest:ident)*) => {
        #[doc = concat!("Instrumentation site `", stringify!($name), "`.")]
        pub const $name: u16 = $idx;
        cover_sites!(@assign $name + 1; $($rest),*);
    };
    (@assign $idx:expr;) => {};
}

cover_sites! {
    // FGRVPROF: shared view/owned validation (store/view.rs).
    STORE_VIEW_BAD_MAGIC,
    STORE_VIEW_BAD_VERSION,
    STORE_VIEW_TRUNC_HEADER,
    STORE_VIEW_IMPLAUSIBLE_LEN,
    STORE_VIEW_TRUNC_BODY,
    STORE_VIEW_TRAILING,
    STORE_VIEW_OK,
    // FGRVPROF: canonical-form scan (store/columns.rs).
    STORE_CANON_STRAY_BITS,
    STORE_CANON_DIRTY_SLOT,
    // FGRVPROF: streaming decoder (store/mod.rs).
    STORE_READ_BAD_MAGIC,
    STORE_READ_BAD_VERSION,
    STORE_READ_IMPLAUSIBLE_LEN,
    STORE_READ_OK,
    // FGRVCKPT: shared codec plumbing (checkpoint.rs).
    CKPT_BAD_MAGIC,
    CKPT_BAD_VERSION,
    CKPT_BAD_SECTION,
    CKPT_HEADER_OK,
    CKPT_TRAILING,
    CKPT_COUNT_OVERFLOW,
    CKPT_COUNT_IMPLAUSIBLE,
    CKPT_STR_IMPLAUSIBLE,
    CKPT_STR_BAD_UTF8,
    CKPT_SEQ_IMPLAUSIBLE,
    CKPT_BOOL_BAD,
    CKPT_OPT_BAD,
    CKPT_HOSTOP_BAD_TAG,
    CKPT_EVENT_BAD_TAG,
    CKPT_KIND_BAD_TAG,
    CKPT_STATUS_BAD_TAG,
    CKPT_HANDLE_IMPLAUSIBLE,
    CKPT_BIN_BAD_MEMBER,
    CKPT_BINNING_BAD_GOLDEN,
    CKPT_MANIFEST_OK,
    CKPT_ENTRY_OK,
    CKPT_STAGE_OK,
    CKPT_ENTRY_VIEW_OK,
    // FGRVWIRE: preamble and frame reader (transport.rs).
    WIRE_PREAMBLE_BAD_MAGIC,
    WIRE_PREAMBLE_BAD_VERSION,
    WIRE_PREAMBLE_OK,
    WIRE_FRAME_IMPLAUSIBLE_LEN,
    WIRE_BLOCK_IMPLAUSIBLE_LEN,
    WIRE_BAD_TAG,
    WIRE_ERROR_BAD_TAG,
    WIRE_EVENT_BAD_TAG,
    WIRE_OK_HELLO,
    WIRE_OK_WELCOME,
    WIRE_OK_DENY,
    WIRE_OK_REQUEST,
    WIRE_OK_ASSIGN,
    WIRE_OK_FINISHED,
    WIRE_OK_ABORT,
    WIRE_OK_STARTED,
    WIRE_OK_EVENT,
    WIRE_OK_DONE,
    WIRE_OK_FAILED,
    WIRE_OK_FETCH,
    WIRE_OK_ARTIFACT,
    WIRE_OK_BYE,
    WIRE_OK_HEARTBEAT,
    WIRE_HEARTBEAT_SKIPPED,
}

/// True when this build carries the instrumentation (the `fuzz-cover`
/// feature is enabled). Default builds are `false`, and the harness's
/// bit-identity test pins that.
pub const ENABLED: bool = cfg!(feature = "fuzz-cover");

#[cfg(feature = "fuzz-cover")]
thread_local! {
    static HITS: std::cell::RefCell<[u32; SITE_COUNT]> =
        const { std::cell::RefCell::new([0; SITE_COUNT]) };
}

/// Records one hit of instrumentation site `site` on this thread.
/// Compiled to nothing without the `fuzz-cover` feature; out-of-range
/// ids are ignored.
#[inline(always)]
pub fn hit(site: u16) {
    #[cfg(feature = "fuzz-cover")]
    HITS.with(|h| {
        if let Some(slot) = h.borrow_mut().get_mut(usize::from(site)) {
            *slot = slot.saturating_add(1);
        }
    });
    #[cfg(not(feature = "fuzz-cover"))]
    let _ = site;
}

/// Clears this thread's counter table. A no-op without `fuzz-cover`.
pub fn reset() {
    #[cfg(feature = "fuzz-cover")]
    HITS.with(|h| *h.borrow_mut() = [0; SITE_COUNT]);
}

/// This thread's counter table since the last [`reset`]. All zeros
/// without `fuzz-cover`.
pub fn snapshot() -> [u32; SITE_COUNT] {
    #[cfg(feature = "fuzz-cover")]
    {
        HITS.with(|h| *h.borrow())
    }
    #[cfg(not(feature = "fuzz-cover"))]
    {
        [0; SITE_COUNT]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_table_is_consistent() {
        assert_eq!(SITE_NAMES.len(), SITE_COUNT);
        assert_eq!(
            SITE_NAMES[usize::from(STORE_VIEW_BAD_MAGIC)],
            "STORE_VIEW_BAD_MAGIC"
        );
        assert_eq!(
            SITE_NAMES[usize::from(WIRE_HEARTBEAT_SKIPPED)],
            "WIRE_HEARTBEAT_SKIPPED"
        );
        assert_eq!(usize::from(WIRE_HEARTBEAT_SKIPPED), SITE_COUNT - 1);
    }

    #[test]
    fn hit_counts_when_enabled_and_is_silent_when_not() {
        reset();
        hit(STORE_VIEW_OK);
        hit(STORE_VIEW_OK);
        hit(u16::MAX); // out of range: ignored, never a panic
        let snap = snapshot();
        if ENABLED {
            assert_eq!(snap[usize::from(STORE_VIEW_OK)], 2);
        } else {
            assert_eq!(snap, [0; SITE_COUNT]);
        }
        reset();
        assert_eq!(snapshot(), [0; SITE_COUNT]);
    }
}
