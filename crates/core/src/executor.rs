//! Sharded execution of multi-kernel campaigns.
//!
//! [`CampaignExecutor`] distributes a [`Campaign`]'s kernels across worker
//! threads. Three properties make the parallelism safe for a measurement
//! methodology:
//!
//! * **Isolation** — every kernel gets a fresh backend from a
//!   [`BackendFactory`], so no simulator (or device-session) state is
//!   shared between shards; this is the paper's measurement guidance #2
//!   applied across threads.
//! * **Determinism** — the factory derives each backend solely from the
//!   kernel's campaign index, so results are bit-identical to the serial
//!   path and to any other worker count or scheduling order.
//! * **Order preservation** — workers send `(index, result)` pairs over a
//!   channel and the collector writes them into their campaign slots, so
//!   the report lists kernels in campaign order regardless of completion
//!   order.
//!
//! Failures follow the configured [`ErrorPolicy`]: `FailFast` stops
//! claiming new kernels at the first error (and
//! [`CampaignOutcome::into_report`] surfaces the lowest-index error, which
//! is deterministic — see the policy docs), while `CollectAll` profiles
//! everything and reports every error alongside the successful reports,
//! which the pre-refactor serial loop could not do.
//!
//! Campaigns are also *observable and cancellable*:
//! [`CampaignExecutor::execute_observed`] streams per-entry lifecycle and
//! device events into a [`CampaignObserver`] while workers run, and a
//! [`CancellationToken`] stops the campaign early under **both** error
//! policies — pending entries are skipped and in-flight script sessions
//! abort cooperatively at their next host boundary (surfacing as
//! [`MethodologyError::Aborted`] on their slots). Each slot's event stream
//! is deterministic regardless of worker count; only the interleaving
//! *between* slots depends on scheduling.
//!
//! Campaigns are also *durable*:
//! [`CampaignExecutor::execute_sharded`] persists every finished entry
//! into a [`crate::checkpoint`] directory as it completes, and
//! [`CampaignExecutor::resume`] finishes a cancelled/crashed campaign from
//! that checkpoint — re-measuring only the unfinished entries — with
//! final artifacts byte-identical to an uninterrupted run.
//!
//! # Example: cancel a sharded campaign, resume it byte-identically
//!
//! ```
//! use fingrav_core::backend::SimulationFactory;
//! use fingrav_core::campaign::Campaign;
//! use fingrav_core::executor::{CampaignExecutor, CampaignObserver, CancellationToken};
//! use fingrav_core::runner::{KernelPowerReport, RunnerConfig};
//! use fingrav_sim::config::SimConfig;
//! use fingrav_workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = SimConfig::default().machine.clone();
//! let mut campaign = Campaign::new(RunnerConfig::quick(6));
//! campaign.add_all(suite::gemm_suite(&machine).into_iter().take(2).map(|k| k.desc));
//! let factory = SimulationFactory::new(SimConfig::default(), 99);
//! let dir = std::env::temp_dir().join(format!("fingrav-doc-resume-{}", std::process::id()));
//!
//! // An observer that cancels the campaign after the first entry lands.
//! struct CancelAfterOne(CancellationToken);
//! impl CampaignObserver for CancelAfterOne {
//!     fn entry_finished(&self, _index: usize, _report: &KernelPowerReport) {
//!         self.0.abort();
//!     }
//! }
//! let observer = CancelAfterOne(CancellationToken::new());
//! let partial = CampaignExecutor::serial()
//!     .execute_sharded_observed(&campaign, &factory, &dir, &observer, &observer.0)?;
//! assert!(!partial.is_complete(), "cancellation left work undone");
//!
//! // Resume re-measures only the unfinished entries; the result is
//! // byte-identical to an uninterrupted run of the same campaign.
//! let resumed = CampaignExecutor::serial()
//!     .resume(&campaign, &factory, &dir)?
//!     .into_report()?;
//! let direct = CampaignExecutor::serial().run(&campaign, &factory)?;
//! assert_eq!(resumed, direct);
//! std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use crate::backend::{BackendFactory, PowerBackend};
use crate::campaign::{Campaign, CampaignReport};
use crate::checkpoint::{CampaignManifest, CheckpointDir, CheckpointError, EntryStatus};
use crate::error::{MethodologyError, MethodologyResult};
use crate::observe::{ProfilingEvent, ProfilingSink};
use crate::runner::{FingravRunner, KernelPowerReport};
use fingrav_sim::engine::EngineStats;
use fingrav_sim::session::TelemetryEvent;

/// Cooperative cancellation for a whole campaign: the same shared-flag
/// type a single script session aborts with, shared across every session
/// the campaign starts.
pub type CancellationToken = fingrav_sim::session::AbortHandle;

/// Live observer of a sharded campaign.
///
/// Methods take `&self` and may be called concurrently from worker
/// threads (the trait requires `Sync`); all default to no-ops so
/// implementors override only what they watch. Calls for one slot always
/// arrive in order (`entry_started`, then its `entry_event`s, then exactly
/// one of `entry_finished`/`entry_failed`); calls for different slots
/// interleave arbitrarily under sharding.
pub trait CampaignObserver: Sync {
    /// A worker claimed entry `index` and is about to profile it.
    fn entry_started(&self, index: usize, label: &str) {
        let _ = (index, label);
    }
    /// A stage boundary or device event of entry `index`'s profiling.
    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        let _ = (index, event);
    }
    /// Entry `index` produced a report.
    fn entry_finished(&self, index: usize, report: &KernelPowerReport) {
        let _ = (index, report);
    }
    /// Engine hot-loop counters of the backend that profiled entry
    /// `index`, harvested right before its `entry_finished`. Only emitted
    /// for backends that track them (the simulator does); fleet-mode
    /// workers surface these as throughput telemetry.
    fn entry_engine_stats(&self, index: usize, stats: EngineStats) {
        let _ = (index, stats);
    }
    /// Entry `index` failed (including [`MethodologyError::Aborted`] when
    /// a cancellation cut its session short).
    fn entry_failed(&self, index: usize, error: &MethodologyError) {
        let _ = (index, error);
    }
    /// Entry `index` was never started (fail-fast or cancellation).
    fn entry_skipped(&self, index: usize) {
        let _ = index;
    }
    /// A distributed worker holding entry `index` went byte-silent past
    /// its idle deadline; the coordinator abandoned the connection and
    /// re-queued the entry to the front of the plan. Only emitted by
    /// [`crate::transport::Coordinator`] — local executors never evict.
    /// The entry will be `entry_started` again when another worker (or
    /// the same one, reconnected) claims it.
    fn entry_evicted(&self, index: usize) {
        let _ = index;
    }
}

/// A [`CampaignObserver`] that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCampaignObserver;

impl CampaignObserver for NoopCampaignObserver {}

/// A ready-made observer tracking live per-slot progress counters:
/// emitted power logs, completed launches, and finished entries. Cheap
/// enough to attach to any campaign; compose it inside a richer observer
/// for display.
#[derive(Debug)]
pub struct CampaignTally {
    logs: Vec<AtomicU64>,
    launches: Vec<AtomicU64>,
    finished: AtomicUsize,
    engine_events: AtomicU64,
    engine_scripts: AtomicU64,
}

impl CampaignTally {
    /// Creates a tally for a campaign of `entries` slots.
    pub fn new(entries: usize) -> Self {
        CampaignTally {
            logs: (0..entries).map(|_| AtomicU64::new(0)).collect(),
            launches: (0..entries).map(|_| AtomicU64::new(0)).collect(),
            finished: AtomicUsize::new(0),
            engine_events: AtomicU64::new(0),
            engine_scripts: AtomicU64::new(0),
        }
    }

    /// Power logs emitted so far while profiling slot `index`.
    pub fn logs(&self, index: usize) -> u64 {
        self.logs[index].load(Ordering::Relaxed)
    }

    /// Timed launches completed so far while profiling slot `index`.
    pub fn launches(&self, index: usize) -> u64 {
        self.launches[index].load(Ordering::Relaxed)
    }

    /// Entries that have produced a report so far.
    pub fn finished(&self) -> usize {
        self.finished.load(Ordering::Relaxed)
    }

    /// Engine events popped across all finished entries (simulator
    /// backends only — the hot-loop throughput counter).
    pub fn engine_events(&self) -> u64 {
        self.engine_events.load(Ordering::Relaxed)
    }

    /// Engine scripts run across all finished entries (simulator backends
    /// only).
    pub fn engine_scripts(&self) -> u64 {
        self.engine_scripts.load(Ordering::Relaxed)
    }
}

impl CampaignObserver for CampaignTally {
    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        if let ProfilingEvent::Device(device) = event {
            match device {
                TelemetryEvent::PowerLogEmitted { .. } => {
                    self.logs[index].fetch_add(1, Ordering::Relaxed);
                }
                TelemetryEvent::LaunchCompleted { .. } => {
                    self.launches[index].fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }

    fn entry_finished(&self, _index: usize, _report: &KernelPowerReport) {
        self.finished.fetch_add(1, Ordering::Relaxed);
    }

    fn entry_engine_stats(&self, _index: usize, stats: EngineStats) {
        self.engine_events
            .fetch_add(stats.events_popped, Ordering::Relaxed);
        self.engine_scripts
            .fetch_add(stats.scripts_run, Ordering::Relaxed);
    }
}

/// What the executor does when a kernel's measurement fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Stop claiming new kernels at the first failure; kernels already in
    /// flight finish. The first error *by campaign index* is always
    /// observed (workers claim indices in ascending order, so every index
    /// below a failing one has already been claimed and runs to
    /// completion), making [`CampaignOutcome::into_report`]'s error choice
    /// deterministic.
    #[default]
    FailFast,
    /// Measure every kernel regardless of failures and collect all errors;
    /// the serial runner's behaviour of silently stopping at the first
    /// failure becomes an explicit per-kernel record instead.
    CollectAll,
}

/// Sharded campaign runner: worker count + error policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignExecutor {
    workers: usize,
    policy: ErrorPolicy,
}

impl CampaignExecutor {
    /// Creates an executor with an explicit worker count (clamped to at
    /// least one). One worker executes in place, without spawning.
    pub fn new(workers: usize) -> Self {
        CampaignExecutor {
            workers: workers.max(1),
            policy: ErrorPolicy::default(),
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        CampaignExecutor::new(workers)
    }

    /// A single-worker (serial, in-place) executor.
    pub fn serial() -> Self {
        CampaignExecutor::new(1)
    }

    /// Sets the error policy.
    #[must_use]
    pub fn error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured error policy.
    pub fn policy(&self) -> ErrorPolicy {
        self.policy
    }

    /// Measures every campaign entry, sharded across the configured
    /// workers, and returns the per-slot outcome (campaign order).
    pub fn execute<F: BackendFactory>(&self, campaign: &Campaign, factory: &F) -> CampaignOutcome {
        self.execute_observed(
            campaign,
            factory,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    }

    /// Like [`CampaignExecutor::execute`], streaming per-entry lifecycle
    /// and device events into `observer` while workers run and honoring
    /// `cancel`: once the token fires, no new entry starts (they are
    /// reported skipped, under both error policies) and every in-flight
    /// script session aborts at its next host boundary, surfacing
    /// [`MethodologyError::Aborted`] on its slot.
    ///
    /// With a no-op observer and an unfired token this is exactly
    /// [`CampaignExecutor::execute`] — same backend call sequence, same
    /// bit-identical results.
    pub fn execute_observed<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        observer: &dyn CampaignObserver,
        cancel: &CancellationToken,
    ) -> CampaignOutcome {
        let plan: Vec<usize> = (0..campaign.len()).collect();
        self.execute_plan(
            campaign,
            factory,
            &plan,
            observer,
            cancel,
            CampaignOutcome::empty(campaign.len()),
        )
    }

    /// Runs the claim loop over an explicit plan of campaign indices,
    /// merging the results into `outcome` (whose slots outside the plan —
    /// e.g. entries restored from a checkpoint — are left untouched).
    /// Shared by the full, sharded, and resumed execution paths, so all
    /// three issue identical per-slot backend call sequences.
    fn execute_plan<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        plan: &[usize],
        observer: &dyn CampaignObserver,
        cancel: &CancellationToken,
        mut outcome: CampaignOutcome,
    ) -> CampaignOutcome {
        let n = plan.len();
        if n == 0 {
            return outcome;
        }

        if self.workers == 1 {
            // In-place serial path: no threads, same claim loop semantics.
            for (pos, &index) in plan.iter().enumerate() {
                if cancel.is_aborted() {
                    outcome.skipped.extend(plan[pos..].iter().copied());
                    break;
                }
                match profile_slot(campaign, factory, index, observer, cancel) {
                    Ok(report) => outcome.reports[index] = Some(report),
                    Err(e) => {
                        outcome.errors.push((index, e));
                        if self.policy == ErrorPolicy::FailFast {
                            outcome.skipped.extend(plan[pos + 1..].iter().copied());
                            break;
                        }
                    }
                }
            }
            for &index in &outcome.skipped {
                observer.entry_skipped(index);
            }
            return outcome;
        }

        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let fail_fast = self.policy == ErrorPolicy::FailFast;
        let (tx, rx) = mpsc::channel::<(usize, MethodologyResult<KernelPowerReport>)>();

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                let tx = tx.clone();
                let next = &next;
                let cancelled = &cancelled;
                scope.spawn(move || loop {
                    if cancel.is_aborted() || (fail_fast && cancelled.load(Ordering::Acquire)) {
                        return;
                    }
                    let pos = next.fetch_add(1, Ordering::Relaxed);
                    if pos >= n {
                        return;
                    }
                    let index = plan[pos];
                    let result = profile_slot(campaign, factory, index, observer, cancel);
                    if result.is_err() && fail_fast {
                        cancelled.store(true, Ordering::Release);
                    }
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);

            // Order-preserving collection: completion order is arbitrary,
            // slot order is not.
            for (index, result) in rx {
                match result {
                    Ok(report) => outcome.reports[index] = Some(report),
                    Err(e) => outcome.errors.push((index, e)),
                }
            }
        });

        outcome.errors.sort_by_key(|(index, _)| *index);
        outcome.skipped = plan
            .iter()
            .copied()
            .filter(|&i| {
                outcome.reports[i].is_none() && !outcome.errors.iter().any(|(e, _)| *e == i)
            })
            .collect();
        for &index in &outcome.skipped {
            observer.entry_skipped(index);
        }
        outcome
    }

    /// Like [`CampaignExecutor::execute`], but *durable*: the campaign is
    /// planned into a checkpoint directory first (manifest with per-entry
    /// statuses, entries sharded round-robin across the worker count), and
    /// every entry's full report is persisted under its shard the moment
    /// it finishes — so a cancelled or crashed campaign can later be
    /// completed with [`CampaignExecutor::resume`] and yield artifacts
    /// byte-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Checkpoint`] when the checkpoint
    /// directory cannot be created or a persistence write fails
    /// (measurement errors stay inside the returned outcome, as in
    /// [`CampaignExecutor::execute`]).
    pub fn execute_sharded<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        dir: &Path,
    ) -> MethodologyResult<CampaignOutcome> {
        self.execute_sharded_observed(
            campaign,
            factory,
            dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    }

    /// [`CampaignExecutor::execute_sharded`] with a live observer and a
    /// cancellation token (same contract as
    /// [`CampaignExecutor::execute_observed`]).
    ///
    /// # Errors
    ///
    /// As [`CampaignExecutor::execute_sharded`].
    pub fn execute_sharded_observed<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        dir: &Path,
        observer: &dyn CampaignObserver,
        cancel: &CancellationToken,
    ) -> MethodologyResult<CampaignOutcome> {
        let ckdir = CheckpointDir::create(dir).map_err(MethodologyError::from)?;
        // Refuse to silently repurpose a directory that already checkpoints
        // a *different* campaign: its stale entry files would poison this
        // run (or a later gather) with misleading corruption errors. A
        // matching digest is fine — re-running the same campaign over its
        // own checkpoint just re-verifies the persisted entries.
        if ckdir.manifest_path().is_file() {
            let existing = ckdir.read_manifest().map_err(MethodologyError::from)?;
            existing
                .verify_against(campaign)
                .map_err(MethodologyError::from)?;
        }
        let manifest = CampaignManifest::plan(campaign, factory, self.workers);
        ckdir
            .write_manifest(&manifest)
            .map_err(MethodologyError::from)?;
        let plan: Vec<usize> = (0..campaign.len()).collect();
        self.run_checkpointed(
            campaign,
            factory,
            &ckdir,
            manifest,
            &plan,
            observer,
            cancel,
            CampaignOutcome::empty(campaign.len()),
        )
    }

    /// Completes a previously checkpointed campaign: entries the manifest
    /// records as done are restored from their persisted artifacts (no
    /// re-measurement), everything else — pending, failed, or aborted
    /// entries — is re-planned across this executor's workers and measured
    /// exactly as an uninterrupted run would have, because every slot's
    /// backend derives solely from its campaign index.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Checkpoint`] when the checkpoint is
    /// missing, damaged (typed causes in
    /// [`crate::checkpoint::CheckpointError`]), or was taken under a
    /// different campaign configuration (config-digest mismatch).
    pub fn resume<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        dir: &Path,
    ) -> MethodologyResult<CampaignOutcome> {
        self.resume_observed(
            campaign,
            factory,
            dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    }

    /// [`CampaignExecutor::resume`] with a live observer and a
    /// cancellation token.
    ///
    /// # Errors
    ///
    /// As [`CampaignExecutor::resume`].
    pub fn resume_observed<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        dir: &Path,
        observer: &dyn CampaignObserver,
        cancel: &CancellationToken,
    ) -> MethodologyResult<CampaignOutcome> {
        let ckdir = CheckpointDir::open(dir).map_err(MethodologyError::from)?;
        let mut manifest = ckdir.read_manifest().map_err(MethodologyError::from)?;
        manifest
            .verify_against(campaign)
            .map_err(MethodologyError::from)?;

        let (restored, plan) =
            crate::checkpoint::restore_done_entries(&ckdir, campaign, &mut manifest)
                .map_err(MethodologyError::from)?;
        let mut outcome = CampaignOutcome::empty(campaign.len());
        for (index, report) in restored {
            outcome.reports[index] = Some(report);
        }
        if plan.is_empty() {
            return Ok(outcome);
        }
        // Re-plan the remaining entries round-robin across this executor's
        // workers (which may differ from the original run's).
        manifest.workers = self.workers as u32;
        for (pos, &index) in plan.iter().enumerate() {
            manifest.entries[index].shard = (pos % self.workers) as u32;
        }
        ckdir
            .write_manifest(&manifest)
            .map_err(MethodologyError::from)?;
        let mut resumed = self.run_checkpointed(
            campaign, factory, &ckdir, manifest, &plan, observer, cancel, outcome,
        )?;
        resumed.skipped.sort_unstable();
        Ok(resumed)
    }

    /// Shared tail of the sharded and resumed paths: wraps the caller's
    /// observer in the persisting observer, runs the plan over the (possibly
    /// prefilled) outcome, then surfaces any persistence failure recorded
    /// along the way.
    #[allow(clippy::too_many_arguments)] // internal driver; args mirror run()'s knobs
    fn run_checkpointed<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
        ckdir: &CheckpointDir,
        manifest: CampaignManifest,
        plan: &[usize],
        observer: &dyn CampaignObserver,
        cancel: &CancellationToken,
        prefilled: CampaignOutcome,
    ) -> MethodologyResult<CampaignOutcome> {
        // One directory scan up front: entry files left by an earlier run
        // (the crash window between an entry write and its manifest
        // update) are indexed here so the per-entry persist path never
        // walks the directory itself.
        let mut preexisting: Vec<Vec<(u32, std::path::PathBuf)>> = vec![Vec::new(); campaign.len()];
        for (shard, index, path) in ckdir.entry_files().map_err(MethodologyError::from)? {
            if index < preexisting.len() {
                preexisting[index].push((shard, path));
            }
        }
        let persist = PersistingObserver {
            inner: observer,
            dir: ckdir,
            state: Mutex::new(manifest),
            preexisting,
            failure: Mutex::new(None),
        };
        let outcome = self.execute_plan(campaign, factory, plan, &persist, cancel, prefilled);
        if let Some(e) = persist.failure.into_inner().expect("persist failure lock") {
            return Err(e.into());
        }
        Ok(outcome)
    }

    /// Measures every campaign entry and assembles the combined report
    /// (convenience over [`CampaignExecutor::execute`] +
    /// [`CampaignOutcome::into_report`]).
    ///
    /// # Errors
    ///
    /// Returns the lowest-index measurement error, under either policy.
    pub fn run<F: BackendFactory>(
        &self,
        campaign: &Campaign,
        factory: &F,
    ) -> MethodologyResult<CampaignReport> {
        self.execute(campaign, factory).into_report()
    }
}

/// Observer wrapper that makes a campaign durable: every finished entry's
/// report is written under its planned shard the moment it exists, and the
/// manifest statuses are kept current (atomic rewrite per change, so a
/// crash at any point leaves a resumable checkpoint). Persistence failures
/// cannot surface through the observer interface, so the first one is
/// recorded and re-raised after the campaign drains.
struct PersistingObserver<'a> {
    inner: &'a dyn CampaignObserver,
    dir: &'a CheckpointDir,
    state: Mutex<CampaignManifest>,
    /// Entry files found on disk before this run started, per campaign
    /// index (scanned once in `run_checkpointed`; normally all empty).
    preexisting: Vec<Vec<(u32, std::path::PathBuf)>>,
    failure: Mutex<Option<CheckpointError>>,
}

impl PersistingObserver<'_> {
    fn record_failure(&self, e: CheckpointError) {
        let mut slot = self.failure.lock().expect("persist failure lock");
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn persist_finished(
        &self,
        index: usize,
        report: &KernelPowerReport,
    ) -> Result<(), CheckpointError> {
        let (shard, digest) = {
            let state = self.state.lock().expect("manifest lock");
            (state.entries[index].shard, state.config_digest)
        };
        // A file for this entry may already exist (crash window between an
        // earlier entry write and its manifest update). The fresh result
        // must be bit-identical to it — slots derive solely from their
        // campaign index — so a disagreement means the checkpoint and the
        // campaign have diverged, and it is reported with the shards and
        // the first differing column rather than silently overwritten.
        // Encoding once, from the borrowed report, serves both the
        // comparison (the format is canonical, so byte-equality is
        // value-equality) and the write — no report clone, no re-decode.
        let bytes = crate::checkpoint::encode_entry_bytes(index as u32, digest, report);
        for (old_shard, path) in &self.preexisting[index] {
            let old = crate::mmap::MappedProfile::open(path)?;
            crate::checkpoint::verify_duplicate_bytes(
                index,
                *old_shard,
                old.bytes(),
                shard,
                &bytes,
            )?;
        }
        self.dir.write_entry_bytes(shard, index, &bytes)?;
        let mut state = self.state.lock().expect("manifest lock");
        state.entries[index].status = EntryStatus::Done;
        self.dir.write_manifest(&state)
    }

    fn set_status(&self, index: usize, status: EntryStatus) -> Result<(), CheckpointError> {
        let mut state = self.state.lock().expect("manifest lock");
        state.entries[index].status = status;
        self.dir.write_manifest(&state)
    }
}

impl CampaignObserver for PersistingObserver<'_> {
    fn entry_started(&self, index: usize, label: &str) {
        self.inner.entry_started(index, label);
    }

    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        self.inner.entry_event(index, event);
    }

    fn entry_finished(&self, index: usize, report: &KernelPowerReport) {
        if let Err(e) = self.persist_finished(index, report) {
            self.record_failure(e);
        }
        self.inner.entry_finished(index, report);
    }

    fn entry_engine_stats(&self, index: usize, stats: EngineStats) {
        self.inner.entry_engine_stats(index, stats);
    }

    fn entry_failed(&self, index: usize, error: &MethodologyError) {
        let status = if matches!(error, MethodologyError::Aborted) {
            EntryStatus::Aborted
        } else {
            EntryStatus::Failed
        };
        if let Err(e) = self.set_status(index, status) {
            self.record_failure(e);
        }
        self.inner.entry_failed(index, error);
    }

    fn entry_skipped(&self, index: usize) {
        self.inner.entry_skipped(index);
    }

    fn entry_evicted(&self, index: usize) {
        self.inner.entry_evicted(index);
    }
}

/// Forwards one slot's profiling events to the campaign observer.
struct SlotSink<'o> {
    index: usize,
    observer: &'o dyn CampaignObserver,
}

impl ProfilingSink for SlotSink<'_> {
    fn on_event(&mut self, event: ProfilingEvent) {
        self.observer.entry_event(self.index, &event);
    }
}

/// Profiles one campaign slot on a fresh backend (shared by the serial and
/// threaded paths, so both issue the identical call sequence), reporting
/// its lifecycle to the observer and honoring the cancellation token.
///
/// Crate-visible because it is also the *remote execution seam*: a
/// [`crate::transport`] worker measures each assigned entry through this
/// exact function, so a cross-node campaign issues the identical per-slot
/// backend call sequence as a local one — which is what reduces the
/// distributed byte-identity guarantee to the executor's existing one.
pub(crate) fn profile_slot<F: BackendFactory>(
    campaign: &Campaign,
    factory: &F,
    index: usize,
    observer: &dyn CampaignObserver,
    cancel: &CancellationToken,
) -> MethodologyResult<KernelPowerReport> {
    let entry = &campaign.entries()[index];
    observer.entry_started(index, &entry.desc.name);
    let result = (|| {
        let mut backend = factory.create(index)?;
        let report = {
            let mut sink = SlotSink { index, observer };
            let mut runner =
                FingravRunner::new(&mut backend, entry.effective_config(campaign.config()))
                    .with_observer(&mut sink)
                    .with_abort(cancel.clone());
            runner.profile(&entry.desc)?
        };
        // The runner's borrow has ended: harvest the engine's hot-loop
        // counters so fleet-mode workers can report throughput.
        Ok((report, backend.engine_stats()))
    })();
    match result {
        Ok((report, stats)) => {
            if let Some(stats) = stats {
                observer.entry_engine_stats(index, stats);
            }
            observer.entry_finished(index, &report);
            Ok(report)
        }
        Err(e) => {
            observer.entry_failed(index, &e);
            Err(e)
        }
    }
}

/// Per-slot outcome of a sharded campaign, in campaign order.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// One slot per campaign entry: `Some` on success, `None` on failure
    /// or skip.
    pub reports: Vec<Option<KernelPowerReport>>,
    /// Measurement errors, sorted by campaign index.
    pub errors: Vec<(usize, MethodologyError)>,
    /// Indices never started (fail-fast cancellation), ascending.
    pub skipped: Vec<usize>,
    /// Indices whose assignment was evicted from a silent worker and
    /// re-planned, in eviction order. An index can repeat (a re-planned
    /// entry can be evicted again); every evicted entry still resolves
    /// into exactly one of `reports`/`errors`/`skipped`, so this is
    /// diagnostic fleet telemetry, not an outcome slot. Always empty for
    /// local (non-transport) executions.
    pub evictions: Vec<usize>,
}

impl CampaignOutcome {
    /// An outcome with `n` empty slots (no reports, errors, or skips).
    pub fn empty(n: usize) -> Self {
        let mut reports = Vec::with_capacity(n);
        reports.resize_with(n, || None);
        CampaignOutcome {
            reports,
            errors: Vec::new(),
            skipped: Vec::new(),
            evictions: Vec::new(),
        }
    }

    /// True when every entry produced a report.
    pub fn is_complete(&self) -> bool {
        self.reports.iter().all(Option::is_some)
    }

    /// Converts into a [`CampaignReport`], failing with the lowest-index
    /// error if any slot failed.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index measurement error.
    pub fn into_report(mut self) -> MethodologyResult<CampaignReport> {
        if let Some((_, e)) = self.errors.first() {
            return Err(e.clone());
        }
        if let Some(index) = self.skipped.first() {
            // Unreachable through the executor (skips only follow errors),
            // but a hand-built outcome must not silently drop slots.
            return Err(MethodologyError::Backend(format!(
                "campaign slot {index} was skipped without an error"
            )));
        }
        let mut reports = Vec::with_capacity(self.reports.len());
        for (index, report) in self.reports.drain(..).enumerate() {
            // Also unreachable through the executor; an empty hand-built
            // slot must surface as an error, not a panic.
            reports.push(report.ok_or_else(|| {
                MethodologyError::Backend(format!("campaign slot {index} produced no report"))
            })?);
        }
        Ok(CampaignReport { reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FnBackendFactory, SimulationFactory};
    use crate::runner::RunnerConfig;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::kernel::KernelDesc;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel(name: &str, us: u64, xcd: f64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            base_exec: SimDuration::from_micros(us),
            freq_insensitive_frac: 0.5,
            activity: Activity::new(xcd, 0.4, 0.3),
            compute_utilization: xcd * 0.7,
            flops: 1e10,
            hbm_bytes: 1e7,
            llc_bytes: 1e8,
            workgroups: 128,
        }
    }

    fn campaign_of(n: usize) -> Campaign {
        let mut campaign = Campaign::new(RunnerConfig::quick(8));
        for i in 0..n {
            campaign.add(kernel(
                &format!("k{i}"),
                120 + 40 * i as u64,
                0.4 + 0.1 * i as f64,
            ));
        }
        campaign
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let campaign = campaign_of(4);
        let factory = SimulationFactory::new(SimConfig::default(), 501);
        let serial = CampaignExecutor::serial().run(&campaign, &factory).unwrap();
        let parallel = CampaignExecutor::new(4).run(&campaign, &factory).unwrap();
        assert_eq!(serial, parallel);
        // And both match the legacy closure path given the same seeds.
        let legacy = campaign
            .run(|i| Simulation::new(SimConfig::default(), factory.slot_seed(i)).expect("valid"))
            .unwrap();
        assert_eq!(serial, legacy);
    }

    #[test]
    fn engine_stats_reach_campaign_observers() {
        let campaign = campaign_of(2);
        let factory = SimulationFactory::new(SimConfig::default(), 501);
        let tally = CampaignTally::new(2);
        let outcome = CampaignExecutor::serial().execute_observed(
            &campaign,
            &factory,
            &tally,
            &CancellationToken::new(),
        );
        assert!(outcome.is_complete());
        assert!(
            tally.engine_events() > 1_000,
            "profiling pops thousands of engine events, saw {}",
            tally.engine_events()
        );
        assert!(
            tally.engine_scripts() >= 2,
            "each entry runs several scripts, saw {}",
            tally.engine_scripts()
        );
    }

    #[test]
    fn reports_arrive_in_campaign_order() {
        // Kernel 0 is much longer than the rest, so with several workers
        // it finishes last; its report must still occupy slot 0.
        let mut campaign = Campaign::new(RunnerConfig::quick(8));
        campaign
            .add(kernel("slowest", 1200, 0.9))
            .add(kernel("quick-a", 60, 0.3))
            .add(kernel("quick-b", 70, 0.4));
        let factory = SimulationFactory::new(SimConfig::default(), 502);
        let report = CampaignExecutor::new(3).run(&campaign, &factory).unwrap();
        let labels: Vec<&str> = report.reports.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["slowest", "quick-a", "quick-b"]);
    }

    #[test]
    fn per_entry_config_overrides_apply_in_parallel() {
        let mut campaign = Campaign::new(RunnerConfig::quick(8));
        campaign
            .add(kernel("default", 150, 0.5))
            .add_with_config(kernel("more-runs", 150, 0.5), RunnerConfig::quick(16));
        let factory = SimulationFactory::new(SimConfig::default(), 503);
        let report = CampaignExecutor::new(2).run(&campaign, &factory).unwrap();
        assert!(report.reports[0].runs_executed >= 8);
        assert!(
            report.reports[1].runs_executed >= 16,
            "override must reach the worker"
        );
    }

    fn failing_factory(
        bad_index: usize,
    ) -> FnBackendFactory<impl Fn(usize) -> MethodologyResult<Simulation> + Send + Sync> {
        FnBackendFactory(move |i: usize| {
            if i == bad_index {
                Err(MethodologyError::Backend(format!("slot {i} is broken")))
            } else {
                Simulation::new(SimConfig::default(), 600 + i as u64)
                    .map_err(|e| MethodologyError::Backend(e.to_string()))
            }
        })
    }

    #[test]
    fn fail_fast_surfaces_the_lowest_index_error() {
        let campaign = campaign_of(5);
        let err = CampaignExecutor::new(3)
            .run(&campaign, &failing_factory(1))
            .unwrap_err();
        assert!(matches!(err, MethodologyError::Backend(ref m) if m.contains("slot 1")));
    }

    #[test]
    fn collect_all_measures_every_healthy_slot() {
        let campaign = campaign_of(5);
        let outcome = CampaignExecutor::new(2)
            .error_policy(ErrorPolicy::CollectAll)
            .execute(&campaign, &failing_factory(2));
        assert!(!outcome.is_complete());
        assert!(outcome.skipped.is_empty(), "collect-all never skips");
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.errors[0].0, 2);
        let completed = outcome.reports.iter().filter(|r| r.is_some()).count();
        assert_eq!(completed, 4, "all healthy slots measured");
        // Converting still surfaces the error.
        assert!(outcome.into_report().is_err());
    }

    #[test]
    fn serial_fail_fast_skips_the_tail() {
        let campaign = campaign_of(4);
        let outcome = CampaignExecutor::serial().execute(&campaign, &failing_factory(1));
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.skipped, vec![2, 3]);
        assert!(outcome.reports[0].is_some());
    }

    #[test]
    fn empty_campaign_yields_empty_report() {
        let campaign = Campaign::with_defaults();
        let factory = SimulationFactory::new(SimConfig::default(), 1);
        let report = CampaignExecutor::new(4).run(&campaign, &factory).unwrap();
        assert!(report.reports.is_empty());
    }

    #[test]
    fn hand_built_outcomes_error_instead_of_panicking() {
        // All CampaignOutcome fields are public; malformed hand-built
        // values must surface as errors, never panics.
        let missing_report = CampaignOutcome {
            reports: vec![None],
            errors: Vec::new(),
            skipped: Vec::new(),
            evictions: Vec::new(),
        };
        assert!(matches!(
            missing_report.into_report(),
            Err(MethodologyError::Backend(ref m)) if m.contains("slot 0")
        ));
        let unexplained_skip = CampaignOutcome {
            reports: vec![None],
            errors: Vec::new(),
            skipped: vec![0],
            evictions: Vec::new(),
        };
        assert!(matches!(
            unexplained_skip.into_report(),
            Err(MethodologyError::Backend(ref m)) if m.contains("skipped")
        ));
    }

    #[test]
    fn sharded_execution_persists_and_resumes_in_place() {
        let campaign = campaign_of(3);
        let factory = SimulationFactory::new(SimConfig::default(), 808);
        let dir = std::env::temp_dir().join(format!("fingrav-exec-ckpt-{}", std::process::id()));

        let direct = CampaignExecutor::new(2).run(&campaign, &factory).unwrap();
        let sharded = CampaignExecutor::new(2)
            .execute_sharded(&campaign, &factory, &dir)
            .unwrap()
            .into_report()
            .unwrap();
        assert_eq!(direct, sharded, "checkpointing must not perturb results");

        // The checkpoint is complete and resume is a pure restore.
        let manifest = crate::checkpoint::CheckpointDir::open(&dir)
            .unwrap()
            .read_manifest()
            .unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.workers, 2);
        let restored = CampaignExecutor::new(4)
            .resume(&campaign, &factory, &dir)
            .unwrap()
            .into_report()
            .unwrap();
        assert_eq!(restored, direct);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_a_checkpoint_is_a_typed_error() {
        let campaign = campaign_of(2);
        let factory = SimulationFactory::new(SimConfig::default(), 808);
        let missing = std::env::temp_dir().join("fingrav-no-such-checkpoint");
        let err = CampaignExecutor::serial()
            .resume(&campaign, &factory, &missing)
            .unwrap_err();
        assert!(matches!(err, MethodologyError::Checkpoint(_)));
    }

    #[test]
    fn worker_counts_clamp_and_report() {
        assert_eq!(CampaignExecutor::new(0).workers(), 1);
        assert_eq!(CampaignExecutor::new(6).workers(), 6);
        assert!(CampaignExecutor::with_available_parallelism().workers() >= 1);
        assert_eq!(CampaignExecutor::serial().policy(), ErrorPolicy::FailFast);
    }
}
