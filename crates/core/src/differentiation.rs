//! Power-profile differentiation (paper solution **S4**): SSE vs SSP.
//!
//! Because the platform logger reports the *average* of instantaneous power
//! over a trailing window, the measured power of a kernel ramps up as
//! back-to-back executions fill the window. FinGraV therefore distinguishes
//! two profiles:
//!
//! * **SSE** (steady-state *execution*): the first execution after
//!   execution time stops improving (typically after three warm-up
//!   executions). This is what a naive user would measure.
//! * **SSP** (steady-state *power*): the execution after which measured
//!   power stops changing — the true time-series view of the kernel's
//!   average power.
//!
//! The number of executions needed to reach SSP is bounded below by
//! `max(ceil(averaging_window / exec_time), sse_executions)` (paper step 4),
//! but throttling can push it further out, which the paper handles with a
//! search; [`detect_stable_suffix`] implements the stability detection that
//! search relies on.

use fingrav_sim::time::SimDuration;

/// Detects the number of warm-up executions from a probe run's observed
/// durations: the index of the first execution whose time is within
/// `tol_frac` of the steady time (median of the last half).
///
/// Returns 0 for empty input.
///
/// # Examples
///
/// ```
/// use fingrav_core::differentiation::detect_warmup_count;
///
/// let d = [150_000u64, 120_000, 104_000, 100_000, 100_200, 99_900, 100_100];
/// assert_eq!(detect_warmup_count(&d, 0.02), 3);
/// ```
pub fn detect_warmup_count(durations_ns: &[u64], tol_frac: f64) -> u32 {
    if durations_ns.is_empty() {
        return 0;
    }
    let half = &durations_ns[durations_ns.len() / 2..];
    let steady = crate::stats::median_u64(half).expect("non-empty half") as f64;
    let threshold = steady * (1.0 + tol_frac);
    durations_ns
        .iter()
        .position(|&d| (d as f64) <= threshold)
        .unwrap_or(0) as u32
}

/// The paper's lower bound on executions needed for the SSP profile:
/// `max(ceil(window / exec_time), sse_executions)`.
///
/// # Examples
///
/// ```
/// use fingrav_core::differentiation::ssp_min_executions;
/// use fingrav_sim::time::SimDuration;
///
/// // 48 us kernel under a 1 ms window: 21 executions.
/// let n = ssp_min_executions(
///     SimDuration::from_millis(1),
///     SimDuration::from_micros(48),
///     4,
/// );
/// assert_eq!(n, 21);
/// // 1.6 ms kernel: the window fits inside one execution, so the SSE
/// // execution count dominates.
/// let n = ssp_min_executions(
///     SimDuration::from_millis(1),
///     SimDuration::from_micros(1600),
///     4,
/// );
/// assert_eq!(n, 4);
/// ```
pub fn ssp_min_executions(window: SimDuration, exec_time: SimDuration, sse_executions: u32) -> u32 {
    let exec = exec_time.as_nanos().max(1);
    let by_window = window.as_nanos().div_ceil(exec) as u32;
    by_window.max(sse_executions).max(1)
}

/// Detects the throttling signature the paper calls out for compute-heavy
/// kernels: a "rise followed by fall of power" during the early
/// executions — the firmware over-reacts to the initial power excursion
/// and carves a trough before power recovers toward its plateau.
/// `powers` are successive log totals in time order.
pub fn detect_throttle(powers: &[f64], tol_frac: f64) -> bool {
    if powers.len() < 3 {
        return false;
    }
    // Peak within the leading 60% of the series.
    let head = (powers.len() * 3 / 5).max(1);
    let (peak_idx, peak) = powers
        .iter()
        .enumerate()
        .take(head)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite powers"))
        .map(|(i, &p)| (i, p))
        .expect("non-empty head");
    if peak <= 0.0 {
        return false;
    }
    // Trough after the peak.
    let trough = powers[peak_idx + 1..]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    if !trough.is_finite() {
        return false;
    }
    // A genuine excursion: the profile rose into the peak and then fell
    // clearly below it.
    let rose_into_peak = peak_idx > 0 && powers[0] < peak * (1.0 - tol_frac);
    rose_into_peak && (peak - trough) > tol_frac * peak
}

/// Finds the start of the stable suffix of a power series: the earliest
/// index `i` such that every value from `i` on is within `tol_frac` of the
/// settled level. The settled level is the *median of the last quarter* of
/// the series, so a single outlier excursion at the very end (an
/// outlier execution passing through the averaging window) does not move
/// the reference. Returns `None` for an empty series.
///
/// This is the primitive behind the paper's "binary search … to deduce
/// executions to get SSP profile": run a generous probe, find where power
/// stopped moving, and map that log back to an execution index.
pub fn detect_stable_suffix(powers: &[f64], tol_frac: f64) -> Option<usize> {
    if powers.is_empty() {
        return None;
    }
    let tail_len = (powers.len() / 4).max(1);
    let settled = crate::stats::median(&powers[powers.len() - tail_len..]).expect("non-empty tail");
    let tol = settled.abs() * tol_frac;
    let mut start = powers.len() - 1;
    for i in (0..powers.len()).rev() {
        if (powers[i] - settled).abs() <= tol {
            start = i;
        } else {
            break;
        }
    }
    Some(start)
}

/// Centered moving average of width `w` (clamped at the edges). Used on
/// top of [`median_of_3`] before stability detection so that the
/// firmware's cap sawtooth (periodic shallow dips while it hunts around
/// the power cap) does not read as instability.
pub fn moving_average(values: &[f64], w: usize) -> Vec<f64> {
    if values.is_empty() || w <= 1 {
        return values.to_vec();
    }
    let half = w / 2;
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Median-of-3 smoothing: suppresses single-log excursions (e.g. one
/// outlier execution inside a long probe burst) before stability
/// detection.
pub fn median_of_3(values: &[f64]) -> Vec<f64> {
    if values.len() < 3 {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(values.len());
    out.push(values[0]);
    for w in values.windows(3) {
        let mut v = [w[0], w[1], w[2]];
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite powers"));
        out.push(v[1]);
    }
    out.push(values[values.len() - 1]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_detection_typical() {
        // Mirrors the simulator's default warm-up factors.
        let d = [
            122_000u64, 112_000, 105_000, 100_000, 100_300, 99_800, 100_100, 99_900,
        ];
        assert_eq!(detect_warmup_count(&d, 0.02), 3);
    }

    #[test]
    fn warmup_detection_none_needed() {
        let d = [100_000u64, 100_100, 99_900, 100_050];
        assert_eq!(detect_warmup_count(&d, 0.02), 0);
    }

    #[test]
    fn warmup_detection_empty() {
        assert_eq!(detect_warmup_count(&[], 0.02), 0);
    }

    #[test]
    fn warmup_detection_single() {
        assert_eq!(detect_warmup_count(&[5_000], 0.02), 0);
    }

    #[test]
    fn ssp_executions_window_dominated() {
        let n = ssp_min_executions(SimDuration::from_millis(1), SimDuration::from_micros(30), 4);
        assert_eq!(n, 34);
    }

    #[test]
    fn ssp_executions_sse_dominated() {
        let n = ssp_min_executions(SimDuration::from_millis(1), SimDuration::from_millis(3), 4);
        assert_eq!(n, 4);
    }

    #[test]
    fn ssp_executions_never_zero() {
        let n = ssp_min_executions(SimDuration::from_nanos(1), SimDuration::from_millis(10), 0);
        assert_eq!(n, 1);
    }

    #[test]
    fn throttle_detected_on_spike() {
        // Ramp, overshoot, settle: the Fig. 6 signature.
        let p = [
            300.0, 600.0, 900.0, 980.0, 820.0, 760.0, 755.0, 750.0, 752.0,
        ];
        assert!(detect_throttle(&p, 0.05));
    }

    #[test]
    fn throttle_detected_on_trough_recovery() {
        // Spike, over-throttle trough, slow recovery to a plateau.
        let p = [
            500.0, 740.0, 745.0, 660.0, 640.0, 660.0, 690.0, 720.0, 735.0, 742.0,
        ];
        assert!(detect_throttle(&p, 0.05));
    }

    #[test]
    fn no_throttle_on_monotone_rise() {
        // The Fig. 8 signature: gradual rise to a plateau.
        let p = [200.0, 350.0, 500.0, 620.0, 690.0, 700.0, 702.0, 698.0];
        assert!(!detect_throttle(&p, 0.05));
    }

    #[test]
    fn no_throttle_on_flat() {
        let p = [500.0, 501.0, 499.5, 500.2];
        assert!(!detect_throttle(&p, 0.05));
        assert!(!detect_throttle(&[500.0, 501.0], 0.05));
    }

    #[test]
    fn stable_suffix_found() {
        let p = [100.0, 300.0, 500.0, 690.0, 700.0, 702.0, 699.0, 701.0];
        let i = detect_stable_suffix(&p, 0.02).unwrap();
        assert_eq!(
            i, 3,
            "stability starts at 690 (within 2% of the settled level)"
        );
    }

    #[test]
    fn stable_suffix_ignores_terminal_outlier() {
        // One outlier dip at the very end must not move the settled
        // reference (median of the last quarter).
        let p = [
            100.0, 300.0, 500.0, 690.0, 700.0, 702.0, 699.0, 701.0, 700.5, 698.0, 701.5, 700.0,
        ];
        let i = detect_stable_suffix(&p, 0.02).unwrap();
        assert_eq!(i, 3);
        // Same series smoothed: an interior dip disappears entirely.
        let mut with_dip = p.to_vec();
        with_dip[8] = 600.0;
        let smoothed = median_of_3(&with_dip);
        let j = detect_stable_suffix(&smoothed, 0.02).unwrap();
        assert_eq!(j, 3, "smoothing should erase the single-log dip");
    }

    #[test]
    fn moving_average_smooths_sawtooth() {
        // A shallow periodic dip (cap sawtooth) flattens under averaging.
        let v = [
            700.0, 700.0, 660.0, 700.0, 700.0, 700.0, 660.0, 700.0, 700.0,
        ];
        let sm = moving_average(&v, 5);
        for &x in &sm[1..sm.len() - 1] {
            assert!((x - 700.0).abs() < 20.0, "smoothed value {x}");
        }
        // Identity cases.
        assert_eq!(moving_average(&[], 5), Vec::<f64>::new());
        assert_eq!(moving_average(&[1.0, 2.0], 1), vec![1.0, 2.0]);
        // Constant input is a fixed point.
        assert_eq!(moving_average(&[5.0; 8], 5), vec![5.0; 8]);
    }

    #[test]
    fn median_of_3_basics() {
        assert_eq!(median_of_3(&[]), Vec::<f64>::new());
        assert_eq!(median_of_3(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(median_of_3(&[1.0, 9.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn stable_suffix_whole_series() {
        let p = [700.0, 701.0, 699.0];
        assert_eq!(detect_stable_suffix(&p, 0.02), Some(0));
    }

    #[test]
    fn stable_suffix_only_last() {
        let p = [100.0, 200.0, 700.0];
        assert_eq!(detect_stable_suffix(&p, 0.02), Some(2));
    }

    #[test]
    fn stable_suffix_empty() {
        assert_eq!(detect_stable_suffix(&[], 0.02), None);
    }
}
