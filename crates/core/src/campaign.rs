//! Multi-kernel profiling campaigns.
//!
//! The paper's evaluation profiles fourteen kernels under identical
//! methodology settings, each in isolation (measurement guidance #2: a
//! kernel shorter than the averaging window must be measured without
//! neighbours). [`Campaign`] packages that workflow: a list of kernels, a
//! shared [`RunnerConfig`], one fresh backend per kernel, and a combined
//! report with comparative analysis.

use fingrav_sim::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

use crate::backend::PowerBackend;
use crate::error::MethodologyResult;
use crate::insights::{ComponentBreakdown, ProportionalityPoint};
use crate::runner::{FingravRunner, KernelPowerReport, RunnerConfig};

/// A planned set of kernel profiling measurements.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: RunnerConfig,
    kernels: Vec<KernelDesc>,
}

impl Campaign {
    /// Creates an empty campaign with the given methodology settings.
    pub fn new(config: RunnerConfig) -> Self {
        Campaign {
            config,
            kernels: Vec::new(),
        }
    }

    /// Creates an empty campaign with paper-default settings.
    pub fn with_defaults() -> Self {
        Campaign::new(RunnerConfig::default())
    }

    /// Adds a kernel to measure.
    pub fn add(&mut self, desc: KernelDesc) -> &mut Self {
        self.kernels.push(desc);
        self
    }

    /// Adds many kernels.
    pub fn add_all<I: IntoIterator<Item = KernelDesc>>(&mut self, descs: I) -> &mut Self {
        self.kernels.extend(descs);
        self
    }

    /// Number of planned measurements.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Runs every measurement, obtaining a fresh backend per kernel from
    /// `make_backend` (index-tagged so backends can be independently
    /// seeded). Isolated sessions per kernel implement the paper's
    /// measurement guidance #2.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first failing measurement.
    pub fn run<B, F>(&self, mut make_backend: F) -> MethodologyResult<CampaignReport>
    where
        B: PowerBackend,
        F: FnMut(usize) -> B,
    {
        let mut reports = Vec::with_capacity(self.kernels.len());
        for (i, desc) in self.kernels.iter().enumerate() {
            let mut backend = make_backend(i);
            let mut runner = FingravRunner::new(&mut backend, self.config.clone());
            reports.push(runner.profile(desc)?);
        }
        Ok(CampaignReport { reports })
    }
}

/// The combined result of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// One report per kernel, in campaign order.
    pub reports: Vec<KernelPowerReport>,
}

impl CampaignReport {
    /// Looks up a report by kernel label.
    pub fn report(&self, label: &str) -> Option<&KernelPowerReport> {
        self.reports.iter().find(|r| r.label == label)
    }

    /// The markdown summary table (one row per kernel).
    pub fn summary_markdown(&self) -> String {
        crate::report::summary_table(&self.reports.iter().collect::<Vec<_>>())
    }

    /// Component breakdowns of the SSP profiles, in campaign order
    /// (kernels whose SSP profile is empty are skipped).
    pub fn breakdowns(&self) -> Vec<(String, ComponentBreakdown)> {
        self.reports
            .iter()
            .filter_map(|r| {
                ComponentBreakdown::from_profile(&r.ssp_profile).map(|b| (r.label.clone(), b))
            })
            .collect()
    }

    /// Power-proportionality points (utilization vs XCD power) for the
    /// campaign, usable with
    /// [`crate::insights::proportionality_spread`].
    pub fn proportionality_points(
        &self,
        utilization_of: impl Fn(&KernelPowerReport) -> Option<f64>,
    ) -> Vec<ProportionalityPoint> {
        self.reports
            .iter()
            .filter_map(|r| {
                let util = utilization_of(r)?;
                let xcd = r.ssp_profile.mean_power()?.xcd;
                Some(ProportionalityPoint {
                    label: r.label.clone(),
                    compute_utilization: util,
                    xcd_power_w: xcd,
                })
            })
            .collect()
    }

    /// The kernel with the highest SSP total power, if any was measured.
    pub fn hottest(&self) -> Option<&KernelPowerReport> {
        self.reports
            .iter()
            .filter(|r| r.ssp_mean_total_w.is_some())
            .max_by(|a, b| {
                a.ssp_mean_total_w
                    .partial_cmp(&b.ssp_mean_total_w)
                    .expect("finite powers")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel(name: &str, us: u64, xcd: f64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            base_exec: SimDuration::from_micros(us),
            freq_insensitive_frac: 0.5,
            activity: Activity::new(xcd, 0.4, 0.3),
            compute_utilization: xcd * 0.7,
            flops: 1e10,
            hbm_bytes: 1e7,
            llc_bytes: 1e8,
            workgroups: 128,
        }
    }

    fn run_campaign() -> CampaignReport {
        let mut campaign = Campaign::new(RunnerConfig::quick(12));
        campaign
            .add(kernel("hot", 300, 0.9))
            .add(kernel("cool", 300, 0.3));
        campaign
            .run(|i| Simulation::new(SimConfig::default(), 9000 + i as u64).expect("valid"))
            .expect("campaign runs")
    }

    #[test]
    fn campaign_profiles_each_kernel_in_isolation() {
        let report = run_campaign();
        assert_eq!(report.reports.len(), 2);
        assert!(report.report("hot").is_some());
        assert!(report.report("cool").is_some());
        assert!(report.report("missing").is_none());
        let hot = report.report("hot").unwrap().ssp_mean_total_w.unwrap();
        let cool = report.report("cool").unwrap().ssp_mean_total_w.unwrap();
        assert!(hot > cool + 50.0, "hot {hot} vs cool {cool}");
        assert_eq!(report.hottest().unwrap().label, "hot");
    }

    #[test]
    fn summary_and_breakdowns_render() {
        let report = run_campaign();
        let md = report.summary_markdown();
        assert!(md.contains("hot"));
        assert!(md.contains("cool"));
        assert_eq!(md.lines().count(), 4); // header + separator + 2 rows
        let breakdowns = report.breakdowns();
        assert_eq!(breakdowns.len(), 2);
    }

    #[test]
    fn proportionality_points_extracted() {
        let report = run_campaign();
        let pts =
            report.proportionality_points(|r| Some(if r.label == "hot" { 0.63 } else { 0.21 }));
        assert_eq!(pts.len(), 2);
        let spread = crate::insights::proportionality_spread(&pts).unwrap();
        assert!(spread >= 1.0);
    }

    #[test]
    fn empty_campaign() {
        let campaign = Campaign::with_defaults();
        assert!(campaign.is_empty());
        assert_eq!(campaign.len(), 0);
        let report = campaign
            .run(|i| Simulation::new(SimConfig::default(), i as u64).expect("valid"))
            .expect("empty campaign is fine");
        assert!(report.reports.is_empty());
        assert!(report.hottest().is_none());
    }
}
