//! Multi-kernel profiling campaigns.
//!
//! The paper's evaluation profiles fourteen kernels under identical
//! methodology settings, each in isolation (measurement guidance #2: a
//! kernel shorter than the averaging window must be measured without
//! neighbours). [`Campaign`] packages that workflow: a list of kernel
//! entries (each optionally carrying its own [`RunnerConfig`], so
//! parameter sweeps are campaigns too), a shared default config, one fresh
//! backend per kernel, and a combined report with comparative analysis.
//!
//! [`Campaign::run`] measures serially with a caller-supplied backend
//! closure; [`crate::executor::CampaignExecutor`] shards the same campaign
//! across worker threads with bit-identical results.

use fingrav_sim::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

use crate::backend::PowerBackend;
use crate::error::MethodologyResult;
use crate::insights::{ComponentBreakdown, ProportionalityPoint};
use crate::runner::{FingravRunner, KernelPowerReport, RunnerConfig};

/// One planned measurement: a kernel, plus an optional config override for
/// sweep-style campaigns (omitted → the campaign default applies).
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// The kernel to profile.
    pub desc: KernelDesc,
    /// Per-entry methodology settings, if different from the campaign's.
    pub config: Option<RunnerConfig>,
}

impl CampaignEntry {
    /// The configuration this entry runs under, given the campaign
    /// default.
    pub fn effective_config(&self, default: &RunnerConfig) -> RunnerConfig {
        self.config.clone().unwrap_or_else(|| default.clone())
    }
}

/// A planned set of kernel profiling measurements.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: RunnerConfig,
    entries: Vec<CampaignEntry>,
}

impl Campaign {
    /// Creates an empty campaign with the given methodology settings.
    pub fn new(config: RunnerConfig) -> Self {
        Campaign {
            config,
            entries: Vec::new(),
        }
    }

    /// Creates an empty campaign with paper-default settings.
    pub fn with_defaults() -> Self {
        Campaign::new(RunnerConfig::default())
    }

    /// Adds a kernel to measure under the campaign default settings.
    pub fn add(&mut self, desc: KernelDesc) -> &mut Self {
        self.entries.push(CampaignEntry { desc, config: None });
        self
    }

    /// Adds a kernel with its own methodology settings (parameter sweeps:
    /// the same kernel under several margins, run counts, or loggers).
    pub fn add_with_config(&mut self, desc: KernelDesc, config: RunnerConfig) -> &mut Self {
        self.entries.push(CampaignEntry {
            desc,
            config: Some(config),
        });
        self
    }

    /// Adds many kernels under the campaign default settings.
    pub fn add_all<I: IntoIterator<Item = KernelDesc>>(&mut self, descs: I) -> &mut Self {
        self.entries.extend(
            descs
                .into_iter()
                .map(|desc| CampaignEntry { desc, config: None }),
        );
        self
    }

    /// The planned entries, in campaign order.
    pub fn entries(&self) -> &[CampaignEntry] {
        &self.entries
    }

    /// The campaign-default methodology settings.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Number of planned measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs every measurement serially, obtaining a fresh backend per
    /// kernel from `make_backend` (index-tagged so backends can be
    /// independently seeded). Isolated sessions per kernel implement the
    /// paper's measurement guidance #2.
    ///
    /// This is the in-place serial path; use
    /// [`crate::executor::CampaignExecutor`] with a
    /// [`crate::backend::BackendFactory`] to shard the same campaign
    /// across worker threads with bit-identical results.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first failing measurement.
    pub fn run<B, F>(&self, mut make_backend: F) -> MethodologyResult<CampaignReport>
    where
        B: PowerBackend,
        F: FnMut(usize) -> B,
    {
        let mut reports = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            let mut backend = make_backend(i);
            let mut runner = FingravRunner::new(&mut backend, entry.effective_config(&self.config));
            reports.push(runner.profile(&entry.desc)?);
        }
        Ok(CampaignReport { reports })
    }
}

/// The combined result of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// One report per kernel, in campaign order.
    pub reports: Vec<KernelPowerReport>,
}

impl CampaignReport {
    /// Looks up a report by kernel label.
    pub fn report(&self, label: &str) -> Option<&KernelPowerReport> {
        self.reports.iter().find(|r| r.label == label)
    }

    /// The markdown summary table (one row per kernel).
    pub fn summary_markdown(&self) -> String {
        crate::report::summary_table(&self.reports.iter().collect::<Vec<_>>())
    }

    /// Component breakdowns of the SSP profiles, in campaign order
    /// (kernels whose SSP profile is empty are skipped).
    pub fn breakdowns(&self) -> Vec<(String, ComponentBreakdown)> {
        self.reports
            .iter()
            .filter_map(|r| {
                ComponentBreakdown::from_profile(&r.ssp_profile).map(|b| (r.label.clone(), b))
            })
            .collect()
    }

    /// Power-proportionality points (utilization vs XCD power) for the
    /// campaign, usable with
    /// [`crate::insights::proportionality_spread`].
    pub fn proportionality_points(
        &self,
        utilization_of: impl Fn(&KernelPowerReport) -> Option<f64>,
    ) -> Vec<ProportionalityPoint> {
        self.reports
            .iter()
            .filter_map(|r| {
                let util = utilization_of(r)?;
                let xcd = r.ssp_profile.mean_power()?.xcd;
                Some(ProportionalityPoint {
                    label: r.label.clone(),
                    compute_utilization: util,
                    xcd_power_w: xcd,
                })
            })
            .collect()
    }

    /// The kernel with the highest SSP total power, if any was measured.
    pub fn hottest(&self) -> Option<&KernelPowerReport> {
        self.reports
            .iter()
            .filter(|r| r.ssp_mean_total_w.is_some())
            .max_by(|a, b| {
                a.ssp_mean_total_w
                    .partial_cmp(&b.ssp_mean_total_w)
                    .expect("finite powers")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel(name: &str, us: u64, xcd: f64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            base_exec: SimDuration::from_micros(us),
            freq_insensitive_frac: 0.5,
            activity: Activity::new(xcd, 0.4, 0.3),
            compute_utilization: xcd * 0.7,
            flops: 1e10,
            hbm_bytes: 1e7,
            llc_bytes: 1e8,
            workgroups: 128,
        }
    }

    fn run_campaign() -> CampaignReport {
        let mut campaign = Campaign::new(RunnerConfig::quick(12));
        campaign
            .add(kernel("hot", 300, 0.9))
            .add(kernel("cool", 300, 0.3));
        campaign
            .run(|i| Simulation::new(SimConfig::default(), 9000 + i as u64).expect("valid"))
            .expect("campaign runs")
    }

    #[test]
    fn campaign_profiles_each_kernel_in_isolation() {
        let report = run_campaign();
        assert_eq!(report.reports.len(), 2);
        assert!(report.report("hot").is_some());
        assert!(report.report("cool").is_some());
        assert!(report.report("missing").is_none());
        let hot = report.report("hot").unwrap().ssp_mean_total_w.unwrap();
        let cool = report.report("cool").unwrap().ssp_mean_total_w.unwrap();
        assert!(hot > cool + 50.0, "hot {hot} vs cool {cool}");
        assert_eq!(report.hottest().unwrap().label, "hot");
    }

    #[test]
    fn summary_and_breakdowns_render() {
        let report = run_campaign();
        let md = report.summary_markdown();
        assert!(md.contains("hot"));
        assert!(md.contains("cool"));
        assert_eq!(md.lines().count(), 4); // header + separator + 2 rows
        let breakdowns = report.breakdowns();
        assert_eq!(breakdowns.len(), 2);
    }

    #[test]
    fn proportionality_points_extracted() {
        let report = run_campaign();
        let pts =
            report.proportionality_points(|r| Some(if r.label == "hot" { 0.63 } else { 0.21 }));
        assert_eq!(pts.len(), 2);
        let spread = crate::insights::proportionality_spread(&pts).unwrap();
        assert!(spread >= 1.0);
    }

    #[test]
    fn empty_campaign() {
        let campaign = Campaign::with_defaults();
        assert!(campaign.is_empty());
        assert_eq!(campaign.len(), 0);
        let report = campaign
            .run(|i| Simulation::new(SimConfig::default(), i as u64).expect("valid"))
            .expect("empty campaign is fine");
        assert!(report.reports.is_empty());
        assert!(report.hottest().is_none());
    }
}
