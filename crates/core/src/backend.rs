//! The device abstraction the methodology profiles against.
//!
//! FinGraV only needs four capabilities from a platform: register a kernel,
//! run a host-side script (sleeps, timestamp reads, logger control, timed
//! launches), and report two documented platform constants — the power
//! logger's averaging window and the GPU timestamp-counter's nominal rate.
//! [`PowerBackend`] captures exactly that surface; the simulator implements
//! it here, and a future real-hardware driver (ROCm SMI + HIP) would
//! implement the same trait.

use fingrav_sim::engine::Simulation;
use fingrav_sim::kernel::{KernelDesc, KernelHandle};
use fingrav_sim::script::Script;
use fingrav_sim::time::SimDuration;
use fingrav_sim::trace::RunTrace;

use crate::error::{MethodologyError, MethodologyResult};

/// A profiled device.
pub trait PowerBackend {
    /// Registers a kernel for later launching.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] if the device rejects the
    /// descriptor.
    fn register_kernel(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelHandle>;

    /// Executes one host script and returns the observable trace.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] on device errors.
    fn run_script(&mut self, script: &Script) -> MethodologyResult<RunTrace>;

    /// The averaging window of the platform's fine power logger (1 ms on
    /// MI300X).
    fn logger_window(&self) -> SimDuration;

    /// The averaging window of the platform's *external* coarse logger
    /// (amd-smi-class, tens of milliseconds). Used when the methodology is
    /// driven against public tooling instead of the internal logger
    /// (paper Section VI).
    fn coarse_logger_window(&self) -> SimDuration;

    /// Nominal GPU timestamp-counter frequency in Hz (100 MHz on MI300X).
    /// The *actual* rate may drift; correcting for that is the
    /// methodology's job.
    fn gpu_counter_hz(&self) -> f64;
}

impl PowerBackend for Simulation {
    fn register_kernel(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelHandle> {
        Simulation::register_kernel(self, desc.clone())
            .map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    fn run_script(&mut self, script: &Script) -> MethodologyResult<RunTrace> {
        Simulation::run_script(self, script).map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    fn logger_window(&self) -> SimDuration {
        self.config().telemetry.logger_window
    }

    fn coarse_logger_window(&self) -> SimDuration {
        self.config().telemetry.coarse_window
    }

    fn gpu_counter_hz(&self) -> f64 {
        self.config().clocks.gpu_counter_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::power::Activity;

    fn desc() -> KernelDesc {
        KernelDesc {
            name: "b".into(),
            base_exec: SimDuration::from_micros(50),
            freq_insensitive_frac: 0.5,
            activity: Activity::new(0.5, 0.5, 0.5),
            compute_utilization: 0.5,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 8,
        }
    }

    #[test]
    fn simulation_implements_backend() {
        let mut sim = Simulation::new(SimConfig::default(), 1).unwrap();
        let backend: &mut dyn PowerBackend = &mut sim;
        let k = backend.register_kernel(&desc()).unwrap();
        let script = Script::builder().launch_timed(k, 2).build();
        let trace = backend.run_script(&script).unwrap();
        assert_eq!(trace.executions.len(), 2);
        assert_eq!(backend.logger_window(), SimDuration::from_millis(1));
        assert_eq!(backend.gpu_counter_hz(), 100e6);
    }

    #[test]
    fn invalid_kernel_surfaces_as_backend_error() {
        let mut sim = Simulation::new(SimConfig::default(), 1).unwrap();
        let mut bad = desc();
        bad.workgroups = 0;
        let err = PowerBackend::register_kernel(&mut sim, &bad).unwrap_err();
        assert!(matches!(err, MethodologyError::Backend(_)));
    }
}
