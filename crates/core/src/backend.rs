//! The device abstraction the methodology profiles against.
//!
//! FinGraV only needs four capabilities from a platform: register a kernel,
//! run a host-side script (sleeps, timestamp reads, logger control, timed
//! launches), and report two documented platform constants — the power
//! logger's averaging window and the GPU timestamp-counter's nominal rate.
//! [`PowerBackend`] captures exactly that surface; the simulator implements
//! it here, and a future real-hardware driver (ROCm SMI + HIP) would
//! implement the same trait.
//!
//! Script execution is *session-based*: the required primitive is
//! [`PowerBackend::run_script_observed`], which streams
//! [`TelemetryEvent`](fingrav_sim::session::TelemetryEvent)s into a
//! [`TelemetrySink`] while the device runs and
//! honors a cooperative [`AbortHandle`]. [`PowerBackend::begin_script`]
//! packages that primitive as an observable, abortable [`ScriptSession`];
//! the batch [`PowerBackend::run_script`] is a provided method on top
//! (no-op sink, never aborted), so pre-session call sites keep working
//! unchanged and produce bit-identical traces.
//!
//! Multi-kernel campaigns need one *fresh, isolated* device session per
//! kernel (measurement guidance #2), created on whichever worker thread
//! the kernel lands on. [`BackendFactory`] captures that second surface: a
//! `Send + Sync` recipe that deterministically derives a per-kernel
//! backend from the kernel's campaign index, so a campaign produces
//! bit-identical results no matter how its kernels are sharded across
//! workers.

use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::{EngineStats, Simulation};
use fingrav_sim::kernel::{KernelDesc, KernelHandle};
use fingrav_sim::rng::mix_seed;
use fingrav_sim::script::Script;
use fingrav_sim::session::{AbortHandle, NoopSink, TelemetrySink};
use fingrav_sim::time::SimDuration;
use fingrav_sim::trace::RunTrace;

use crate::error::{MethodologyError, MethodologyResult};

/// A profiled device.
pub trait PowerBackend {
    /// Registers a kernel for later launching.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] if the device rejects the
    /// descriptor.
    fn register_kernel(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelHandle>;

    /// Executes one host script as a streaming session — the required
    /// script primitive. Implementations must push every observable
    /// moment into `sink` while the script runs (see
    /// [`fingrav_sim::session`] for the event contract), poll `abort` at
    /// host boundaries, and on abort return the partial trace observed so
    /// far, tagged [`RunTrace::aborted`].
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] on device errors.
    fn run_script_observed(
        &mut self,
        script: &Script,
        sink: &mut dyn TelemetrySink,
        abort: &AbortHandle,
    ) -> MethodologyResult<RunTrace>;

    /// Executes one host script and returns the observable trace — the
    /// batch convenience, provided on top of the session primitive (no-op
    /// sink, never aborted). Traces are bit-identical to a streamed
    /// session of the same script.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] on device errors.
    fn run_script(&mut self, script: &Script) -> MethodologyResult<RunTrace> {
        self.run_script_observed(script, &mut NoopSink, &AbortHandle::new())
    }

    /// Statically-dispatched variant of [`PowerBackend::run_script_observed`]
    /// for callers that know their backend type: backends whose engine loop
    /// is generic over the sink (the simulator) override this so the sink's
    /// `on_event` inlines into the hot loop instead of paying virtual
    /// dispatch per event. The default simply forwards to the dyn
    /// primitive, so the two paths are interchangeable — and bit-identical
    /// — for every backend.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] on device errors.
    fn run_script_with<S: TelemetrySink>(
        &mut self,
        script: &Script,
        sink: &mut S,
        abort: &AbortHandle,
    ) -> MethodologyResult<RunTrace>
    where
        Self: Sized,
    {
        self.run_script_observed(script, sink, abort)
    }

    /// Cumulative engine hot-loop counters for this session (events
    /// popped, queue high-water mark, scripts run), when the backend
    /// tracks them. Purely informational — campaign observers surface
    /// these as throughput telemetry. The default reports nothing.
    fn engine_stats(&self) -> Option<EngineStats> {
        None
    }

    /// Begins an observable, abortable script session: events flow into
    /// `sink` once [`ScriptSession::run`] is called, and
    /// [`ScriptSession::abort_handle`] stops it cooperatively from any
    /// thread.
    fn begin_script<'s, S: TelemetrySink>(
        &'s mut self,
        script: &'s Script,
        sink: S,
    ) -> ScriptSession<'s, Self, S>
    where
        Self: Sized,
    {
        ScriptSession::new(self, script, sink)
    }

    /// The averaging window of the platform's fine power logger (1 ms on
    /// MI300X).
    fn logger_window(&self) -> SimDuration;

    /// The averaging window of the platform's *external* coarse logger
    /// (amd-smi-class, tens of milliseconds). Used when the methodology is
    /// driven against public tooling instead of the internal logger
    /// (paper Section VI).
    fn coarse_logger_window(&self) -> SimDuration;

    /// Nominal GPU timestamp-counter frequency in Hz (100 MHz on MI300X).
    /// The *actual* rate may drift; correcting for that is the
    /// methodology's job.
    fn gpu_counter_hz(&self) -> f64;
}

/// A thread-safe recipe producing one isolated backend per campaign slot.
///
/// The factory itself crosses thread boundaries (shared by reference among
/// the executor's workers); the backends it creates are born on the worker
/// that profiles the kernel and never move. Implementations must be
/// deterministic in `index` — `create(i)` called twice, on any thread, in
/// any order, must yield backends that behave identically — because the
/// campaign executor's reproducibility guarantee reduces to exactly that
/// property.
pub trait BackendFactory: Send + Sync {
    /// The backend type produced.
    type Backend: PowerBackend;

    /// Creates the backend for campaign slot `index`.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] when the device cannot be
    /// brought up.
    fn create(&self, index: usize) -> MethodologyResult<Self::Backend>;

    /// The deterministic seed behind slot `index`, when the factory has
    /// one. Purely informational: campaign checkpoints record it in the
    /// manifest so a persisted campaign can be audited (and individual
    /// slots re-derived by hand). Factories with opaque seeding return
    /// `None`, the default.
    fn slot_seed_hint(&self, index: usize) -> Option<u64> {
        let _ = index;
        None
    }
}

/// [`BackendFactory`] for the simulator: every campaign slot gets a fresh
/// [`Simulation`] with the shared configuration and a per-slot seed
/// derived as `mix_seed(base_seed, index)` (the same SplitMix64 derivation
/// [`Simulation::fork`] uses), so slots are statistically independent yet
/// individually re-derivable.
#[derive(Debug, Clone)]
pub struct SimulationFactory {
    config: SimConfig,
    base_seed: u64,
}

impl SimulationFactory {
    /// Creates a factory from a shared configuration and a base seed.
    pub fn new(config: SimConfig, base_seed: u64) -> Self {
        SimulationFactory { config, base_seed }
    }

    /// The seed slot `index` receives.
    pub fn slot_seed(&self, index: usize) -> u64 {
        mix_seed(self.base_seed, index as u64)
    }

    /// The shared simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

impl BackendFactory for SimulationFactory {
    type Backend = Simulation;

    fn create(&self, index: usize) -> MethodologyResult<Simulation> {
        Simulation::new(self.config.clone(), self.slot_seed(index))
            .map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    fn slot_seed_hint(&self, index: usize) -> Option<u64> {
        Some(SimulationFactory::slot_seed(self, index))
    }
}

/// Adapts a plain `Fn(usize) -> MethodologyResult<B>` closure into a
/// [`BackendFactory`], for backends without a dedicated factory type.
#[derive(Debug, Clone)]
pub struct FnBackendFactory<F>(pub F);

impl<B, F> BackendFactory for FnBackendFactory<F>
where
    B: PowerBackend,
    F: Fn(usize) -> MethodologyResult<B> + Send + Sync,
{
    type Backend = B;

    fn create(&self, index: usize) -> MethodologyResult<B> {
        (self.0)(index)
    }
}

/// An observable, abortable script execution in progress.
///
/// Created by [`PowerBackend::begin_script`]. The session borrows the
/// backend; [`ScriptSession::run`] drives the script to completion (or to
/// the abort point), pushing
/// [`TelemetryEvent`](fingrav_sim::session::TelemetryEvent)s into the sink as the
/// device produces them. Grab an [`AbortHandle`] *before* calling `run`
/// and hand it to whatever decides to stop early — the handle is `Send`,
/// the session is not required to be.
///
/// # Examples
///
/// ```
/// use fingrav_core::backend::PowerBackend;
/// use fingrav_sim::session::{ChannelSink, TelemetryEvent};
/// use fingrav_sim::{Script, SimConfig, Simulation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gpu = Simulation::new(SimConfig::default(), 7)?;
/// let script = Script::builder()
///     .read_gpu_timestamp()
///     .build();
/// let (sink, events) = ChannelSink::bounded(64);
/// let trace = gpu.begin_script(&script, sink).run()?;
/// let streamed: Vec<TelemetryEvent> = events.iter().collect();
/// assert_eq!(streamed.len(), 5); // started, op start, read, op finish, done
/// assert_eq!(trace.timestamp_reads.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScriptSession<'s, B: PowerBackend + ?Sized, S: TelemetrySink> {
    backend: &'s mut B,
    script: &'s Script,
    sink: S,
    abort: AbortHandle,
}

impl<'s, B: PowerBackend + ?Sized, S: TelemetrySink> ScriptSession<'s, B, S> {
    /// Creates a session over a backend, script, and sink.
    pub fn new(backend: &'s mut B, script: &'s Script, sink: S) -> Self {
        ScriptSession {
            backend,
            script,
            sink,
            abort: AbortHandle::new(),
        }
    }

    /// Replaces the session's abort token with an external one (e.g. a
    /// campaign-wide cancellation token shared by many sessions).
    #[must_use]
    pub fn with_abort(mut self, abort: AbortHandle) -> Self {
        self.abort = abort;
        self
    }

    /// A handle that stops this session cooperatively from any thread.
    pub fn abort_handle(&self) -> AbortHandle {
        self.abort.clone()
    }

    /// Drives the script to completion (or to the abort point), streaming
    /// events into the sink. An aborted session still returns `Ok` with a
    /// well-formed partial trace tagged [`RunTrace::aborted`].
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::Backend`] on device errors.
    pub fn run(mut self) -> MethodologyResult<RunTrace> {
        self.backend
            .run_script_observed(self.script, &mut self.sink, &self.abort)
    }
}

impl PowerBackend for Simulation {
    fn register_kernel(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelHandle> {
        Simulation::register_kernel(self, desc.clone())
            .map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    fn run_script_observed(
        &mut self,
        script: &Script,
        sink: &mut dyn TelemetrySink,
        abort: &AbortHandle,
    ) -> MethodologyResult<RunTrace> {
        Simulation::run_script_observed(self, script, sink, abort)
            .map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    /// Monomorphized fast path: the simulator's engine loop is generic
    /// over the sink, so dispatching statically here lets `on_event`
    /// inline into the loop body.
    fn run_script_with<S: TelemetrySink>(
        &mut self,
        script: &Script,
        sink: &mut S,
        abort: &AbortHandle,
    ) -> MethodologyResult<RunTrace> {
        Simulation::run_script_observed(self, script, sink, abort)
            .map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    /// Monomorphized batch path (no-op sink inlines to nothing).
    fn run_script(&mut self, script: &Script) -> MethodologyResult<RunTrace> {
        Simulation::run_script(self, script).map_err(|e| MethodologyError::Backend(e.to_string()))
    }

    fn engine_stats(&self) -> Option<EngineStats> {
        Some(Simulation::engine_stats(self))
    }

    fn logger_window(&self) -> SimDuration {
        self.config().telemetry.logger_window
    }

    fn coarse_logger_window(&self) -> SimDuration {
        self.config().telemetry.coarse_window
    }

    fn gpu_counter_hz(&self) -> f64 {
        self.config().clocks.gpu_counter_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::power::Activity;

    fn desc() -> KernelDesc {
        KernelDesc {
            name: "b".into(),
            base_exec: SimDuration::from_micros(50),
            freq_insensitive_frac: 0.5,
            activity: Activity::new(0.5, 0.5, 0.5),
            compute_utilization: 0.5,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 8,
        }
    }

    #[test]
    fn simulation_implements_backend() {
        let mut sim = Simulation::new(SimConfig::default(), 1).unwrap();
        let backend: &mut dyn PowerBackend = &mut sim;
        let k = backend.register_kernel(&desc()).unwrap();
        let script = Script::builder().launch_timed(k, 2).build();
        let trace = backend.run_script(&script).unwrap();
        assert_eq!(trace.executions.len(), 2);
        assert_eq!(backend.logger_window(), SimDuration::from_millis(1));
        assert_eq!(backend.gpu_counter_hz(), 100e6);
    }

    #[test]
    fn static_and_dyn_dispatch_produce_bit_identical_traces() {
        // The monomorphized fast path must be the dyn primitive in every
        // observable respect: same trace bits, same event stream.
        let script = |sim: &mut Simulation| {
            let k = PowerBackend::register_kernel(sim, &desc()).unwrap();
            Script::builder()
                .begin_run()
                .start_power_logger()
                .launch_timed(k, 3)
                .sleep(SimDuration::from_millis(1))
                .stop_power_logger()
                .build()
        };

        let mut a = Simulation::new(SimConfig::default(), 31).unwrap();
        let sc = script(&mut a);
        let mut dyn_events = 0usize;
        let mut dyn_sink = |_e: fingrav_sim::session::TelemetryEvent| dyn_events += 1;
        let dyn_trace = {
            let backend: &mut dyn PowerBackend = &mut a;
            backend
                .run_script_observed(&sc, &mut dyn_sink, &AbortHandle::new())
                .unwrap()
        };

        let mut b = Simulation::new(SimConfig::default(), 31).unwrap();
        let sc = script(&mut b);
        let mut static_events = 0usize;
        let mut static_sink = |_e: fingrav_sim::session::TelemetryEvent| static_events += 1;
        let static_trace = b
            .run_script_with(&sc, &mut static_sink, &AbortHandle::new())
            .unwrap();

        assert_eq!(dyn_trace, static_trace);
        assert_eq!(dyn_events, static_events);
        assert!(static_events > 10, "the stream must actually stream");
    }

    #[test]
    fn engine_stats_surface_through_the_backend_trait() {
        let mut sim = Simulation::new(SimConfig::default(), 3).unwrap();
        let backend: &mut dyn PowerBackend = &mut sim;
        assert_eq!(
            backend.engine_stats(),
            Some(EngineStats::default()),
            "a fresh session has run nothing"
        );
        let k = backend.register_kernel(&desc()).unwrap();
        let script = Script::builder().launch_timed(k, 2).build();
        backend.run_script(&script).unwrap();
        let stats = backend.engine_stats().expect("simulator tracks stats");
        assert!(stats.events_popped > 0);
        assert_eq!(stats.scripts_run, 1);
    }

    #[test]
    fn factories_are_shareable_and_deterministic() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulationFactory>();

        let factory = SimulationFactory::new(SimConfig::default(), 77);
        // Distinct slots draw distinct seeds; the same slot always draws
        // the same seed.
        assert_ne!(factory.slot_seed(0), factory.slot_seed(1));
        assert_eq!(factory.slot_seed(3), factory.slot_seed(3));
        // Matches the simulator's own fork derivation.
        let parent = Simulation::new(SimConfig::default(), 77).unwrap();
        assert_eq!(factory.slot_seed(5), parent.fork(5).unwrap().master_seed());

        // Backends from the same slot behave identically.
        let mut a = factory.create(2).unwrap();
        let mut b = factory.create(2).unwrap();
        let k1 = PowerBackend::register_kernel(&mut a, &desc()).unwrap();
        let k2 = PowerBackend::register_kernel(&mut b, &desc()).unwrap();
        let script = Script::builder().begin_run().launch_timed(k1, 3).build();
        assert_eq!(k1, k2);
        assert_eq!(
            a.run_script(&script).unwrap(),
            b.run_script(&script).unwrap()
        );
    }

    #[test]
    fn closure_factories_adapt() {
        let factory = FnBackendFactory(|i: usize| {
            Simulation::new(SimConfig::default(), 1000 + i as u64)
                .map_err(|e| MethodologyError::Backend(e.to_string()))
        });
        let sim = factory.create(4).unwrap();
        assert_eq!(sim.master_seed(), 1004);
    }

    #[test]
    fn invalid_kernel_surfaces_as_backend_error() {
        let mut sim = Simulation::new(SimConfig::default(), 1).unwrap();
        let mut bad = desc();
        bad.workgroups = 0;
        let err = PowerBackend::register_kernel(&mut sim, &bad).unwrap_err();
        assert!(matches!(err, MethodologyError::Backend(_)));
    }
}
