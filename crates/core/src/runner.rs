//! The FinGraV runner: the paper's nine-step methodology, end to end.
//!
//! Given a kernel, the runner (numbers refer to paper Section IV-B):
//!
//! 1. times the kernel a few times to estimate its execution time and look
//!    up the guidance table (#runs, binning margin, LOI target);
//! 2. instruments runs with CPU-side timing, a GPU-timestamp read, and
//!    power-logger start/stop;
//! 3. detects the warm-up count — the SSE execution index;
//! 4. computes the SSP execution count from
//!    `max(ceil(window / exec), sse_execs)` and refines it with a
//!    power-stability probe (the paper's search under throttling);
//! 5. executes the runs, adding a random delay before each launch burst so
//!    logs land at unique times-of-interest;
//! 6. discards all but the *golden* runs via execution-time binning;
//! 7. synchronizes CPU–GPU time per run (single- or two-anchor);
//! 8. tops up runs if fewer LOIs were harvested than the guidance target;
//! 9. stitches LOIs/TOIs into the run, SSE, and SSP power profiles.

use fingrav_sim::kernel::{KernelDesc, KernelHandle};
use fingrav_sim::script::Script;
use fingrav_sim::time::SimDuration;
use fingrav_sim::trace::RunTrace;
use serde::{Deserialize, Serialize};

use crate::backend::PowerBackend;
use crate::binning::{bin_durations, Binning};
use crate::differentiation::{
    detect_stable_suffix, detect_throttle, detect_warmup_count, ssp_min_executions,
};
use crate::error::{MethodologyError, MethodologyResult};
use crate::guidance::{GuidanceEntry, GuidanceTable};
use crate::profile::{
    loi_points, place_logs, run_profile_points, PlacedLog, PowerProfile, ProfileKind,
};
use crate::stats::median_u64;
use crate::sync::{ReadDelayCalibration, TimeSync};

/// Which platform power logger the methodology drives (paper Section VI:
/// the key tenets apply equally to external loggers such as `amd-smi`, but
/// the resulting profiles inherit the logger's averaging window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoggerChoice {
    /// The internal fine logger (1 ms on MI300X).
    Fine,
    /// The external coarse logger (amd-smi-class, tens of ms).
    Coarse,
}

/// Tunables of the runner. Defaults follow the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Override the guidance #runs (tests and the Fig. 5 resiliency study).
    pub runs_override: Option<u32>,
    /// Override the guidance binning margin.
    pub margin_override: Option<f64>,
    /// The guidance table (Table I by default).
    pub guidance: GuidanceTable,
    /// Timestamp reads used to calibrate the read delay.
    pub calibration_reads: u32,
    /// Executions in the timing probe (must exceed the warm-up count).
    pub timing_probe_executions: u32,
    /// Relative tolerance for execution-time stabilization (warm-up
    /// detection).
    pub time_stability_tol: f64,
    /// Relative tolerance for power stabilization (SSP detection).
    pub power_stability_tol: f64,
    /// Relative peak-to-trough depth that counts as a throttling excursion.
    pub throttle_detection_tol: f64,
    /// Upper bound of the random pre-launch delay (paper step 5).
    pub random_delay_max: SimDuration,
    /// Idle time between runs (lets the device cool back to a cold start).
    pub inter_run_idle: SimDuration,
    /// Cap on tail executions appended after the SSP point to harvest LOIs.
    pub tail_executions_cap: u32,
    /// How many half-size top-up batches to run when LOIs fall short
    /// (paper step 8).
    pub extra_run_batches: u32,
    /// Use two-anchor sync to cancel GPU-counter drift (set false to mimic
    /// single-anchor prior work).
    pub drift_correction: bool,
    /// Which platform logger to drive.
    pub logger: LoggerChoice,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            runs_override: None,
            margin_override: None,
            guidance: GuidanceTable::paper(),
            calibration_reads: 64,
            timing_probe_executions: 12,
            time_stability_tol: 0.02,
            power_stability_tol: 0.03,
            throttle_detection_tol: 0.06,
            random_delay_max: SimDuration::from_millis(1),
            inter_run_idle: SimDuration::from_millis(8),
            tail_executions_cap: 64,
            extra_run_batches: 3,
            drift_correction: true,
            logger: LoggerChoice::Fine,
        }
    }
}

impl RunnerConfig {
    /// A configuration scaled down for fast tests: fewer runs, fewer
    /// calibration reads.
    pub fn quick(runs: u32) -> Self {
        RunnerConfig {
            runs_override: Some(runs),
            calibration_reads: 16,
            extra_run_batches: 1,
            ..RunnerConfig::default()
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::InvalidConfig`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> MethodologyResult<()> {
        let err = |reason: &str| Err(MethodologyError::InvalidConfig(reason.into()));
        if self.runs_override == Some(0) {
            return err("runs override must be positive");
        }
        if let Some(m) = self.margin_override {
            // NaN also fails this check, which is intended.
            if m <= 0.0 || m.is_nan() {
                return err("binning margin must be positive");
            }
        }
        if self.calibration_reads == 0 {
            return err("at least one calibration read is required");
        }
        if self.timing_probe_executions < 2 {
            return err("the timing probe needs at least two executions");
        }
        if !(self.time_stability_tol > 0.0 && self.time_stability_tol < 1.0) {
            return err("time stability tolerance must be in (0, 1)");
        }
        if !(self.power_stability_tol > 0.0 && self.power_stability_tol < 1.0) {
            return err("power stability tolerance must be in (0, 1)");
        }
        if self.tail_executions_cap < 2 {
            return err("the tail-execution cap must allow at least two executions");
        }
        Ok(())
    }
}

/// One collected profiling run.
#[derive(Debug, Clone)]
pub struct CollectedRun {
    /// The observable trace.
    pub trace: RunTrace,
    /// The per-run CPU–GPU sync.
    pub sync: TimeSync,
    /// Median CPU-observed duration of the steady executions, ns.
    pub steady_median_ns: u64,
}

/// The full output of profiling one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPowerReport {
    /// Kernel label.
    pub label: String,
    /// Estimated steady execution time (CPU-observed), ns.
    pub exec_time_ns: u64,
    /// The guidance row applied.
    pub guidance: GuidanceEntry,
    /// Binning margin actually used.
    pub margin_frac: f64,
    /// Index of the SSE execution (= detected warm-up count).
    pub sse_index: u32,
    /// Index of the first SSP execution.
    pub ssp_index: u32,
    /// Executions per run (SSP index + tail).
    pub executions_per_run: u32,
    /// Total runs executed (including top-up batches).
    pub runs_executed: u32,
    /// Runs surviving the golden-bin filter.
    pub golden_runs: u32,
    /// Whether the throttling signature was detected during probing.
    pub throttle_detected: bool,
    /// Calibrated timestamp-read delay, ns.
    pub read_delay_ns: f64,
    /// Mean estimated GPU-counter drift across runs (two-anchor sync only).
    pub estimated_drift_ppm: Option<f64>,
    /// All logs of golden runs on run-relative time (Fig. 6/8 material).
    pub run_profile: PowerProfile,
    /// LOIs within the SSE execution.
    pub sse_profile: PowerProfile,
    /// LOIs within executions at/after the SSP index.
    pub ssp_profile: PowerProfile,
    /// Mean total power of the SSE profile, if any LOIs landed there.
    pub sse_mean_total_w: Option<f64>,
    /// Mean total power of the SSP profile.
    pub ssp_mean_total_w: Option<f64>,
    /// Relative SSE-vs-SSP measurement error `|SSP−SSE|/SSP` — the paper's
    /// headline "as high as 80%" number.
    pub sse_vs_ssp_error: Option<f64>,
}

impl KernelPowerReport {
    /// SSP-profile LOI count.
    pub fn ssp_loi_count(&self) -> usize {
        self.ssp_profile.len()
    }

    /// SSE-profile LOI count.
    pub fn sse_loi_count(&self) -> usize {
        self.sse_profile.len()
    }
}

/// The FinGraV methodology runner over a [`PowerBackend`].
pub struct FingravRunner<'a, B: PowerBackend> {
    backend: &'a mut B,
    config: RunnerConfig,
}

impl<'a, B: PowerBackend> FingravRunner<'a, B> {
    /// Creates a runner with explicit configuration.
    pub fn new(backend: &'a mut B, config: RunnerConfig) -> Self {
        FingravRunner { backend, config }
    }

    /// Creates a runner with the paper-default configuration.
    pub fn with_defaults(backend: &'a mut B) -> Self {
        FingravRunner::new(backend, RunnerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The averaging window of the logger being driven.
    fn window(&self) -> SimDuration {
        match self.config.logger {
            LoggerChoice::Fine => self.backend.logger_window(),
            LoggerChoice::Coarse => self.backend.coarse_logger_window(),
        }
    }

    /// Registers and profiles a kernel.
    ///
    /// # Errors
    ///
    /// Propagates backend errors and methodology failures (no sync data, no
    /// golden runs).
    pub fn profile(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelPowerReport> {
        let handle = self.backend.register_kernel(desc)?;
        self.profile_handle(handle, &desc.name)
    }

    /// Profiles an already-registered kernel.
    ///
    /// # Errors
    ///
    /// Propagates backend errors and methodology failures.
    pub fn profile_handle(
        &mut self,
        kernel: KernelHandle,
        label: &str,
    ) -> MethodologyResult<KernelPowerReport> {
        self.config.validate()?;

        // --- Step 2 precursor: calibrate the timestamp-read delay. ---
        let calibration = self.calibrate()?;

        // --- Step 1 + 3: timing probe, warm-up detection. ---
        let probe = self.run_probe(kernel, self.config.timing_probe_executions, &calibration)?;
        let durations = probe.trace.execution_durations_ns();
        if durations.is_empty() {
            return Err(MethodologyError::EmptyProbe);
        }
        let sse_index = detect_warmup_count(&durations, self.config.time_stability_tol);
        let steady = &durations[sse_index as usize..];
        let exec_time_ns = median_u64(steady).ok_or(MethodologyError::EmptyProbe)?;
        let exec_time = SimDuration::from_nanos(exec_time_ns);

        let entry = *self.config.guidance.lookup(exec_time);
        let runs = self.config.runs_override.unwrap_or(entry.runs);
        let margin = self.config.margin_override.unwrap_or(entry.margin_frac);

        // --- Step 4: SSP execution count (formula + stability search). ---
        // The formula gives a lower bound; when throttling dynamics stretch
        // power stabilization past it (the paper's "binary search can be
        // necessary" case), the probe burst is extended until the power
        // series demonstrably converges.
        let window = self.window();
        let min_execs = ssp_min_executions(window, exec_time, sse_index + 1);
        let max_probe = (min_execs * 2 + 8).max(256);
        let mut ssp_probe_n = min_execs * 2 + 8;
        let (ssp_probe, burst_logs, burst_totals, smoothed) = loop {
            let probe = self.run_probe(kernel, ssp_probe_n, &calibration)?;
            // Logs inside outlier-duration executions (past the warm-ups)
            // are excluded from the stability analysis, mirroring how
            // binning discards outlier runs. The cutoff derives from the
            // probe's own *settled* durations — under a power cap the
            // settled executions run slower than the early boost-phase
            // ones, and those throttled times are the legitimate steady
            // state, not outliers.
            let probe_durations = probe.trace.execution_durations_ns();
            let settled_ns =
                median_u64(&probe_durations[probe_durations.len() / 2..]).unwrap_or(exec_time_ns);
            let outlier_cutoff_ns =
                (settled_ns as f64 * (1.0 + 3.0 * self.config.time_stability_tol)) as u64;
            let logs = filtered_burst_logs(&probe, sse_index, outlier_cutoff_ns);
            let totals: Vec<f64> = logs.iter().map(|l| l.power.total()).collect();
            // Median-of-3 plus a short moving average: single-log
            // excursions and the firmware's cap sawtooth must not read as
            // late stabilization.
            let smoothed = crate::differentiation::moving_average(
                &crate::differentiation::median_of_3(&totals),
                5,
            );
            if probe_power_converged(&smoothed, self.config.power_stability_tol)
                || ssp_probe_n >= max_probe
            {
                break (probe, logs, totals, smoothed);
            }
            ssp_probe_n = (ssp_probe_n * 2).min(max_probe);
        };
        let throttle_detected = detect_throttle(&burst_totals, self.config.throttle_detection_tol);
        let detected_ssp = detect_stable_suffix(&smoothed, self.config.power_stability_tol)
            .map(|idx| {
                // The moving average blurs the ramp edge and pushes the
                // detected onset late; walk back on the lightly-smoothed
                // series while it already sits at the settled level.
                let settled_tail = (smoothed.len() / 4).max(1);
                let settled =
                    crate::stats::median(&smoothed[smoothed.len() - settled_tail..]).unwrap_or(0.0);
                let tol = settled.abs() * self.config.power_stability_tol;
                let raw = crate::differentiation::median_of_3(&burst_totals);
                let mut idx = idx.min(raw.len().saturating_sub(1));
                while idx > 0 && (raw[idx - 1] - settled).abs() <= tol {
                    idx -= 1;
                }
                idx
            })
            .and_then(|log_idx| {
                // Map the first stable log back to the execution it fell in
                // (or the next execution after it).
                let stable = burst_logs.get(log_idx).copied()?;
                stable
                    .containing_exec
                    .map(|(pos, _)| pos as u32)
                    .or_else(|| {
                        ssp_probe
                            .trace
                            .executions
                            .iter()
                            .position(|e| (e.cpu_start.as_nanos() as f64) >= stable.cpu_ns)
                            .map(|p| p as u32)
                    })
            })
            .unwrap_or(min_execs.saturating_sub(1));
        let ssp_index = detected_ssp.max(min_execs.saturating_sub(1)).max(sse_index);

        // Tail executions after the SSP point so logs keep landing in
        // SSP-quality executions (~one averaging window's worth).
        let tail = (window.as_nanos().div_ceil(exec_time_ns.max(1)) as u32)
            .clamp(2, self.config.tail_executions_cap);
        let executions_per_run = ssp_index + 1 + tail;

        // --- Steps 5-8: main runs with golden-bin filtering and top-up. ---
        let loi_target = entry.recommended_lois(exec_time);
        let mut collected: Vec<CollectedRun> = Vec::new();
        let mut batch = runs;
        let mut batches_left = self.config.extra_run_batches;
        let (binning, report) = loop {
            for _ in 0..batch {
                let run = self.execute_run(kernel, executions_per_run, &calibration, true)?;
                collected.push(run);
            }
            let metrics: Vec<u64> = collected.iter().map(|r| r.steady_median_ns).collect();
            let binning = bin_durations(&metrics, margin).ok_or(MethodologyError::NoGoldenRuns)?;
            let report = stitch_profiles(label, &collected, &binning, sse_index, ssp_index, margin);
            let enough = report.ssp.len() as u32 >= loi_target;
            if enough || batches_left == 0 {
                break (binning, report);
            }
            batches_left -= 1;
            batch = (runs / 2).max(8);
        };

        let sse_mean = report.sse.mean_total();
        let ssp_mean = report.ssp.mean_total();
        let error = match (sse_mean, ssp_mean) {
            (Some(a), Some(b)) if b != 0.0 => Some((b - a).abs() / b),
            _ => None,
        };

        let drift = if self.config.drift_correction {
            let drifts: Vec<f64> = collected
                .iter()
                .map(|r| r.sync.estimated_drift_ppm(self.backend.gpu_counter_hz()))
                .collect();
            crate::stats::mean(&drifts)
        } else {
            None
        };

        Ok(KernelPowerReport {
            label: label.to_string(),
            exec_time_ns,
            guidance: entry,
            margin_frac: margin,
            sse_index,
            ssp_index,
            executions_per_run,
            runs_executed: collected.len() as u32,
            golden_runs: binning.golden_bin().count() as u32,
            throttle_detected,
            read_delay_ns: calibration.delay_ns(),
            estimated_drift_ppm: drift,
            run_profile: report.run,
            sse_profile: report.sse,
            ssp_profile: report.ssp,
            sse_mean_total_w: sse_mean,
            ssp_mean_total_w: ssp_mean,
            sse_vs_ssp_error: error,
        })
    }

    /// Calibrates the GPU-timestamp read delay with repeated reads.
    fn calibrate(&mut self) -> MethodologyResult<ReadDelayCalibration> {
        let mut b = Script::builder();
        for _ in 0..self.config.calibration_reads.max(1) {
            b = b.read_gpu_timestamp();
        }
        let trace = self.backend.run_script(&b.build())?;
        ReadDelayCalibration::from_reads(&trace.timestamp_reads)
    }

    /// Runs one instrumented probe (no random delay) and places its logs.
    fn run_probe(
        &mut self,
        kernel: KernelHandle,
        executions: u32,
        calibration: &ReadDelayCalibration,
    ) -> MethodologyResult<ProbeRun> {
        let run = self.execute_run(kernel, executions, calibration, false)?;
        let placed = place_logs(&run.trace, &run.sync);
        Ok(ProbeRun {
            trace: run.trace,
            placed,
        })
    }

    /// Executes one instrumented run and synchronizes its clocks.
    fn execute_run(
        &mut self,
        kernel: KernelHandle,
        executions: u32,
        calibration: &ReadDelayCalibration,
        random_delay: bool,
    ) -> MethodologyResult<CollectedRun> {
        let window = self.window();
        let coarse = self.config.logger == LoggerChoice::Coarse;
        let mut b = Script::builder().begin_run();
        b = if coarse {
            b.start_coarse_logger()
        } else {
            b.start_power_logger()
        };
        b = b.read_gpu_timestamp();
        if random_delay {
            // The delay must span at least one logging window so logs land
            // at uniformly distributed times-of-interest (step 5).
            let delay_max = if self.config.random_delay_max > window {
                self.config.random_delay_max
            } else {
                window
            };
            b = b.sleep_uniform(SimDuration::ZERO, delay_max);
        }
        b = b
            .launch_timed(kernel, executions)
            .sleep(window + SimDuration::from_micros(100))
            .read_gpu_timestamp();
        b = if coarse {
            b.stop_coarse_logger()
        } else {
            b.stop_power_logger()
        };
        let script = b.sleep(self.config.inter_run_idle).build();
        let mut trace = self.backend.run_script(&script)?;
        if coarse {
            // Downstream placement machinery reads `power_logs`; when the
            // methodology drives the external logger, its logs take that
            // role (and its window governed every window computation).
            trace.power_logs = std::mem::take(&mut trace.coarse_logs);
        }

        let sync = self.sync_for(&trace, calibration)?;
        let durations = trace.execution_durations_ns();
        let steady_start = durations.len().saturating_sub(durations.len() / 2 + 1);
        let steady_median_ns =
            median_u64(&durations[steady_start..]).ok_or(MethodologyError::EmptyProbe)?;
        Ok(CollectedRun {
            trace,
            sync,
            steady_median_ns,
        })
    }

    /// Builds the per-run sync from its timestamp reads.
    fn sync_for(
        &self,
        trace: &RunTrace,
        calibration: &ReadDelayCalibration,
    ) -> MethodologyResult<TimeSync> {
        let reads = &trace.timestamp_reads;
        let first = reads
            .first()
            .ok_or(MethodologyError::InsufficientSyncData)?;
        if self.config.drift_correction && reads.len() >= 2 {
            let last = reads.last().expect("len >= 2");
            if let Ok(sync) = TimeSync::from_two_anchors(first, last, calibration) {
                return Ok(sync);
            }
        }
        Ok(TimeSync::from_anchor(
            first,
            calibration,
            self.backend.gpu_counter_hz(),
        ))
    }
}

/// Intermediate probe output.
struct ProbeRun {
    trace: RunTrace,
    placed: Vec<PlacedLog>,
}

/// Logs that landed during the launch burst, in time order.
fn placed_burst_logs(placed: &[PlacedLog]) -> Vec<PlacedLog> {
    let mut logs: Vec<PlacedLog> = placed
        .iter()
        .filter(|l| l.run_time_ns >= 0.0)
        .copied()
        .collect();
    logs.sort_by(|a, b| a.cpu_ns.partial_cmp(&b.cpu_ns).expect("finite"));
    logs
}

/// True when a probe's power series has demonstrably settled: its last
/// quarter and the quarter before agree within tolerance. Requires at
/// least eight logs to judge (shorter series force a longer probe).
fn probe_power_converged(totals: &[f64], tol_frac: f64) -> bool {
    if totals.len() < 8 {
        return false;
    }
    let q = totals.len() / 4;
    let last = &totals[totals.len() - q..];
    let prev = &totals[totals.len() - 2 * q..totals.len() - q];
    let m_last = last.iter().sum::<f64>() / q as f64;
    let m_prev = prev.iter().sum::<f64>() / q as f64;
    (m_last - m_prev).abs() <= tol_frac * m_last.abs().max(1.0)
}

/// Burst logs in time order, excluding logs that landed inside
/// outlier-duration executions beyond the warm-up region. The returned
/// list's indices align with the stability series derived from it.
fn filtered_burst_logs(probe: &ProbeRun, sse_index: u32, outlier_cutoff_ns: u64) -> Vec<PlacedLog> {
    let last_end = probe
        .trace
        .executions
        .last()
        .map(|e| e.cpu_end.as_nanos() as f64)
        .unwrap_or(f64::MAX);
    let durations = probe.trace.execution_durations_ns();
    placed_burst_logs(&probe.placed)
        .into_iter()
        .filter(|l| l.cpu_ns <= last_end)
        .filter(|l| match l.containing_exec {
            Some((pos, _)) if pos as u32 >= sse_index => durations
                .get(pos)
                .map(|&d| d <= outlier_cutoff_ns)
                .unwrap_or(true),
            _ => true,
        })
        .collect()
}

/// The three stitched profiles of a kernel.
struct StitchedProfiles {
    run: PowerProfile,
    sse: PowerProfile,
    ssp: PowerProfile,
}

/// Stitches golden runs into run/SSE/SSP profiles, filtering SSP LOIs to
/// executions whose duration stays within the golden margin (intra-run
/// outlier rejection).
fn stitch_profiles(
    label: &str,
    collected: &[CollectedRun],
    binning: &Binning,
    sse_index: u32,
    ssp_index: u32,
    margin: f64,
) -> StitchedProfiles {
    let mut run_profile = PowerProfile::new(label, ProfileKind::Run);
    let mut sse_profile = PowerProfile::new(label, ProfileKind::Sse);
    let mut ssp_profile = PowerProfile::new(label, ProfileKind::Ssp);
    let center = binning.golden_bin().center_ns() as f64;

    for (run_idx, run) in collected.iter().enumerate() {
        if !binning.is_golden(run_idx) {
            continue;
        }
        let placed = place_logs(&run.trace, &run.sync);
        run_profile
            .points
            .extend(run_profile_points(run_idx as u32, &placed));

        let durations = run.trace.execution_durations_ns();
        let within_margin = |pos: usize| -> bool {
            durations
                .get(pos)
                .map(|&d| (d as f64 - center).abs() <= center * margin.max(0.001) * 1.5)
                .unwrap_or(false)
        };
        sse_profile
            .points
            .extend(loi_points(run_idx as u32, &placed, |pos| {
                pos as u32 == sse_index
            }));
        ssp_profile
            .points
            .extend(loi_points(run_idx as u32, &placed, |pos| {
                pos as u32 >= ssp_index && within_margin(pos)
            }));
    }

    StitchedProfiles {
        run: run_profile,
        sse: sse_profile,
        ssp: ssp_profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;

    fn kernel(base_us: u64, cf: f64, xcd: f64) -> KernelDesc {
        KernelDesc {
            name: format!("test-{base_us}us"),
            base_exec: SimDuration::from_micros(base_us),
            freq_insensitive_frac: cf,
            activity: Activity::new(xcd, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1e11,
            hbm_bytes: 1e8,
            llc_bytes: 1e9,
            workgroups: 256,
        }
    }

    fn profile_with(seed: u64, runs: u32, desc: &KernelDesc) -> KernelPowerReport {
        let mut sim = Simulation::new(SimConfig::default(), seed).unwrap();
        let mut runner = FingravRunner::new(&mut sim, RunnerConfig::quick(runs));
        runner.profile(desc).unwrap()
    }

    #[test]
    fn mid_size_kernel_end_to_end() {
        let report = profile_with(11, 30, &kernel(200, 0.15, 0.9));
        assert_eq!(report.label, "test-200us");
        // Steady time near 200 us plus overheads, definitely inside
        // the 200us-1ms guidance row.
        assert!(report.exec_time_ns > 150_000 && report.exec_time_ns < 400_000);
        assert_eq!(report.guidance.margin_frac, 0.02);
        // Warm-ups detected (simulator default: 3).
        assert!(
            report.sse_index >= 2 && report.sse_index <= 4,
            "sse {}",
            report.sse_index
        );
        assert!(report.ssp_index >= report.sse_index);
        assert!(report.golden_runs > 0);
        assert!(report.golden_runs <= report.runs_executed);
        assert!(!report.run_profile.is_empty());
        assert!(!report.ssp_profile.is_empty());
        assert!(report.ssp_mean_total_w.unwrap() > 150.0);
    }

    #[test]
    fn short_kernel_needs_many_executions_for_ssp() {
        let report = profile_with(13, 30, &kernel(40, 0.2, 0.88));
        // ~46 us observed: ceil(1ms / 46us) ≈ 22 executions minimum.
        assert!(
            report.ssp_index >= 15,
            "short kernel SSP index {} too low",
            report.ssp_index
        );
        assert!(report.executions_per_run > report.ssp_index);
    }

    #[test]
    fn long_kernel_ssp_close_to_sse() {
        let report = profile_with(17, 20, &kernel(1600, 0.12, 0.95));
        // Window fits inside one execution; SSP arrives within a few
        // executions of SSE.
        assert!(
            report.ssp_index <= report.sse_index + 6,
            "ssp {} sse {}",
            report.ssp_index,
            report.sse_index
        );
        // Heavy kernel: the throttling signature should be detected.
        assert!(report.throttle_detected);
    }

    #[test]
    fn sse_underestimates_ssp_for_short_kernels() {
        // The paper's headline: measuring at SSE on a sub-window kernel
        // under-reports power/energy substantially.
        let report = profile_with(19, 60, &kernel(40, 0.2, 0.88));
        let sse = report.sse_mean_total_w;
        let ssp = report.ssp_mean_total_w.expect("ssp profile present");
        if let Some(sse) = sse {
            assert!(
                sse < ssp,
                "SSE {sse} should underestimate SSP {ssp} for short kernels"
            );
            let err = report.sse_vs_ssp_error.unwrap();
            assert!(err > 0.2, "expected a large SSE/SSP gap, got {err}");
        } else {
            // With few runs no log may land in the SSE execution; the
            // profile must then be reported as absent, not fabricated.
            assert!(report.sse_vs_ssp_error.is_none());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = profile_with(23, 12, &kernel(120, 0.3, 0.7));
        let b = profile_with(23, 12, &kernel(120, 0.3, 0.7));
        assert_eq!(a, b);
    }

    #[test]
    fn read_delay_calibrated_near_configured_rtt() {
        let report = profile_with(29, 10, &kernel(120, 0.3, 0.7));
        // HostConfig default RTT is 1.5 us; delay assumes the midpoint.
        assert!(
            (500.0..1_200.0).contains(&report.read_delay_ns),
            "delay {}",
            report.read_delay_ns
        );
    }

    #[test]
    fn drift_estimate_present_with_correction() {
        let report = profile_with(31, 10, &kernel(400, 0.2, 0.8));
        let drift = report.estimated_drift_ppm.expect("drift estimated");
        // Configured truth is 18 ppm; the per-run estimate is noisy but the
        // mean over runs should land in a plausible band.
        assert!(drift.abs() < 500.0, "drift {drift}");
    }

    #[test]
    fn quick_config_reduces_runs() {
        let c = RunnerConfig::quick(7);
        assert_eq!(c.runs_override, Some(7));
        assert!(c.calibration_reads < RunnerConfig::default().calibration_reads);
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        assert!(RunnerConfig::default().validate().is_ok());
        assert!(RunnerConfig::quick(10).validate().is_ok());

        let bad = RunnerConfig {
            runs_override: Some(0),
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = RunnerConfig {
            margin_override: Some(0.0),
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = RunnerConfig {
            calibration_reads: 0,
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = RunnerConfig {
            power_stability_tol: 0.0,
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        // And the runner surfaces it before touching the device.
        let mut sim = Simulation::new(SimConfig::default(), 70).unwrap();
        let mut runner = FingravRunner::new(
            &mut sim,
            RunnerConfig {
                runs_override: Some(0),
                ..RunnerConfig::default()
            },
        );
        assert!(matches!(
            runner.profile(&kernel(100, 0.3, 0.7)),
            Err(MethodologyError::InvalidConfig(_))
        ));
    }

    #[test]
    fn coarse_logger_mode_works_but_starves_lois() {
        // Paper Section VI: the methodology applies to external loggers
        // like amd-smi, but the 50 ms averaging window yields far fewer
        // LOIs per run for the same kernel.
        let desc = kernel(1600, 0.12, 0.95);

        let mut sim = Simulation::new(SimConfig::default(), 71).unwrap();
        let mut fine_runner = FingravRunner::new(&mut sim, RunnerConfig::quick(15));
        let fine = fine_runner.profile(&desc).unwrap();

        let mut sim = Simulation::new(SimConfig::default(), 71).unwrap();
        let mut coarse_runner = FingravRunner::new(
            &mut sim,
            RunnerConfig {
                logger: LoggerChoice::Coarse,
                extra_run_batches: 0,
                ..RunnerConfig::quick(15)
            },
        );
        let coarse = coarse_runner.profile(&desc).unwrap();

        // The coarse window forces many more executions per run...
        assert!(
            coarse.executions_per_run > 2 * fine.executions_per_run,
            "coarse {} vs fine {} executions per run",
            coarse.executions_per_run,
            fine.executions_per_run
        );
        // ...and still harvests far fewer LOIs.
        assert!(
            coarse.ssp_loi_count() < fine.ssp_loi_count(),
            "coarse {} vs fine {} LOIs",
            coarse.ssp_loi_count(),
            fine.ssp_loi_count()
        );
        assert!(coarse.golden_runs > 0);
    }
}
