//! The FinGraV runner: the paper's nine-step methodology, end to end.
//!
//! Given a kernel, the runner (numbers refer to paper Section IV-B):
//!
//! 1. times the kernel a few times to estimate its execution time and look
//!    up the guidance table (#runs, binning margin, LOI target);
//! 2. instruments runs with CPU-side timing, a GPU-timestamp read, and
//!    power-logger start/stop;
//! 3. detects the warm-up count — the SSE execution index;
//! 4. computes the SSP execution count from
//!    `max(ceil(window / exec), sse_execs)` and refines it with a
//!    power-stability probe (the paper's search under throttling);
//! 5. executes the runs, adding a random delay before each launch burst so
//!    logs land at unique times-of-interest;
//! 6. discards all but the *golden* runs via execution-time binning;
//! 7. synchronizes CPU–GPU time per run (single- or two-anchor);
//! 8. tops up runs if fewer LOIs were harvested than the guidance target;
//! 9. stitches LOIs/TOIs into the run, SSE, and SSP power profiles.

use fingrav_sim::kernel::{KernelDesc, KernelHandle};
use fingrav_sim::session::AbortHandle;
use fingrav_sim::time::SimDuration;
use fingrav_sim::trace::RunTrace;
use serde::{Deserialize, Serialize};

use crate::backend::PowerBackend;
use crate::error::{MethodologyError, MethodologyResult};
use crate::guidance::{GuidanceEntry, GuidanceTable};
use crate::observe::ProfilingSink;
use crate::profile::PowerProfile;
use crate::stages::StagePipeline;
use crate::sync::TimeSync;

/// Which platform power logger the methodology drives (paper Section VI:
/// the key tenets apply equally to external loggers such as `amd-smi`, but
/// the resulting profiles inherit the logger's averaging window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoggerChoice {
    /// The internal fine logger (1 ms on MI300X).
    Fine,
    /// The external coarse logger (amd-smi-class, tens of ms).
    Coarse,
}

/// Tunables of the runner. Defaults follow the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Override the guidance #runs (tests and the Fig. 5 resiliency study).
    pub runs_override: Option<u32>,
    /// Override the guidance binning margin.
    pub margin_override: Option<f64>,
    /// The guidance table (Table I by default).
    pub guidance: GuidanceTable,
    /// Timestamp reads used to calibrate the read delay.
    pub calibration_reads: u32,
    /// Executions in the timing probe (must exceed the warm-up count).
    pub timing_probe_executions: u32,
    /// Relative tolerance for execution-time stabilization (warm-up
    /// detection).
    pub time_stability_tol: f64,
    /// Relative tolerance for power stabilization (SSP detection).
    pub power_stability_tol: f64,
    /// Relative peak-to-trough depth that counts as a throttling excursion.
    pub throttle_detection_tol: f64,
    /// Upper bound of the random pre-launch delay (paper step 5).
    pub random_delay_max: SimDuration,
    /// Idle time between runs (lets the device cool back to a cold start).
    pub inter_run_idle: SimDuration,
    /// Cap on tail executions appended after the SSP point to harvest LOIs.
    pub tail_executions_cap: u32,
    /// How many half-size top-up batches to run when LOIs fall short
    /// (paper step 8).
    pub extra_run_batches: u32,
    /// Use two-anchor sync to cancel GPU-counter drift (set false to mimic
    /// single-anchor prior work).
    pub drift_correction: bool,
    /// Which platform logger to drive.
    pub logger: LoggerChoice,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            runs_override: None,
            margin_override: None,
            guidance: GuidanceTable::paper(),
            calibration_reads: 64,
            timing_probe_executions: 12,
            time_stability_tol: 0.02,
            power_stability_tol: 0.03,
            throttle_detection_tol: 0.06,
            random_delay_max: SimDuration::from_millis(1),
            inter_run_idle: SimDuration::from_millis(8),
            tail_executions_cap: 64,
            extra_run_batches: 3,
            drift_correction: true,
            logger: LoggerChoice::Fine,
        }
    }
}

impl RunnerConfig {
    /// A configuration scaled down for fast tests: fewer runs, fewer
    /// calibration reads.
    pub fn quick(runs: u32) -> Self {
        RunnerConfig {
            runs_override: Some(runs),
            calibration_reads: 16,
            extra_run_batches: 1,
            ..RunnerConfig::default()
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::InvalidConfig`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> MethodologyResult<()> {
        let err = |reason: &str| Err(MethodologyError::InvalidConfig(reason.into()));
        if self.runs_override == Some(0) {
            return err("runs override must be positive");
        }
        if let Some(m) = self.margin_override {
            // NaN also fails this check, which is intended.
            if m <= 0.0 || m.is_nan() {
                return err("binning margin must be positive");
            }
        }
        if self.calibration_reads == 0 {
            return err("at least one calibration read is required");
        }
        if self.timing_probe_executions < 2 {
            return err("the timing probe needs at least two executions");
        }
        if !(self.time_stability_tol > 0.0 && self.time_stability_tol < 1.0) {
            return err("time stability tolerance must be in (0, 1)");
        }
        if !(self.power_stability_tol > 0.0 && self.power_stability_tol < 1.0) {
            return err("power stability tolerance must be in (0, 1)");
        }
        if self.tail_executions_cap < 2 {
            return err("the tail-execution cap must allow at least two executions");
        }
        Ok(())
    }
}

/// One collected profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedRun {
    /// The observable trace.
    pub trace: RunTrace,
    /// The per-run CPU–GPU sync.
    pub sync: TimeSync,
    /// Median CPU-observed duration of the steady executions, ns.
    pub steady_median_ns: u64,
}

/// The full output of profiling one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPowerReport {
    /// Kernel label.
    pub label: String,
    /// Estimated steady execution time (CPU-observed), ns.
    pub exec_time_ns: u64,
    /// The guidance row applied.
    pub guidance: GuidanceEntry,
    /// Binning margin actually used.
    pub margin_frac: f64,
    /// Index of the SSE execution (= detected warm-up count).
    pub sse_index: u32,
    /// Index of the first SSP execution.
    pub ssp_index: u32,
    /// Executions per run (SSP index + tail).
    pub executions_per_run: u32,
    /// Total runs executed (including top-up batches).
    pub runs_executed: u32,
    /// Runs surviving the golden-bin filter.
    pub golden_runs: u32,
    /// Whether the throttling signature was detected during probing.
    pub throttle_detected: bool,
    /// Calibrated timestamp-read delay, ns.
    pub read_delay_ns: f64,
    /// Mean estimated GPU-counter drift across runs (two-anchor sync only).
    pub estimated_drift_ppm: Option<f64>,
    /// All logs of golden runs on run-relative time (Fig. 6/8 material).
    pub run_profile: PowerProfile,
    /// LOIs within the SSE execution.
    pub sse_profile: PowerProfile,
    /// LOIs within executions at/after the SSP index.
    pub ssp_profile: PowerProfile,
    /// Mean total power of the SSE profile, if any LOIs landed there.
    pub sse_mean_total_w: Option<f64>,
    /// Mean total power of the SSP profile.
    pub ssp_mean_total_w: Option<f64>,
    /// Relative SSE-vs-SSP measurement error `|SSP−SSE|/SSP` — the paper's
    /// headline "as high as 80%" number.
    pub sse_vs_ssp_error: Option<f64>,
}

impl KernelPowerReport {
    /// SSP-profile LOI count.
    pub fn ssp_loi_count(&self) -> usize {
        self.ssp_profile.len()
    }

    /// SSE-profile LOI count.
    pub fn sse_loi_count(&self) -> usize {
        self.sse_profile.len()
    }
}

/// The FinGraV methodology runner over a [`PowerBackend`].
///
/// `profile` composes the typed stages of [`crate::stages`] — timing probe,
/// SSP search, run collection, binning, stitching, finalization — into the
/// paper's nine-step recipe. Drive [`StagePipeline`] directly to run,
/// inspect, or checkpoint individual stages. Attach a
/// [`ProfilingSink`] via [`FingravRunner::with_observer`] to stream
/// stage-scoped telemetry while the device runs, and a cancellation
/// token via [`FingravRunner::with_abort`] to stop a profiling
/// mid-measurement ([`MethodologyError::Aborted`]).
pub struct FingravRunner<'a, B: PowerBackend> {
    backend: &'a mut B,
    config: RunnerConfig,
    observer: Option<&'a mut dyn ProfilingSink>,
    abort: AbortHandle,
}

impl<'a, B: PowerBackend> FingravRunner<'a, B> {
    /// Creates a runner with explicit configuration.
    pub fn new(backend: &'a mut B, config: RunnerConfig) -> Self {
        FingravRunner {
            backend,
            config,
            observer: None,
            abort: AbortHandle::new(),
        }
    }

    /// Creates a runner with the paper-default configuration.
    pub fn with_defaults(backend: &'a mut B) -> Self {
        FingravRunner::new(backend, RunnerConfig::default())
    }

    /// Attaches an observer: every stage boundary and device event of the
    /// profiling is forwarded to `sink` while the device runs.
    #[must_use]
    pub fn with_observer(mut self, sink: &'a mut dyn ProfilingSink) -> Self {
        self.observer = Some(sink);
        self
    }

    /// Attaches a cooperative cancellation token; when it fires,
    /// [`FingravRunner::profile`] returns [`MethodologyError::Aborted`] at
    /// the next host boundary.
    #[must_use]
    pub fn with_abort(mut self, abort: AbortHandle) -> Self {
        self.abort = abort;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Registers and profiles a kernel.
    ///
    /// # Errors
    ///
    /// Propagates backend errors and methodology failures (no sync data, no
    /// golden runs).
    pub fn profile(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelPowerReport> {
        let handle = self.backend.register_kernel(desc)?;
        self.profile_handle(handle, &desc.name)
    }

    /// Profiles an already-registered kernel by composing the pipeline
    /// stages in order.
    ///
    /// # Errors
    ///
    /// Propagates backend errors and methodology failures.
    pub fn profile_handle(
        &mut self,
        kernel: KernelHandle,
        label: &str,
    ) -> MethodologyResult<KernelPowerReport> {
        let mut pipeline = StagePipeline::new(&mut *self.backend, self.config.clone())?;
        if let Some(sink) = self.observer.as_deref_mut() {
            pipeline.set_observer(sink);
        }
        pipeline.set_abort(self.abort.clone());
        // Step 2 precursor: calibrate the timestamp-read delay.
        let calibration = pipeline.calibrate()?;
        // Steps 1 + 3: timing probe, warm-up (SSE) detection, guidance.
        let timing = pipeline.timing_probe(kernel, &calibration)?;
        // Step 4: SSP execution count (formula + stability search).
        let ssp = pipeline.ssp_search(kernel, &calibration, &timing)?;
        // Steps 5-8: main runs with golden-bin filtering and top-up.
        let collection = pipeline.collect_runs(kernel, label, &calibration, &timing, &ssp)?;
        // Step 9: stitched profiles and summary numbers.
        Ok(pipeline.finalize(label, &calibration, &timing, &ssp, collection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;

    fn kernel(base_us: u64, cf: f64, xcd: f64) -> KernelDesc {
        KernelDesc {
            name: format!("test-{base_us}us"),
            base_exec: SimDuration::from_micros(base_us),
            freq_insensitive_frac: cf,
            activity: Activity::new(xcd, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1e11,
            hbm_bytes: 1e8,
            llc_bytes: 1e9,
            workgroups: 256,
        }
    }

    fn profile_with(seed: u64, runs: u32, desc: &KernelDesc) -> KernelPowerReport {
        let mut sim = Simulation::new(SimConfig::default(), seed).unwrap();
        let mut runner = FingravRunner::new(&mut sim, RunnerConfig::quick(runs));
        runner.profile(desc).unwrap()
    }

    #[test]
    fn mid_size_kernel_end_to_end() {
        let report = profile_with(11, 30, &kernel(200, 0.15, 0.9));
        assert_eq!(report.label, "test-200us");
        // Steady time near 200 us plus overheads, definitely inside
        // the 200us-1ms guidance row.
        assert!(report.exec_time_ns > 150_000 && report.exec_time_ns < 400_000);
        assert_eq!(report.guidance.margin_frac, 0.02);
        // Warm-ups detected (simulator default: 3).
        assert!(
            report.sse_index >= 2 && report.sse_index <= 4,
            "sse {}",
            report.sse_index
        );
        assert!(report.ssp_index >= report.sse_index);
        assert!(report.golden_runs > 0);
        assert!(report.golden_runs <= report.runs_executed);
        assert!(!report.run_profile.is_empty());
        assert!(!report.ssp_profile.is_empty());
        assert!(report.ssp_mean_total_w.unwrap() > 150.0);
    }

    #[test]
    fn short_kernel_needs_many_executions_for_ssp() {
        let report = profile_with(13, 30, &kernel(40, 0.2, 0.88));
        // ~46 us observed: ceil(1ms / 46us) ≈ 22 executions minimum.
        assert!(
            report.ssp_index >= 15,
            "short kernel SSP index {} too low",
            report.ssp_index
        );
        assert!(report.executions_per_run > report.ssp_index);
    }

    #[test]
    fn long_kernel_ssp_close_to_sse() {
        let report = profile_with(17, 20, &kernel(1600, 0.12, 0.95));
        // Window fits inside one execution; SSP arrives within a few
        // executions of SSE.
        assert!(
            report.ssp_index <= report.sse_index + 6,
            "ssp {} sse {}",
            report.ssp_index,
            report.sse_index
        );
        // Heavy kernel: the throttling signature should be detected.
        assert!(report.throttle_detected);
    }

    #[test]
    fn sse_underestimates_ssp_for_short_kernels() {
        // The paper's headline: measuring at SSE on a sub-window kernel
        // under-reports power/energy substantially.
        let report = profile_with(19, 60, &kernel(40, 0.2, 0.88));
        let sse = report.sse_mean_total_w;
        let ssp = report.ssp_mean_total_w.expect("ssp profile present");
        if let Some(sse) = sse {
            assert!(
                sse < ssp,
                "SSE {sse} should underestimate SSP {ssp} for short kernels"
            );
            let err = report.sse_vs_ssp_error.unwrap();
            assert!(err > 0.2, "expected a large SSE/SSP gap, got {err}");
        } else {
            // With few runs no log may land in the SSE execution; the
            // profile must then be reported as absent, not fabricated.
            assert!(report.sse_vs_ssp_error.is_none());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = profile_with(23, 12, &kernel(120, 0.3, 0.7));
        let b = profile_with(23, 12, &kernel(120, 0.3, 0.7));
        assert_eq!(a, b);
    }

    #[test]
    fn read_delay_calibrated_near_configured_rtt() {
        let report = profile_with(29, 10, &kernel(120, 0.3, 0.7));
        // HostConfig default RTT is 1.5 us; delay assumes the midpoint.
        assert!(
            (500.0..1_200.0).contains(&report.read_delay_ns),
            "delay {}",
            report.read_delay_ns
        );
    }

    #[test]
    fn drift_estimate_present_with_correction() {
        let report = profile_with(31, 10, &kernel(400, 0.2, 0.8));
        let drift = report.estimated_drift_ppm.expect("drift estimated");
        // Configured truth is 18 ppm; the per-run estimate is noisy but the
        // mean over runs should land in a plausible band.
        assert!(drift.abs() < 500.0, "drift {drift}");
    }

    #[test]
    fn quick_config_reduces_runs() {
        let c = RunnerConfig::quick(7);
        assert_eq!(c.runs_override, Some(7));
        assert!(c.calibration_reads < RunnerConfig::default().calibration_reads);
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        assert!(RunnerConfig::default().validate().is_ok());
        assert!(RunnerConfig::quick(10).validate().is_ok());

        let bad = RunnerConfig {
            runs_override: Some(0),
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = RunnerConfig {
            margin_override: Some(0.0),
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = RunnerConfig {
            calibration_reads: 0,
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = RunnerConfig {
            power_stability_tol: 0.0,
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());

        // And the runner surfaces it before touching the device.
        let mut sim = Simulation::new(SimConfig::default(), 70).unwrap();
        let mut runner = FingravRunner::new(
            &mut sim,
            RunnerConfig {
                runs_override: Some(0),
                ..RunnerConfig::default()
            },
        );
        assert!(matches!(
            runner.profile(&kernel(100, 0.3, 0.7)),
            Err(MethodologyError::InvalidConfig(_))
        ));
    }

    #[test]
    fn coarse_logger_mode_works_but_starves_lois() {
        // Paper Section VI: the methodology applies to external loggers
        // like amd-smi, but the 50 ms averaging window yields far fewer
        // LOIs per run for the same kernel.
        let desc = kernel(1600, 0.12, 0.95);

        let mut sim = Simulation::new(SimConfig::default(), 71).unwrap();
        let mut fine_runner = FingravRunner::new(&mut sim, RunnerConfig::quick(15));
        let fine = fine_runner.profile(&desc).unwrap();

        let mut sim = Simulation::new(SimConfig::default(), 71).unwrap();
        let mut coarse_runner = FingravRunner::new(
            &mut sim,
            RunnerConfig {
                logger: LoggerChoice::Coarse,
                extra_run_batches: 0,
                ..RunnerConfig::quick(15)
            },
        );
        let coarse = coarse_runner.profile(&desc).unwrap();

        // The coarse window forces many more executions per run...
        assert!(
            coarse.executions_per_run > 2 * fine.executions_per_run,
            "coarse {} vs fine {} executions per run",
            coarse.executions_per_run,
            fine.executions_per_run
        );
        // ...and still harvests far fewer LOIs.
        assert!(
            coarse.ssp_loi_count() < fine.ssp_loi_count(),
            "coarse {} vs fine {} LOIs",
            coarse.ssp_loi_count(),
            fine.ssp_loi_count()
        );
        assert!(coarse.golden_runs > 0);
    }
}
