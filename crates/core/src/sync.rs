//! CPU–GPU time synchronization (paper solution **S2**).
//!
//! The on-GPU power logger stamps each log with the GPU timestamp counter,
//! which is unrelated to the CPU clock that stamps kernel start/end events.
//! FinGraV bridges the domains by (1) benchmarking the delay of reading the
//! GPU counter from the CPU, (2) anchoring one counter read against the CPU
//! clock, and (3) converting every log's ticks into CPU time relative to
//! that anchor.
//!
//! A single anchor assumes the counter's nominal rate. Because real
//! oscillators drift by tens of ppm (an error the paper's related work
//! flags and defers), this module also offers **two-anchor sync**: reads
//! taken before and after the measurement window yield the *effective*
//! tick rate, cancelling drift to first order.

use fingrav_sim::time::CpuTime;
use fingrav_sim::trace::TimestampRead;
use serde::{Deserialize, Serialize};

use crate::error::{MethodologyError, MethodologyResult};
use crate::stats::median_u64;

/// Calibration of the GPU-timestamp read path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadDelayCalibration {
    /// Median observed round-trip time of a read, nanoseconds.
    pub median_rtt_ns: u64,
    /// Assumed position of the actual counter sample inside the round trip
    /// (0.5 = midpoint, the best assumption absent other information).
    pub assumed_sample_frac: f64,
}

impl ReadDelayCalibration {
    /// Builds a calibration from repeated timestamp reads.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::InsufficientSyncData`] if `reads` is
    /// empty.
    pub fn from_reads(reads: &[TimestampRead]) -> MethodologyResult<Self> {
        let rtts: Vec<u64> = reads.iter().map(TimestampRead::rtt_ns).collect();
        let median_rtt_ns = median_u64(&rtts).ok_or(MethodologyError::InsufficientSyncData)?;
        Ok(ReadDelayCalibration {
            median_rtt_ns,
            assumed_sample_frac: 0.5,
        })
    }

    /// The estimated delay from issuing a read to the counter being
    /// sampled, nanoseconds.
    pub fn delay_ns(&self) -> f64 {
        self.median_rtt_ns as f64 * self.assumed_sample_frac
    }
}

/// A calibrated mapping from GPU ticks to CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSync {
    anchor_cpu_ns: f64,
    anchor_ticks: f64,
    ns_per_tick: f64,
}

impl TimeSync {
    /// Single-anchor sync: assumes the counter runs at exactly its nominal
    /// rate. Drift accumulates linearly with distance from the anchor.
    pub fn from_anchor(
        read: &TimestampRead,
        calibration: &ReadDelayCalibration,
        nominal_counter_hz: f64,
    ) -> Self {
        TimeSync {
            anchor_cpu_ns: read.cpu_before.as_nanos() as f64 + calibration.delay_ns(),
            anchor_ticks: read.ticks.as_raw() as f64,
            ns_per_tick: 1e9 / nominal_counter_hz,
        }
    }

    /// Two-anchor sync: derives the *effective* tick rate from two reads
    /// spanning the measurement window, cancelling oscillator drift to
    /// first order.
    ///
    /// # Errors
    ///
    /// Returns [`MethodologyError::InsufficientSyncData`] if the two reads
    /// saw the same counter value (zero baseline).
    pub fn from_two_anchors(
        first: &TimestampRead,
        last: &TimestampRead,
        calibration: &ReadDelayCalibration,
    ) -> MethodologyResult<Self> {
        let dticks = last.ticks.ticks_since(first.ticks);
        if dticks <= 0 {
            return Err(MethodologyError::InsufficientSyncData);
        }
        let cpu_first = first.cpu_before.as_nanos() as f64 + calibration.delay_ns();
        let cpu_last = last.cpu_before.as_nanos() as f64 + calibration.delay_ns();
        let ns_per_tick = (cpu_last - cpu_first) / dticks as f64;
        if !(ns_per_tick.is_finite() && ns_per_tick > 0.0) {
            return Err(MethodologyError::InsufficientSyncData);
        }
        Ok(TimeSync {
            anchor_cpu_ns: cpu_first,
            anchor_ticks: first.ticks.as_raw() as f64,
            ns_per_tick,
        })
    }

    /// The effective nanoseconds-per-tick this sync uses.
    pub fn ns_per_tick(&self) -> f64 {
        self.ns_per_tick
    }

    /// Decomposes the sync into its raw `(anchor_cpu_ns, anchor_ticks,
    /// ns_per_tick)` parts, for persistence (checkpoint codecs).
    pub fn to_parts(&self) -> (f64, f64, f64) {
        (self.anchor_cpu_ns, self.anchor_ticks, self.ns_per_tick)
    }

    /// Rebuilds a sync from parts previously obtained with
    /// [`TimeSync::to_parts`]. No validation is performed; the parts are
    /// trusted to come from a sync this process (or a checkpoint decoder)
    /// took apart.
    pub fn from_parts(anchor_cpu_ns: f64, anchor_ticks: f64, ns_per_tick: f64) -> Self {
        TimeSync {
            anchor_cpu_ns,
            anchor_ticks,
            ns_per_tick,
        }
    }

    /// Converts a raw tick count to CPU nanoseconds (fractional).
    pub fn cpu_ns_of_ticks(&self, ticks: u64) -> f64 {
        self.anchor_cpu_ns + (ticks as f64 - self.anchor_ticks) * self.ns_per_tick
    }

    /// Converts a raw tick count to a [`CpuTime`] (rounded).
    pub fn cpu_time_of_ticks(&self, ticks: u64) -> CpuTime {
        CpuTime::from_nanos(self.cpu_ns_of_ticks(ticks).round().max(0.0) as u64)
    }

    /// Estimated counter drift in ppm relative to the nominal rate
    /// (positive = counter runs fast). Only meaningful for two-anchor sync.
    pub fn estimated_drift_ppm(&self, nominal_counter_hz: f64) -> f64 {
        let nominal_ns_per_tick = 1e9 / nominal_counter_hz;
        (nominal_ns_per_tick / self.ns_per_tick - 1.0) * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::time::GpuTicks;

    fn read(cpu_before_ns: u64, rtt_ns: u64, ticks: u64) -> TimestampRead {
        TimestampRead {
            cpu_before: CpuTime::from_nanos(cpu_before_ns),
            cpu_after: CpuTime::from_nanos(cpu_before_ns + rtt_ns),
            ticks: GpuTicks::from_raw(ticks),
        }
    }

    #[test]
    fn calibration_uses_median_rtt() {
        let reads = vec![
            read(0, 1_000, 0),
            read(10, 2_000, 0),
            read(20, 30_000, 0), // one outlier read
        ];
        let c = ReadDelayCalibration::from_reads(&reads).unwrap();
        assert_eq!(c.median_rtt_ns, 2_000);
        assert!((c.delay_ns() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_rejects_empty() {
        assert!(matches!(
            ReadDelayCalibration::from_reads(&[]),
            Err(MethodologyError::InsufficientSyncData)
        ));
    }

    #[test]
    fn single_anchor_maps_ticks_linearly() {
        let c = ReadDelayCalibration {
            median_rtt_ns: 1_000,
            assumed_sample_frac: 0.5,
        };
        // 100 MHz counter: 10 ns per tick. Anchor: cpu 10_500 at tick 1000.
        let sync = TimeSync::from_anchor(&read(10_000, 1_000, 1_000), &c, 100e6);
        assert!((sync.cpu_ns_of_ticks(1_000) - 10_500.0).abs() < 1e-9);
        assert!((sync.cpu_ns_of_ticks(1_100) - 11_500.0).abs() < 1e-9);
        assert!((sync.cpu_ns_of_ticks(900) - 9_500.0).abs() < 1e-9);
        assert_eq!(sync.cpu_time_of_ticks(1_100), CpuTime::from_nanos(11_500));
    }

    #[test]
    fn two_anchor_recovers_drifted_rate() {
        let c = ReadDelayCalibration {
            median_rtt_ns: 0,
            assumed_sample_frac: 0.5,
        };
        // True rate: 100 MHz + 50 ppm -> over 1 s the counter gains 5000
        // ticks beyond nominal.
        let true_hz = 100e6 * (1.0 + 50e-6);
        let t0 = 1_000_000u64;
        let t1 = t0 + 1_000_000_000; // 1 s later
        let ticks0 = 500_000u64;
        let ticks1 = ticks0 + true_hz as u64;
        let sync =
            TimeSync::from_two_anchors(&read(t0, 0, ticks0), &read(t1, 0, ticks1), &c).unwrap();
        let drift = sync.estimated_drift_ppm(100e6);
        assert!((drift - 50.0).abs() < 1.0, "estimated drift {drift} ppm");
        // Mapping the far anchor back is exact.
        assert!((sync.cpu_ns_of_ticks(ticks1) - t1 as f64).abs() < 1.0);
    }

    #[test]
    fn single_anchor_accumulates_drift_error() {
        let c = ReadDelayCalibration {
            median_rtt_ns: 0,
            assumed_sample_frac: 0.5,
        };
        let true_hz = 100e6 * (1.0 + 50e-6);
        let t0 = 0u64;
        let ticks0 = 0u64;
        let one_second_ticks = true_hz as u64;
        let single = TimeSync::from_anchor(&read(t0, 0, ticks0), &c, 100e6);
        // After 1 s, nominal-rate conversion is off by ~50 us.
        let err = single.cpu_ns_of_ticks(one_second_ticks) - 1e9;
        assert!(err.abs() > 40_000.0, "drift error {err} ns should be large");
    }

    #[test]
    fn two_anchor_rejects_zero_span() {
        let c = ReadDelayCalibration {
            median_rtt_ns: 0,
            assumed_sample_frac: 0.5,
        };
        let r = read(0, 0, 100);
        assert!(TimeSync::from_two_anchors(&r, &r, &c).is_err());
        // Backwards ticks also rejected.
        assert!(TimeSync::from_two_anchors(&read(0, 0, 200), &read(10, 0, 100), &c).is_err());
    }

    #[test]
    fn cpu_time_clamps_negative() {
        let c = ReadDelayCalibration {
            median_rtt_ns: 0,
            assumed_sample_frac: 0.5,
        };
        let sync = TimeSync::from_anchor(&read(100, 0, 1_000_000), &c, 100e6);
        // Ticks far before the anchor would map to negative CPU time.
        assert_eq!(sync.cpu_time_of_ticks(0), CpuTime::from_nanos(0));
    }
}
