//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`, and
//! [`Rng::gen_range`] over float/integer ranges. The core generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, well dispersed,
//! and fast; it is *not* the upstream ChaCha12 `StdRng`, so draw sequences
//! differ from the real crate (everything in this workspace only relies on
//! determinism per seed, not on specific draw values).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generation.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Item;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Item;
}

impl SampleRange for Range<f64> {
    type Item = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Item = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Item = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize);

/// High-level draws (subset of `rand::Rng`), blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Item {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&y));
            let z = rng.gen_range(4usize..9);
            assert!((4..9).contains(&z));
        }
    }

    #[test]
    fn float_draws_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
