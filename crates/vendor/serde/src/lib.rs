//! Offline vendored subset of `serde`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! serde surface the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` plus the trait machinery a JSON front-end
//! (`serde_json`, also vendored) needs. Instead of the full
//! serializer/visitor architecture, both traits funnel through an owned
//! [`Value`] tree whose map entries preserve insertion order, so two equal
//! Rust values always produce byte-identical JSON — the property the
//! campaign-determinism tests rely on.
//!
//! Representation choices mirror upstream `serde_json`: structs are maps in
//! field-declaration order, newtype structs are transparent, tuple structs
//! are sequences, and enums are externally tagged (`"Variant"`,
//! `{"Variant": value}`, `{"Variant": [..]}`, `{"Variant": {..}}`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model both traits funnel through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats, as in upstream `serde_json`).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Finite floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion-ordered entries (deterministic serialization).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an "expected X while deserializing Y, found Z" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> DeError {
        DeError(format!(
            "expected {what} while deserializing {context}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in a struct map (derive-codegen helper).
///
/// # Errors
///
/// Returns [`DeError`] naming the missing field.
pub fn map_field<'a>(
    entries: &'a [(String, Value)],
    field: &str,
    context: &str,
) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| {
            DeError(format!(
                "missing field `{field}` while deserializing {context}"
            ))
        })
}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, as in upstream serde_json — this
// is what lets callers parse arbitrary JSON (`from_str::<Value>`) and
// inspect it structurally.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} overflows i64")))?,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // Upstream serde_json writes non-finite floats as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple", v))?;
                if items.len() != LEN {
                    return Err(DeError(format!(
                        "expected a {LEN}-tuple, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
    }

    #[test]
    fn sequences_and_tuples_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let restored = Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(restored, v);
    }

    #[test]
    fn missing_field_reports_context() {
        let entries = vec![("a".to_string(), Value::UInt(1))];
        let err = map_field(&entries, "b", "Thing").unwrap_err();
        assert!(err.0.contains("`b`"), "{err}");
        assert!(err.0.contains("Thing"), "{err}");
    }
}
