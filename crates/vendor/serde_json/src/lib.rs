//! Offline vendored JSON front-end for the `serde` shim.
//!
//! Provides [`to_string`] / [`to_string_pretty`] / [`from_str`] /
//! [`to_value`] / [`from_value`] over the shim's ordered [`Value`] model.
//! Output is deterministic: map entries serialize in insertion (= field
//! declaration) order and floats print their shortest round-trip
//! representation, so equal Rust values always yield byte-identical JSON.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize};

pub use serde::Value;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree has the wrong shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for this shim's data model; the `Result` mirrors the upstream
/// signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this shim's data model; the `Result` mirrors the upstream
/// signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    from_value(&v)
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "non-finite floats serialize as Value::Null");
    // `{:?}` is Rust's shortest round-trip form and always keeps a decimal
    // point or exponent, matching upstream serde_json (e.g. `1.0`, not `1`).
    out.push_str(&format!("{x:?}"));
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_u_escape()?;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow (JSON escapes non-BMP
                                // characters as UTF-16 pairs). `self.pos`
                                // is on the high escape's `u`; its digits
                                // end at pos+4, so `\u` sits at pos+5.
                                if self.bytes.get(self.pos + 5..self.pos + 7)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(Error("unpaired high surrogate".into()));
                                }
                                self.pos += 6; // now on the low escape's `u`
                                let low = self.parse_u_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?} at {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape; `self.pos` is on
    /// the `u` and is left there (the caller advances past the digits).
    fn parse_u_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u64>>>(&s).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Vec<(u64, f64)> = vec![(1, 2.5), (3, 4.0)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u64, f64)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Interop: tools like Python's json.dumps escape non-BMP
        // characters as UTF-16 surrogate pairs.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"a\\uD83D\\uDE00b\"").unwrap(), "a😀b");
        // BMP escapes still decode directly.
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        // Unpaired or malformed surrogates are rejected, as upstream does.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ude00\"").is_err());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
