//! Offline vendored subset of the `proptest` property-testing API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! surface the workspace's property tests use: the [`proptest!`] macro with
//! `arg in strategy` bindings, range strategies over integers and floats,
//! `prop::collection::vec`, and the `prop_assert!` family. Each test runs a
//! fixed number of cases with inputs drawn from a generator seeded
//! deterministically from the test name and case index, so failures are
//! reproducible run to run. Unlike upstream, failing inputs are not shrunk —
//! the panic message reports the case index instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Cases executed per property (upstream default is 256; this shim trades a
/// little coverage for CI speed).
pub const CASES: u32 = 64;

/// Deterministic per-test-case generator (xoshiro256++ over a seed derived
/// from the test name and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates the generator for `(test name, case index)`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion with the case
        // index folded in.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h ^ (u64::from(case) << 32 | u64::from(case));
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s of `elem` draws with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs (mirrors
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }`
/// item becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            for case in 0..$crate::CASES {
                let mut __proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __proptest_result {
                    panic!(
                        "property `{}` failed at case {case}/{}: {msg}",
                        stringify!($name),
                        $crate::CASES,
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{l:?}`\n right: `{r:?}`"
            ));
        }
    }};
}

/// Fails the enclosing property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{l:?}`"
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay inside their bounds.
        fn ranges_in_bounds(a in 10u64..20, x in -1.5f64..2.5, n in 3usize..=7) {
            prop_assert!((10..20).contains(&a), "a = {a}");
            prop_assert!((-1.5..2.5).contains(&x), "x = {x}");
            prop_assert!((3..=7).contains(&n), "n = {n}");
        }

        /// Vec strategies honour the length range.
        fn vec_lengths(v in prop::collection::vec(0u32..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for &x in &v {
                prop_assert!(x < 100);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = super::TestRng::for_case("t", 4);
        assert_ne!(super::TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }
}
