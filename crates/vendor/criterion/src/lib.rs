//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! surface the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! warmup-then-sample wall-clock harness.
//!
//! Fidelity features mirroring upstream criterion's statistics:
//!
//! * **IQR outlier rejection** — samples outside
//!   `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are excluded from the reported
//!   mean/min/max (the rejected count is printed), so a stray scheduler
//!   hiccup no longer smears the summary;
//! * **baseline comparison** — `--save-baseline NAME` persists each
//!   benchmark's filtered statistics as JSON under
//!   `target/criterion-shim/`, and `--baseline NAME` prints the relative
//!   mean change against the saved record, upstream-style.
//!
//! Shim extensions for CI regression gating (no upstream equivalent):
//!
//! * `--baseline-dir DIR` points baseline storage/lookup at a directory
//!   other than `target/criterion-shim/` — e.g. a *committed* baseline
//!   checked into the repository;
//! * `--regress-fail-pct P` arms the regression gate: after every group
//!   has run, the process exits nonzero if any compared benchmark's mean
//!   regressed more than `P` percent against the baseline;
//! * `--compare-out FILE` writes the full comparison (every benchmark's
//!   old/new mean and change, missing baselines, gate verdicts) as one
//!   JSON document — the artifact CI uploads.
//!
//! The comparison log is process-global ([`finalize_comparisons`] drains
//! it; [`criterion_main!`] calls that automatically), so multi-group
//! bench binaries gate over all their groups at once.
//!
//! Like upstream, `--bench`/`--test` style argv from `cargo bench` is
//! accepted and a positional filter restricts which benchmarks run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API parity; the shim treats
/// every batch size identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    save_baseline: Option<String>,
    compare_baseline: Option<String>,
    baseline_dir: PathBuf,
    regress_fail_pct: Option<f64>,
    compare_out: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            filter: None,
            save_baseline: None,
            compare_baseline: None,
            baseline_dir: PathBuf::from("target").join("criterion-shim"),
            regress_fail_pct: None,
            compare_out: None,
        }
    }
}

impl Criterion {
    /// Applies `cargo bench` argv: most flags are ignored,
    /// `--save-baseline NAME` / `--baseline NAME` (space- or `=`-joined,
    /// as upstream's clap accepts both) arm baseline storage and
    /// comparison, `--baseline-dir DIR` / `--regress-fail-pct P` /
    /// `--compare-out FILE` configure the shim's regression gate, and the
    /// first positional argument becomes a substring filter on benchmark
    /// names.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self.apply_args(std::env::args().skip(1))
    }

    fn apply_args(mut self, args: impl IntoIterator<Item = String>) -> Self {
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--save-baseline" => self.save_baseline = args.next(),
                "--baseline" => self.compare_baseline = args.next(),
                "--baseline-dir" => {
                    if let Some(dir) = args.next() {
                        self.baseline_dir = PathBuf::from(dir);
                    }
                }
                "--regress-fail-pct" => {
                    self.regress_fail_pct = args.next().as_deref().and_then(parse_fail_pct);
                }
                "--compare-out" => self.compare_out = args.next().map(PathBuf::from),
                "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {
                    if let Some(name) = flag.strip_prefix("--save-baseline=") {
                        self.save_baseline = Some(name.to_string());
                    } else if let Some(name) = flag.strip_prefix("--baseline-dir=") {
                        self.baseline_dir = PathBuf::from(name);
                    } else if let Some(name) = flag.strip_prefix("--baseline=") {
                        self.compare_baseline = Some(name.to_string());
                    } else if let Some(pct) = flag.strip_prefix("--regress-fail-pct=") {
                        self.regress_fail_pct = parse_fail_pct(pct);
                    } else if let Some(path) = flag.strip_prefix("--compare-out=") {
                        self.compare_out = Some(PathBuf::from(path));
                    }
                }
                positional => self.filter = Some(positional.to_string()),
            }
        }
        self
    }

    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides where baseline JSON records are stored (defaults to
    /// `target/criterion-shim/`).
    pub fn baseline_dir(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.baseline_dir = dir.into();
        self
    }

    /// Arms saving each benchmark's statistics under the given baseline
    /// name (the programmatic equivalent of `--save-baseline`).
    pub fn save_baseline(&mut self, name: impl Into<String>) -> &mut Self {
        self.save_baseline = Some(name.into());
        self
    }

    /// Arms comparison against a previously saved baseline (the
    /// programmatic equivalent of `--baseline`).
    pub fn retain_baseline(&mut self, name: impl Into<String>) -> &mut Self {
        self.compare_baseline = Some(name.into());
        self
    }

    /// Arms the regression gate (the programmatic equivalent of
    /// `--regress-fail-pct`): [`finalize_comparisons`] returns nonzero if
    /// any compared benchmark's mean regressed more than `pct` percent.
    pub fn regress_fail_pct(&mut self, pct: f64) -> &mut Self {
        self.regress_fail_pct = (pct.is_finite() && pct >= 0.0).then_some(pct);
        self
    }

    /// Sets where [`finalize_comparisons`] writes the comparison JSON
    /// document (the programmatic equivalent of `--compare-out`).
    pub fn compare_out(&mut self, path: impl Into<PathBuf>) -> &mut Self {
        self.compare_out = Some(path.into());
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(name, &b.samples);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let stats = SampleStats::from_samples(samples);
        let rejected = if stats.rejected > 0 {
            format!(", {} outliers rejected", stats.rejected)
        } else {
            String::new()
        };
        println!(
            "{name:<44} time: [{} {} {}]  ({} samples{rejected})",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.max_ns),
            samples.len(),
        );
        if let Some(baseline) = &self.compare_baseline {
            let mut log = COMPARE_LOG.lock().expect("comparison log poisoned");
            log.absorb_config(self);
            match self.load_baseline(name, baseline) {
                Some(old) if old.mean_ns > 0.0 => {
                    let change = (stats.mean_ns - old.mean_ns) / old.mean_ns * 100.0;
                    println!(
                        "{:<44} change: [{change:+.2}%] vs baseline '{baseline}' \
                         (mean {} -> {})",
                        "",
                        fmt_ns(old.mean_ns),
                        fmt_ns(stats.mean_ns),
                    );
                    log.comparisons.push(ComparisonRecord {
                        bench: name.to_string(),
                        baseline: baseline.clone(),
                        old_mean_ns: old.mean_ns,
                        new_mean_ns: stats.mean_ns,
                        change_pct: change,
                    });
                }
                _ => {
                    println!(
                        "{:<44} no saved baseline '{baseline}' for this benchmark",
                        ""
                    );
                    log.missing.push(name.to_string());
                }
            }
        }
        if let Some(baseline) = &self.save_baseline {
            if let Err(e) = self.store_baseline(name, baseline, &stats) {
                eprintln!("warning: could not save baseline '{baseline}' for {name}: {e}");
            }
        }
    }

    fn baseline_path(&self, bench: &str, baseline: &str) -> PathBuf {
        // Sanitizing alone would collide names differing only in
        // punctuation ("a/b" vs "a b"); an FNV-1a tag of the raw pair
        // keeps every (bench, baseline) on its own file.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bench.bytes().chain([0u8]).chain(baseline.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.baseline_dir.join(format!(
            "{}.{}.{:08x}.json",
            sanitize(bench),
            sanitize(baseline),
            h as u32,
        ))
    }

    fn load_baseline(&self, bench: &str, baseline: &str) -> Option<BaselineRecord> {
        let text = std::fs::read_to_string(self.baseline_path(bench, baseline)).ok()?;
        serde_json::from_str(&text).ok()
    }

    fn store_baseline(
        &self,
        bench: &str,
        baseline: &str,
        stats: &SampleStats,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.baseline_dir)?;
        let record = BaselineRecord {
            bench: bench.to_string(),
            baseline: baseline.to_string(),
            mean_ns: stats.mean_ns,
            median_ns: stats.median_ns,
            min_ns: stats.min_ns,
            max_ns: stats.max_ns,
            samples: stats.samples as u64,
            rejected: stats.rejected as u64,
        };
        let json = serde_json::to_string_pretty(&record)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(self.baseline_path(bench, baseline), json)
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// A persisted benchmark baseline (one JSON file per benchmark+baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRecord {
    /// Benchmark name.
    pub bench: String,
    /// Baseline name it was saved under.
    pub baseline: String,
    /// Outlier-filtered mean, ns.
    pub mean_ns: f64,
    /// Outlier-filtered median, ns.
    pub median_ns: f64,
    /// Outlier-filtered minimum, ns.
    pub min_ns: f64,
    /// Outlier-filtered maximum, ns.
    pub max_ns: f64,
    /// Measured sample count (before rejection).
    pub samples: u64,
    /// Samples rejected by the IQR fence.
    pub rejected: u64,
}

fn parse_fail_pct(value: &str) -> Option<f64> {
    match value.parse::<f64>() {
        Ok(pct) if pct.is_finite() && pct >= 0.0 => Some(pct),
        _ => {
            eprintln!("warning: ignoring invalid --regress-fail-pct value '{value}'");
            None
        }
    }
}

/// One benchmark's baseline comparison, as recorded in the
/// `--compare-out` JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRecord {
    /// Benchmark name.
    pub bench: String,
    /// Baseline it was compared against.
    pub baseline: String,
    /// The baseline's outlier-filtered mean, ns.
    pub old_mean_ns: f64,
    /// This run's outlier-filtered mean, ns.
    pub new_mean_ns: f64,
    /// Relative mean change, percent (positive = slower than baseline).
    pub change_pct: f64,
}

/// The `--compare-out` JSON document: every comparison made by one bench
/// process, plus the regression-gate verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// The baseline name compared against.
    pub baseline: String,
    /// The armed gate threshold, percent (absent when not gating).
    pub regress_fail_pct: Option<f64>,
    /// Every benchmark that had a saved baseline record.
    pub comparisons: Vec<ComparisonRecord>,
    /// Benchmarks that ran but had no saved baseline (reported, never
    /// failed — a freshly added benchmark must not break the gate).
    pub missing: Vec<String>,
    /// Benchmarks whose mean regressed past the threshold.
    pub failed: Vec<String>,
}

/// Process-global accumulator behind [`finalize_comparisons`]. Benchmark
/// groups each build their own [`Criterion`] from argv, so per-instance
/// state cannot gate over the whole binary; every comparing `report()`
/// appends here instead.
#[derive(Debug, Default)]
struct CompareLog {
    baseline: Option<String>,
    fail_pct: Option<f64>,
    out: Option<PathBuf>,
    comparisons: Vec<ComparisonRecord>,
    missing: Vec<String>,
}

static COMPARE_LOG: Mutex<CompareLog> = Mutex::new(CompareLog::new());

impl CompareLog {
    const fn new() -> Self {
        CompareLog {
            baseline: None,
            fail_pct: None,
            out: None,
            comparisons: Vec::new(),
            missing: Vec::new(),
        }
    }

    fn absorb_config(&mut self, c: &Criterion) {
        if let Some(b) = &c.compare_baseline {
            self.baseline = Some(b.clone());
        }
        if let Some(pct) = c.regress_fail_pct {
            self.fail_pct = Some(pct);
        }
        if let Some(out) = &c.compare_out {
            self.out = Some(out.clone());
        }
    }

    fn build_report(&self) -> Option<ComparisonReport> {
        let baseline = self.baseline.clone()?;
        let failed = match self.fail_pct {
            Some(pct) => self
                .comparisons
                .iter()
                .filter(|c| c.change_pct > pct)
                .map(|c| c.bench.clone())
                .collect(),
            None => Vec::new(),
        };
        Some(ComparisonReport {
            baseline,
            regress_fail_pct: self.fail_pct,
            comparisons: self.comparisons.clone(),
            missing: self.missing.clone(),
            failed,
        })
    }
}

/// Drains the process-global comparison log accumulated by `--baseline`
/// runs: writes the `--compare-out` JSON document (if requested), prints
/// a gate summary, and returns the process exit code — `0` when clean or
/// not comparing, `1` when any benchmark's mean regressed more than
/// `--regress-fail-pct` percent. [`criterion_main!`] calls this after
/// every group has run and exits nonzero on failure.
pub fn finalize_comparisons() -> i32 {
    let log = std::mem::take(&mut *COMPARE_LOG.lock().expect("comparison log poisoned"));
    write_and_gate(&log)
}

fn write_and_gate(log: &CompareLog) -> i32 {
    let Some(report) = log.build_report() else {
        return 0;
    };
    if let Some(out) = &log.out {
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("warning: could not create {}: {e}", parent.display());
                }
            }
        }
        match serde_json::to_string_pretty(&report) {
            Ok(json) => match std::fs::write(out, json) {
                Ok(()) => println!("comparison report written to {}", out.display()),
                Err(e) => eprintln!(
                    "warning: could not write comparison report to {}: {e}",
                    out.display()
                ),
            },
            Err(e) => eprintln!("warning: could not serialize comparison report: {e}"),
        }
    }
    if !report.missing.is_empty() {
        println!(
            "note: no saved baseline '{}' for: {}",
            report.baseline,
            report.missing.join(", ")
        );
    }
    if report.failed.is_empty() {
        if let Some(pct) = report.regress_fail_pct {
            println!(
                "regression gate: all {} compared benchmark(s) within {pct}% of baseline '{}'",
                report.comparisons.len(),
                report.baseline
            );
        }
        0
    } else {
        let pct = report.regress_fail_pct.unwrap_or(0.0);
        eprintln!(
            "regression gate FAILED: {} benchmark(s) regressed more than {pct}% \
             vs baseline '{}':",
            report.failed.len(),
            report.baseline
        );
        for c in report
            .comparisons
            .iter()
            .filter(|c| report.failed.contains(&c.bench))
        {
            eprintln!(
                "  {}: {} -> {} ({:+.2}%)",
                c.bench,
                fmt_ns(c.old_mean_ns),
                fmt_ns(c.new_mean_ns),
                c.change_pct
            );
        }
        1
    }
}

/// Summary statistics over one benchmark's samples, after IQR outlier
/// rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Filtered mean, ns.
    pub mean_ns: f64,
    /// Filtered median, ns.
    pub median_ns: f64,
    /// Filtered minimum, ns.
    pub min_ns: f64,
    /// Filtered maximum, ns.
    pub max_ns: f64,
    /// Measured sample count (before rejection).
    pub samples: usize,
    /// Samples rejected by the IQR fence.
    pub rejected: usize,
}

impl SampleStats {
    /// Computes filtered statistics from raw duration samples.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    pub fn from_samples(samples: &[Duration]) -> SampleStats {
        assert!(!samples.is_empty(), "no samples");
        let ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        let (kept, rejected) = iqr_filter(&ns);
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        let mut sorted = kept.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        SampleStats {
            mean_ns: mean,
            median_ns: quantile(&sorted, 0.5),
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            samples: samples.len(),
            rejected,
        }
    }
}

/// Splits samples into those inside Tukey's fences
/// `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` and a rejected-count. Fewer than four
/// samples give no rejection (quartiles are meaningless).
pub fn iqr_filter(ns: &[f64]) -> (Vec<f64>, usize) {
    if ns.len() < 4 {
        return (ns.to_vec(), 0);
    }
    let mut sorted = ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q1 = quantile(&sorted, 0.25);
    let q3 = quantile(&sorted, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = ns.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
    let rejected = ns.len() - kept.len();
    if kept.is_empty() {
        // Degenerate distributions must never reject everything.
        return (ns.to_vec(), 0);
    }
    (kept, rejected)
}

/// Linear-interpolated quantile over an already sorted slice.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size(n);
        self
    }

    /// Runs one benchmark within the group (`group/name` reporting).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f` over warmup plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call keeps cold-start effects out of the samples while
        // staying affordable for expensive end-to-end benchmarks.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measures `routine` over inputs produced by `setup`, excluding setup
    /// time from the samples.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` from group functions, mirroring criterion's
/// macro of the same name. After every group has run, the shim's
/// regression gate ([`finalize_comparisons`]) writes the `--compare-out`
/// report and exits nonzero if any benchmark regressed past
/// `--regress-fail-pct`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let gate = $crate::finalize_comparisons();
            if gate != 0 {
                std::process::exit(gate);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0u32;
        c.bench_function("shim/smoke", |b| b.iter(|| calls += 1));
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_names_and_filter_applies() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            ..Criterion::default()
        };
        c.sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut ran_wanted = false;
        let mut ran_other = false;
        group.bench_function("wanted", |b| b.iter(|| ran_wanted = true));
        group.bench_function("skipped", |b| b.iter(|| ran_other = true));
        group.finish();
        assert!(ran_wanted);
        assert!(!ran_other);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut setups = 0u32;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| setups += 1, |_| (), BatchSize::SmallInput)
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn iqr_rejects_the_stray_sample() {
        let mut ns: Vec<f64> = (0..20).map(|i| 100.0 + f64::from(i)).collect();
        ns[13] = 5_000.0; // the scheduler hiccup
        let (kept, rejected) = iqr_filter(&ns);
        assert_eq!(rejected, 1);
        assert!(kept.iter().all(|&x| x < 1_000.0));

        // Tight distributions lose nothing.
        let tight: Vec<f64> = (0..20).map(|i| 100.0 + f64::from(i)).collect();
        let (kept, rejected) = iqr_filter(&tight);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 20);

        // Tiny sample sets are never filtered.
        let (kept, rejected) = iqr_filter(&[1.0, 1e9]);
        assert_eq!((kept.len(), rejected), (2, 0));
    }

    #[test]
    fn stats_reflect_filtering() {
        let mut samples = vec![Duration::from_nanos(100); 15];
        samples.push(Duration::from_micros(500));
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.samples, 16);
        assert_eq!(stats.rejected, 1);
        assert!((stats.mean_ns - 100.0).abs() < 1e-9);
        assert!((stats.max_ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_save_and_compare_round_trip() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        let mut c = Criterion::default();
        c.sample_size(3).baseline_dir(&dir).save_baseline("main");
        c.bench_function("shim/baseline", |b| b.iter(|| std::hint::black_box(3 * 7)));
        let saved = c.load_baseline("shim/baseline", "main").expect("saved");
        assert_eq!(saved.bench, "shim/baseline");
        assert_eq!(saved.baseline, "main");
        assert!(saved.mean_ns >= 0.0);
        assert_eq!(saved.samples, 3);

        // A comparing run reads the record back (and re-reports cleanly).
        let mut c2 = Criterion::default();
        c2.sample_size(3).baseline_dir(&dir).retain_baseline("main");
        c2.bench_function("shim/baseline", |b| b.iter(|| std::hint::black_box(3 * 7)));
        assert!(c2.load_baseline("shim/baseline", "main").is_some());
        assert!(c2.load_baseline("shim/baseline", "other").is_none());

        std::fs::remove_dir_all(&dir).ok();
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn argv_parsing_covers_the_gate_flags() {
        // Space-joined forms.
        let c = Criterion::default().apply_args(argv(&[
            "--bench",
            "--baseline",
            "committed",
            "--baseline-dir",
            "some/dir",
            "--regress-fail-pct",
            "10",
            "--compare-out",
            "out/cmp.json",
            "view",
        ]));
        assert_eq!(c.compare_baseline.as_deref(), Some("committed"));
        assert_eq!(c.baseline_dir, PathBuf::from("some/dir"));
        assert_eq!(c.regress_fail_pct, Some(10.0));
        assert_eq!(c.compare_out, Some(PathBuf::from("out/cmp.json")));
        assert_eq!(c.filter.as_deref(), Some("view"));

        // `=`-joined forms parse identically.
        let c = Criterion::default().apply_args(argv(&[
            "--baseline=committed",
            "--baseline-dir=some/dir",
            "--regress-fail-pct=7.5",
            "--compare-out=out/cmp.json",
        ]));
        assert_eq!(c.compare_baseline.as_deref(), Some("committed"));
        assert_eq!(c.baseline_dir, PathBuf::from("some/dir"));
        assert_eq!(c.regress_fail_pct, Some(7.5));
        assert_eq!(c.compare_out, Some(PathBuf::from("out/cmp.json")));

        // Invalid or negative thresholds are ignored, not a panic.
        let c = Criterion::default().apply_args(argv(&["--regress-fail-pct", "banana"]));
        assert_eq!(c.regress_fail_pct, None);
        let c = Criterion::default().apply_args(argv(&["--regress-fail-pct=-3"]));
        assert_eq!(c.regress_fail_pct, None);
    }

    fn cmp(bench: &str, change_pct: f64) -> ComparisonRecord {
        ComparisonRecord {
            bench: bench.to_string(),
            baseline: "committed".to_string(),
            old_mean_ns: 100.0,
            new_mean_ns: 100.0 * (1.0 + change_pct / 100.0),
            change_pct,
        }
    }

    #[test]
    fn gate_fails_only_past_the_threshold() {
        let log = CompareLog {
            baseline: Some("committed".to_string()),
            fail_pct: Some(10.0),
            out: None,
            comparisons: vec![cmp("a/fast", -5.0), cmp("b/flat", 9.9), cmp("c/slow", 12.0)],
            missing: vec!["d/new".to_string()],
        };
        let report = log.build_report().expect("comparing");
        assert_eq!(report.failed, vec!["c/slow".to_string()]);
        // Missing baselines are reported but never fail the gate.
        assert_eq!(report.missing, vec!["d/new".to_string()]);
        assert_eq!(write_and_gate(&log), 1);

        // Without an armed threshold nothing fails, even big regressions.
        let ungated = CompareLog {
            fail_pct: None,
            ..log
        };
        assert!(ungated.build_report().expect("comparing").failed.is_empty());
        assert_eq!(write_and_gate(&ungated), 0);

        // Not comparing at all is a clean exit.
        assert_eq!(write_and_gate(&CompareLog::new()), 0);
    }

    #[test]
    fn compare_out_json_round_trips_through_the_gate() {
        let out = std::env::temp_dir().join(format!(
            "criterion-shim-compare-{}/report.json",
            std::process::id()
        ));
        let log = CompareLog {
            baseline: Some("committed".to_string()),
            fail_pct: Some(10.0),
            out: Some(out.clone()),
            comparisons: vec![cmp("a/fast", -5.0), cmp("c/slow", 12.0)],
            missing: vec![],
        };
        assert_eq!(write_and_gate(&log), 1);
        let text = std::fs::read_to_string(&out).expect("report written");
        let parsed: ComparisonReport = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(Some(parsed.clone()), log.build_report());
        assert_eq!(parsed.regress_fail_pct, Some(10.0));
        assert_eq!(parsed.comparisons.len(), 2);
        assert_eq!(parsed.failed, vec!["c/slow".to_string()]);
        std::fs::remove_dir_all(out.parent().unwrap()).ok();
    }

    #[test]
    fn comparing_reports_feed_the_global_log() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-log-{}", std::process::id()));
        // Unique names: the log is process-global and other tests share it.
        let bench = format!("shim/global-log-{}", std::process::id());
        let mut c = Criterion::default();
        c.sample_size(3).baseline_dir(&dir).save_baseline("gate");
        c.bench_function(&bench, |b| b.iter(|| std::hint::black_box(6 * 7)));

        let mut c2 = Criterion::default();
        c2.sample_size(3)
            .baseline_dir(&dir)
            .retain_baseline("gate")
            .regress_fail_pct(1e6)
            .compare_out(dir.join("cmp.json"));
        c2.bench_function(&bench, |b| b.iter(|| std::hint::black_box(6 * 7)));
        c2.bench_function(&format!("{bench}-unsaved"), |b| {
            b.iter(|| std::hint::black_box(6 * 7))
        });

        // Inspect without draining: finalize_comparisons would race other
        // tests' entries in this shared log.
        let log = COMPARE_LOG.lock().expect("comparison log");
        assert_eq!(log.baseline.as_deref(), Some("gate"));
        assert_eq!(log.fail_pct, Some(1e6));
        assert_eq!(log.out, Some(dir.join("cmp.json")));
        let rec = log
            .comparisons
            .iter()
            .find(|r| r.bench == bench)
            .expect("compared bench recorded");
        assert!(rec.old_mean_ns > 0.0 && rec.new_mean_ns > 0.0);
        assert!(rec.change_pct.is_finite());
        assert!(log.missing.iter().any(|m| m == &format!("{bench}-unsaved")));
        drop(log);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_paths_are_sanitized_and_collision_free() {
        let c = Criterion::default();
        let p = c.baseline_path("group/bench name", "my base");
        let file = p.file_name().unwrap().to_string_lossy().into_owned();
        assert!(file.starts_with("group-bench-name.my-base."));
        assert!(file.ends_with(".json"));
        // Names differing only in punctuation must not share a file.
        assert_ne!(
            c.baseline_path("group/mean aos", "main"),
            c.baseline_path("group mean-aos", "main"),
        );
        // The path is stable for the same pair.
        assert_eq!(
            c.baseline_path("group/bench name", "my base"),
            c.baseline_path("group/bench name", "my base"),
        );
    }
}
