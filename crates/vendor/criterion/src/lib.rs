//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! surface the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! warmup-then-sample wall-clock harness.
//!
//! Fidelity features mirroring upstream criterion's statistics:
//!
//! * **IQR outlier rejection** — samples outside
//!   `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are excluded from the reported
//!   mean/min/max (the rejected count is printed), so a stray scheduler
//!   hiccup no longer smears the summary;
//! * **baseline comparison** — `--save-baseline NAME` persists each
//!   benchmark's filtered statistics as JSON under
//!   `target/criterion-shim/`, and `--baseline NAME` prints the relative
//!   mean change against the saved record, upstream-style.
//!
//! Like upstream, `--bench`/`--test` style argv from `cargo bench` is
//! accepted and a positional filter restricts which benchmarks run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API parity; the shim treats
/// every batch size identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    save_baseline: Option<String>,
    compare_baseline: Option<String>,
    baseline_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            filter: None,
            save_baseline: None,
            compare_baseline: None,
            baseline_dir: PathBuf::from("target").join("criterion-shim"),
        }
    }
}

impl Criterion {
    /// Applies `cargo bench` argv: most flags are ignored,
    /// `--save-baseline NAME` / `--baseline NAME` (space- or `=`-joined,
    /// as upstream's clap accepts both) arm baseline storage and
    /// comparison, and the first positional argument becomes a substring
    /// filter on benchmark names.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--save-baseline" => self.save_baseline = args.next(),
                "--baseline" => self.compare_baseline = args.next(),
                "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {
                    if let Some(name) = flag.strip_prefix("--save-baseline=") {
                        self.save_baseline = Some(name.to_string());
                    } else if let Some(name) = flag.strip_prefix("--baseline=") {
                        self.compare_baseline = Some(name.to_string());
                    }
                }
                positional => self.filter = Some(positional.to_string()),
            }
        }
        self
    }

    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides where baseline JSON records are stored (defaults to
    /// `target/criterion-shim/`).
    pub fn baseline_dir(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.baseline_dir = dir.into();
        self
    }

    /// Arms saving each benchmark's statistics under the given baseline
    /// name (the programmatic equivalent of `--save-baseline`).
    pub fn save_baseline(&mut self, name: impl Into<String>) -> &mut Self {
        self.save_baseline = Some(name.into());
        self
    }

    /// Arms comparison against a previously saved baseline (the
    /// programmatic equivalent of `--baseline`).
    pub fn retain_baseline(&mut self, name: impl Into<String>) -> &mut Self {
        self.compare_baseline = Some(name.into());
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(name, &b.samples);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let stats = SampleStats::from_samples(samples);
        let rejected = if stats.rejected > 0 {
            format!(", {} outliers rejected", stats.rejected)
        } else {
            String::new()
        };
        println!(
            "{name:<44} time: [{} {} {}]  ({} samples{rejected})",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.max_ns),
            samples.len(),
        );
        if let Some(baseline) = &self.compare_baseline {
            match self.load_baseline(name, baseline) {
                Some(old) if old.mean_ns > 0.0 => {
                    let change = (stats.mean_ns - old.mean_ns) / old.mean_ns * 100.0;
                    println!(
                        "{:<44} change: [{change:+.2}%] vs baseline '{baseline}' \
                         (mean {} -> {})",
                        "",
                        fmt_ns(old.mean_ns),
                        fmt_ns(stats.mean_ns),
                    );
                }
                _ => println!(
                    "{:<44} no saved baseline '{baseline}' for this benchmark",
                    ""
                ),
            }
        }
        if let Some(baseline) = &self.save_baseline {
            if let Err(e) = self.store_baseline(name, baseline, &stats) {
                eprintln!("warning: could not save baseline '{baseline}' for {name}: {e}");
            }
        }
    }

    fn baseline_path(&self, bench: &str, baseline: &str) -> PathBuf {
        // Sanitizing alone would collide names differing only in
        // punctuation ("a/b" vs "a b"); an FNV-1a tag of the raw pair
        // keeps every (bench, baseline) on its own file.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bench.bytes().chain([0u8]).chain(baseline.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.baseline_dir.join(format!(
            "{}.{}.{:08x}.json",
            sanitize(bench),
            sanitize(baseline),
            h as u32,
        ))
    }

    fn load_baseline(&self, bench: &str, baseline: &str) -> Option<BaselineRecord> {
        let text = std::fs::read_to_string(self.baseline_path(bench, baseline)).ok()?;
        serde_json::from_str(&text).ok()
    }

    fn store_baseline(
        &self,
        bench: &str,
        baseline: &str,
        stats: &SampleStats,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.baseline_dir)?;
        let record = BaselineRecord {
            bench: bench.to_string(),
            baseline: baseline.to_string(),
            mean_ns: stats.mean_ns,
            median_ns: stats.median_ns,
            min_ns: stats.min_ns,
            max_ns: stats.max_ns,
            samples: stats.samples as u64,
            rejected: stats.rejected as u64,
        };
        let json = serde_json::to_string_pretty(&record)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(self.baseline_path(bench, baseline), json)
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// A persisted benchmark baseline (one JSON file per benchmark+baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRecord {
    /// Benchmark name.
    pub bench: String,
    /// Baseline name it was saved under.
    pub baseline: String,
    /// Outlier-filtered mean, ns.
    pub mean_ns: f64,
    /// Outlier-filtered median, ns.
    pub median_ns: f64,
    /// Outlier-filtered minimum, ns.
    pub min_ns: f64,
    /// Outlier-filtered maximum, ns.
    pub max_ns: f64,
    /// Measured sample count (before rejection).
    pub samples: u64,
    /// Samples rejected by the IQR fence.
    pub rejected: u64,
}

/// Summary statistics over one benchmark's samples, after IQR outlier
/// rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Filtered mean, ns.
    pub mean_ns: f64,
    /// Filtered median, ns.
    pub median_ns: f64,
    /// Filtered minimum, ns.
    pub min_ns: f64,
    /// Filtered maximum, ns.
    pub max_ns: f64,
    /// Measured sample count (before rejection).
    pub samples: usize,
    /// Samples rejected by the IQR fence.
    pub rejected: usize,
}

impl SampleStats {
    /// Computes filtered statistics from raw duration samples.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    pub fn from_samples(samples: &[Duration]) -> SampleStats {
        assert!(!samples.is_empty(), "no samples");
        let ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        let (kept, rejected) = iqr_filter(&ns);
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        let mut sorted = kept.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        SampleStats {
            mean_ns: mean,
            median_ns: quantile(&sorted, 0.5),
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            samples: samples.len(),
            rejected,
        }
    }
}

/// Splits samples into those inside Tukey's fences
/// `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` and a rejected-count. Fewer than four
/// samples give no rejection (quartiles are meaningless).
pub fn iqr_filter(ns: &[f64]) -> (Vec<f64>, usize) {
    if ns.len() < 4 {
        return (ns.to_vec(), 0);
    }
    let mut sorted = ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q1 = quantile(&sorted, 0.25);
    let q3 = quantile(&sorted, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = ns.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
    let rejected = ns.len() - kept.len();
    if kept.is_empty() {
        // Degenerate distributions must never reject everything.
        return (ns.to_vec(), 0);
    }
    (kept, rejected)
}

/// Linear-interpolated quantile over an already sorted slice.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size(n);
        self
    }

    /// Runs one benchmark within the group (`group/name` reporting).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f` over warmup plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call keeps cold-start effects out of the samples while
        // staying affordable for expensive end-to-end benchmarks.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measures `routine` over inputs produced by `setup`, excluding setup
    /// time from the samples.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` from group functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0u32;
        c.bench_function("shim/smoke", |b| b.iter(|| calls += 1));
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_names_and_filter_applies() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            ..Criterion::default()
        };
        c.sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut ran_wanted = false;
        let mut ran_other = false;
        group.bench_function("wanted", |b| b.iter(|| ran_wanted = true));
        group.bench_function("skipped", |b| b.iter(|| ran_other = true));
        group.finish();
        assert!(ran_wanted);
        assert!(!ran_other);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut setups = 0u32;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| setups += 1, |_| (), BatchSize::SmallInput)
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn iqr_rejects_the_stray_sample() {
        let mut ns: Vec<f64> = (0..20).map(|i| 100.0 + f64::from(i)).collect();
        ns[13] = 5_000.0; // the scheduler hiccup
        let (kept, rejected) = iqr_filter(&ns);
        assert_eq!(rejected, 1);
        assert!(kept.iter().all(|&x| x < 1_000.0));

        // Tight distributions lose nothing.
        let tight: Vec<f64> = (0..20).map(|i| 100.0 + f64::from(i)).collect();
        let (kept, rejected) = iqr_filter(&tight);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 20);

        // Tiny sample sets are never filtered.
        let (kept, rejected) = iqr_filter(&[1.0, 1e9]);
        assert_eq!((kept.len(), rejected), (2, 0));
    }

    #[test]
    fn stats_reflect_filtering() {
        let mut samples = vec![Duration::from_nanos(100); 15];
        samples.push(Duration::from_micros(500));
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.samples, 16);
        assert_eq!(stats.rejected, 1);
        assert!((stats.mean_ns - 100.0).abs() < 1e-9);
        assert!((stats.max_ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_save_and_compare_round_trip() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        let mut c = Criterion::default();
        c.sample_size(3).baseline_dir(&dir).save_baseline("main");
        c.bench_function("shim/baseline", |b| b.iter(|| std::hint::black_box(3 * 7)));
        let saved = c.load_baseline("shim/baseline", "main").expect("saved");
        assert_eq!(saved.bench, "shim/baseline");
        assert_eq!(saved.baseline, "main");
        assert!(saved.mean_ns >= 0.0);
        assert_eq!(saved.samples, 3);

        // A comparing run reads the record back (and re-reports cleanly).
        let mut c2 = Criterion::default();
        c2.sample_size(3).baseline_dir(&dir).retain_baseline("main");
        c2.bench_function("shim/baseline", |b| b.iter(|| std::hint::black_box(3 * 7)));
        assert!(c2.load_baseline("shim/baseline", "main").is_some());
        assert!(c2.load_baseline("shim/baseline", "other").is_none());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_paths_are_sanitized_and_collision_free() {
        let c = Criterion::default();
        let p = c.baseline_path("group/bench name", "my base");
        let file = p.file_name().unwrap().to_string_lossy().into_owned();
        assert!(file.starts_with("group-bench-name.my-base."));
        assert!(file.ends_with(".json"));
        // Names differing only in punctuation must not share a file.
        assert_ne!(
            c.baseline_path("group/mean aos", "main"),
            c.baseline_path("group mean-aos", "main"),
        );
        // The path is stable for the same pair.
        assert_eq!(
            c.baseline_path("group/bench name", "my base"),
            c.baseline_path("group/bench name", "my base"),
        );
    }
}
