//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! surface the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! warmup-then-sample wall-clock harness. It reports mean/min/max per
//! benchmark to stdout; it does not implement criterion's statistics,
//! plotting, or baseline storage.
//!
//! Like upstream, `--bench`/`--test` style argv from `cargo bench` is
//! accepted and a positional filter restricts which benchmarks run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API parity; the shim treats
/// every batch size identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies `cargo bench` argv: flags are ignored, the first positional
    /// argument becomes a substring filter on benchmark names.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                positional => self.filter = Some(positional.to_string()),
            }
        }
        self
    }

    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size(n);
        self
    }

    /// Runs one benchmark within the group (`group/name` reporting).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f` over warmup plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call keeps cold-start effects out of the samples while
        // staying affordable for expensive end-to-end benchmarks.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measures `routine` over inputs produced by `setup`, excluding setup
    /// time from the samples.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{name:<44} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` from group functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0u32;
        c.bench_function("shim/smoke", |b| b.iter(|| calls += 1));
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_names_and_filter_applies() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("wanted".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran_wanted = false;
        let mut ran_other = false;
        group.bench_function("wanted", |b| b.iter(|| ran_wanted = true));
        group.bench_function("skipped", |b| b.iter(|| ran_other = true));
        group.finish();
        assert!(ran_wanted);
        assert!(!ran_other);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut setups = 0u32;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| setups += 1, |_| (), BatchSize::SmallInput)
        });
        assert_eq!(setups, 3);
    }
}
