//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so these derives are
//! hand-rolled on the bare `proc_macro` API (no `syn`/`quote`). They cover
//! exactly the shapes this workspace derives on — non-generic structs with
//! named fields, tuple structs, and enums with unit/tuple/struct variants —
//! and generate impls of the vendored `serde` shim's `Value`-based
//! `Serialize`/`Deserialize` traits, using upstream `serde_json`'s
//! representation (field-ordered maps, transparent newtypes,
//! externally-tagged enums).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (Value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the shim `serde::Deserialize` (Value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ----------------------------------------------------------------------
// Parsed shape of the deriving item
// ----------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Struct with named fields, in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields (N == 1 is a transparent newtype).
    Tuple(usize),
    /// Enum with variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ----------------------------------------------------------------------
// Token-stream parsing (attribute/visibility skipping, field extraction)
// ----------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic type `{name}`");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => panic!("the vendored serde derive does not support unit struct `{name}`"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };
    Item { name, kind }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(toks.get(*i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
    {
        *i += 2;
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Consumes tokens through the end of a type, stopping at a comma that sits
/// outside every `<...>` nesting level (group tokens are opaque, so only
/// bare angle brackets need depth tracking).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        fields.push(expect_ident(&toks, &mut i));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&toks, &mut i);
        // Either the separating comma or the end of the field list.
        if i < toks.len() {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break; // trailing comma
        }
        count += 1;
        skip_type(&toks, &mut i);
        if i < toks.len() {
            i += 1; // the comma
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ----------------------------------------------------------------------
// Code generation (string-built, parsed back into a TokenStream)
// ----------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let tag = format!("::std::string::String::from(\"{vname}\")");
    match &v.kind {
        VariantKind::Unit => {
            format!("{enum_name}::{vname} => ::serde::Value::Str({tag}),")
        }
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(x0) => ::serde::Value::Map(::std::vec![({tag}, \
             ::serde::Serialize::to_value(x0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec![({tag}, \
                 ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![({tag}, \
                 ::serde::Value::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_field(entries, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let entries = v.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", \"{name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", \"{name}\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                         \"expected {n} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> \
                ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unknown = format!(
        "other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
         \"unknown variant `{{other}}` of {name}\"))),"
    );

    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();

    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| de_variant_arm(name, v))
        .collect();

    format!(
        "match v {{\n\
            ::serde::Value::Str(tag) => match tag.as_str() {{ {unit} {unknown} }},\n\
            ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                let (tag, inner) = &entries[0];\n\
                match tag.as_str() {{ {data} {unknown} }}\n\
            }}\n\
            other => ::std::result::Result::Err(::serde::DeError::expected(\n\
                \"string or single-entry map\", \"{name}\", other)),\n\
         }}",
        unit = unit_arms.join(" "),
        data = data_arms.join(" "),
    )
}

fn de_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let ctx = format!("{name}::{vname}");
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled in the Str arm"),
        VariantKind::Tuple(1) => format!(
            "\"{vname}\" => ::std::result::Result::Ok(\
             {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
        ),
        VariantKind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                    let items = inner.as_seq().ok_or_else(|| \
                        ::serde::DeError::expected(\"sequence\", \"{ctx}\", inner))?;\n\
                    if items.len() != {n} {{\n\
                        return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                            \"expected {n} elements for {ctx}, found {{}}\", items.len())));\n\
                    }}\n\
                    ::std::result::Result::Ok({name}::{vname}({}))\n\
                }}",
                elems.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_field(entries, \"{f}\", \"{ctx}\")?)?"
                    )
                })
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                    let entries = inner.as_map().ok_or_else(|| \
                        ::serde::DeError::expected(\"map\", \"{ctx}\", inner))?;\n\
                    ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                }}",
                inits.join(", ")
            )
        }
    }
}
