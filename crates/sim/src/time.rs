//! Simulation time primitives.
//!
//! All simulator state advances on a single global timeline measured in
//! nanoseconds since the simulation epoch ([`SimTime`]). The *observable*
//! clocks — the host CPU wall clock ([`CpuTime`]) and the GPU timestamp
//! counter ([`GpuTicks`]) — are derived views of this timeline produced by
//! [`crate::clock`]. Methodology code (the `fingrav-core` crate) must never
//! touch `SimTime`; it only ever sees `CpuTime` and `GpuTicks`, exactly like
//! code running on real hardware.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Absolute simulation time in nanoseconds since the simulation epoch.
///
/// This is the simulator's private ground-truth timeline. It is totally
/// ordered and never wraps in practice (2^64 ns ≈ 584 years).
///
/// # Examples
///
/// ```
/// use fingrav_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(250);
/// assert_eq!(t.as_nanos(), 250_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time in nanoseconds.
///
/// # Examples
///
/// ```
/// use fingrav_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(1);
/// assert_eq!(d.as_micros_f64(), 1000.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds since the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy; fine for power math).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// `self - d`, saturating at [`SimTime::ZERO`].
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "mul_f64: negative factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 * 1e-6)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 * 1e-6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 * 1e-3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// CPU wall-clock time in nanoseconds, as observed by host code.
///
/// This is what `clock_gettime` would return on the host. It differs from
/// [`SimTime`] by a constant (unknown to the methodology) offset.
///
/// # Examples
///
/// ```
/// use fingrav_sim::time::CpuTime;
///
/// let a = CpuTime::from_nanos(1_000);
/// let b = CpuTime::from_nanos(4_000);
/// assert_eq!(b.nanos_since(a), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CpuTime(u64);

impl CpuTime {
    /// Creates a CPU timestamp from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        CpuTime(ns)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Signed difference `self - earlier` in nanoseconds.
    #[inline]
    pub fn nanos_since(self, earlier: CpuTime) -> i64 {
        self.0 as i64 - earlier.0 as i64
    }

    /// `self + ns` (ns may be negative).
    #[inline]
    pub fn offset_nanos(self, ns: i64) -> CpuTime {
        CpuTime((self.0 as i64 + ns) as u64)
    }

    /// Fractional milliseconds since CPU epoch; convenient for plotting.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }
}

impl fmt::Display for CpuTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu:{:.3}ms", self.0 as f64 * 1e-6)
    }
}

/// A raw GPU timestamp-counter value, in ticks of the GPU reference clock.
///
/// On MI300X-class devices the counter ticks at 100 MHz (10 ns per tick).
/// Tick values are opaque to the methodology until converted to CPU time by
/// a calibrated [`fingrav-core` time sync](https://docs.rs). The conversion
/// parameters live in [`crate::clock::GpuClock`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GpuTicks(u64);

impl GpuTicks {
    /// Creates a tick value.
    #[inline]
    pub const fn from_raw(ticks: u64) -> Self {
        GpuTicks(ticks)
    }

    /// Raw tick count.
    #[inline]
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Signed tick difference `self - earlier`.
    #[inline]
    pub fn ticks_since(self, earlier: GpuTicks) -> i64 {
        self.0 as i64 - earlier.0 as i64
    }
}

impl fmt::Display for GpuTicks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu-ticks:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_micros(5);
        let d = SimDuration::from_nanos(123);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.as_nanos(), 5_000);
    }

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2_000));
        assert_eq!(SimTime::from_micros(3), SimTime::from_nanos(3_000));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(1e-6),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn duration_float_views() {
        let d = SimDuration::from_micros(1500);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_micros_f64() - 1500.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 1.5e-3).abs() < 1e-12);
    }

    #[test]
    fn duration_mul_f64_rounds() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(1500));
        assert_eq!(d.mul_f64(0.0004), SimDuration::from_nanos(0));
        assert_eq!(d.mul_f64(0.0006), SimDuration::from_nanos(1));
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimDuration::from_nanos(5)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(5)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_nanos(3).saturating_duration_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn cputime_signed_difference() {
        let a = CpuTime::from_nanos(100);
        let b = CpuTime::from_nanos(40);
        assert_eq!(a.nanos_since(b), 60);
        assert_eq!(b.nanos_since(a), -60);
        assert_eq!(b.offset_nanos(60), a);
        assert_eq!(a.offset_nanos(-60), b);
    }

    #[test]
    fn gputicks_signed_difference() {
        let a = GpuTicks::from_raw(1000);
        let b = GpuTicks::from_raw(1500);
        assert_eq!(b.ticks_since(a), 500);
        assert_eq!(a.ticks_since(b), -500);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", SimTime::from_micros(1)).is_empty());
        assert!(!format!("{}", SimDuration::from_nanos(5)).is_empty());
        assert!(!format!("{}", SimDuration::from_micros(5)).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(5)).is_empty());
        assert!(!format!("{}", CpuTime::from_nanos(5)).is_empty());
        assert!(!format!("{}", GpuTicks::from_raw(5)).is_empty());
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }
}
