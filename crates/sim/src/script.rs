//! Declarative host-side scripts.
//!
//! The FinGraV methodology is CPU-side instrumentation (paper step 2): it
//! sleeps, reads GPU timestamps, starts/stops the power logger, and launches
//! timed kernels. A [`Script`] captures that sequence so the methodology
//! crate can describe a profiling run without reaching into simulator
//! internals — the same description could drive real hardware.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelHandle;
use crate::time::SimDuration;

/// One host-side operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HostOp {
    /// Sleep for a fixed duration.
    Sleep(SimDuration),
    /// Sleep for a uniformly random duration in `[min, max]` — FinGraV step
    /// 5 uses this to land power logs at unique times-of-interest.
    SleepUniform {
        /// Minimum sleep.
        min: SimDuration,
        /// Maximum sleep.
        max: SimDuration,
    },
    /// Read the GPU timestamp counter from the CPU, recording the CPU time
    /// before/after and the tick value (paper solution S2).
    ReadGpuTimestamp,
    /// Launch `executions` back-to-back synchronous executions of a kernel,
    /// timing each from the CPU side.
    LaunchTimed {
        /// The kernel to launch.
        kernel: KernelHandle,
        /// How many executions.
        executions: u32,
    },
    /// Enable emission of the fine (1 ms) power logger.
    StartPowerLogger,
    /// Disable the fine power logger.
    StopPowerLogger,
    /// Enable the coarse (amd-smi-like) logger.
    StartCoarseLogger,
    /// Disable the coarse logger.
    StopCoarseLogger,
    /// Mark the beginning of a profiling run: re-draws per-run state such as
    /// the memory-allocation time bias.
    BeginRun,
}

/// A sequence of host operations executed by [`crate::engine::Simulation`].
///
/// # Examples
///
/// ```
/// use fingrav_sim::script::Script;
/// use fingrav_sim::kernel::KernelHandle;
/// use fingrav_sim::time::SimDuration;
///
/// # let kernel = KernelHandle::default();
/// let script = Script::builder()
///     .begin_run()
///     .start_power_logger()
///     .read_gpu_timestamp()
///     .sleep_uniform(SimDuration::ZERO, SimDuration::from_millis(1))
///     .launch_timed(kernel, 8)
///     .stop_power_logger()
///     .build();
/// assert_eq!(script.ops().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Script {
    ops: Vec<HostOp>,
}

impl Script {
    /// Creates an empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Starts building a script fluently.
    pub fn builder() -> ScriptBuilder {
        ScriptBuilder { ops: Vec::new() }
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[HostOp] {
        &self.ops
    }

    /// Total number of kernel executions the script will launch.
    pub fn total_executions(&self) -> u32 {
        self.ops
            .iter()
            .map(|op| match op {
                HostOp::LaunchTimed { executions, .. } => *executions,
                _ => 0,
            })
            .sum()
    }
}

impl From<Vec<HostOp>> for Script {
    fn from(ops: Vec<HostOp>) -> Self {
        Script { ops }
    }
}

/// Fluent builder for [`Script`].
#[derive(Debug, Clone)]
pub struct ScriptBuilder {
    ops: Vec<HostOp>,
}

impl ScriptBuilder {
    /// Appends a fixed sleep.
    pub fn sleep(mut self, d: SimDuration) -> Self {
        self.ops.push(HostOp::Sleep(d));
        self
    }

    /// Appends a uniformly random sleep in `[min, max]`.
    pub fn sleep_uniform(mut self, min: SimDuration, max: SimDuration) -> Self {
        self.ops.push(HostOp::SleepUniform { min, max });
        self
    }

    /// Appends a GPU-timestamp read.
    pub fn read_gpu_timestamp(mut self) -> Self {
        self.ops.push(HostOp::ReadGpuTimestamp);
        self
    }

    /// Appends `executions` timed launches of `kernel`.
    pub fn launch_timed(mut self, kernel: KernelHandle, executions: u32) -> Self {
        self.ops.push(HostOp::LaunchTimed { kernel, executions });
        self
    }

    /// Enables the fine power logger.
    pub fn start_power_logger(mut self) -> Self {
        self.ops.push(HostOp::StartPowerLogger);
        self
    }

    /// Disables the fine power logger.
    pub fn stop_power_logger(mut self) -> Self {
        self.ops.push(HostOp::StopPowerLogger);
        self
    }

    /// Enables the coarse logger.
    pub fn start_coarse_logger(mut self) -> Self {
        self.ops.push(HostOp::StartCoarseLogger);
        self
    }

    /// Disables the coarse logger.
    pub fn stop_coarse_logger(mut self) -> Self {
        self.ops.push(HostOp::StopCoarseLogger);
        self
    }

    /// Marks a new profiling run.
    pub fn begin_run(mut self) -> Self {
        self.ops.push(HostOp::BeginRun);
        self
    }

    /// Appends an arbitrary operation.
    pub fn op(mut self, op: HostOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Finishes the script.
    pub fn build(self) -> Script {
        Script { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order() {
        let k = KernelHandle::default();
        let s = Script::builder()
            .begin_run()
            .start_power_logger()
            .launch_timed(k, 3)
            .stop_power_logger()
            .build();
        assert!(matches!(s.ops()[0], HostOp::BeginRun));
        assert!(matches!(s.ops()[1], HostOp::StartPowerLogger));
        assert!(matches!(
            s.ops()[2],
            HostOp::LaunchTimed { executions: 3, .. }
        ));
        assert!(matches!(s.ops()[3], HostOp::StopPowerLogger));
    }

    #[test]
    fn total_executions_sums_launches() {
        let k = KernelHandle::default();
        let s = Script::builder()
            .launch_timed(k, 3)
            .sleep(SimDuration::from_micros(10))
            .launch_timed(k, 7)
            .build();
        assert_eq!(s.total_executions(), 10);
    }

    #[test]
    fn from_vec_roundtrip() {
        let ops = vec![HostOp::BeginRun, HostOp::ReadGpuTimestamp];
        let s = Script::from(ops.clone());
        assert_eq!(s.ops(), ops.as_slice());
    }

    #[test]
    fn empty_script_has_no_executions() {
        assert_eq!(Script::new().total_executions(), 0);
    }
}
