//! Run traces: everything the host observes, plus simulator ground truth.
//!
//! [`RunTrace`] is the boundary between the simulated world and the
//! methodology. Its *observable* half (timed executions in CPU time,
//! GPU-timestamped power logs, timestamp reads) is exactly the information
//! a real profiling harness would have. The [`GroundTruth`] half is the
//! simulator's omniscient record, available for validating the methodology
//! in tests — real hardware has no such oracle, which is the entire reason
//! the FinGraV methodology exists.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelHandle;
use crate::power::ComponentPower;
use crate::telemetry::PowerLog;
use crate::time::{CpuTime, GpuTicks, SimDuration, SimTime};

/// One CPU-side timed kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedExecution {
    /// The kernel that was launched.
    pub kernel: KernelHandle,
    /// Zero-based index of the execution within its launch burst.
    pub index: u32,
    /// CPU wall-clock time just before the launch was submitted.
    pub cpu_start: CpuTime,
    /// CPU wall-clock time just after completion was observed.
    pub cpu_end: CpuTime,
}

impl TimedExecution {
    /// CPU-observed execution time in nanoseconds (includes dispatch and
    /// completion overheads, as real host-side timing does).
    pub fn duration_ns(&self) -> u64 {
        self.cpu_end.nanos_since(self.cpu_start).max(0) as u64
    }
}

/// One CPU-initiated read of the GPU timestamp counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimestampRead {
    /// CPU time immediately before issuing the read.
    pub cpu_before: CpuTime,
    /// CPU time immediately after the read returned.
    pub cpu_after: CpuTime,
    /// The tick value returned.
    pub ticks: GpuTicks,
}

impl TimestampRead {
    /// Observed round-trip time of the read, nanoseconds.
    pub fn rtt_ns(&self) -> u64 {
        self.cpu_after.nanos_since(self.cpu_before).max(0) as u64
    }
}

/// Ground-truth record of one kernel execution on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueExecution {
    /// The kernel that ran.
    pub kernel: KernelHandle,
    /// Execution start (simulation time).
    pub start: SimTime,
    /// Execution end (simulation time).
    pub end: SimTime,
    /// Index within the launch burst.
    pub index: u32,
    /// Executions since the device was last cold, at launch.
    pub execs_since_cold: u32,
    /// Whether the variation model drew an outlier.
    pub outlier: bool,
}

impl TrueExecution {
    /// Ground-truth duration.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// Simulator-omniscient information for validating the methodology.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True kernel execution intervals.
    pub executions: Vec<TrueExecution>,
    /// Core-frequency changes: `(time, new MHz)`.
    pub freq_changes: Vec<(SimTime, f64)>,
    /// Die temperature at the end of the script, °C.
    pub final_temp_c: f64,
    /// Instantaneous power trace (only if
    /// [`crate::telemetry::TelemetryConfig::record_instant_trace`] is set).
    pub instant_power: Vec<(SimTime, ComponentPower)>,
}

/// Everything produced by executing one [`crate::script::Script`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// CPU-side timed executions, in order.
    pub executions: Vec<TimedExecution>,
    /// GPU timestamp reads, in order.
    pub timestamp_reads: Vec<TimestampRead>,
    /// Fine (1 ms) power logs emitted while enabled.
    pub power_logs: Vec<PowerLog>,
    /// Coarse logs emitted while enabled.
    pub coarse_logs: Vec<PowerLog>,
    /// True when the script was cut short by a cooperative abort (see
    /// [`crate::session::AbortHandle`]): everything observed before the
    /// stop is present and well-formed, but the script did not finish.
    pub aborted: bool,
    /// Simulator ground truth (not available on real hardware).
    pub truth: GroundTruth,
}

impl RunTrace {
    /// CPU-observed execution durations in nanoseconds, in order.
    pub fn execution_durations_ns(&self) -> Vec<u64> {
        self.executions
            .iter()
            .map(TimedExecution::duration_ns)
            .collect()
    }

    /// The CPU time of the first launch, if any — the natural origin for
    /// run-relative plots.
    pub fn first_launch_cpu(&self) -> Option<CpuTime> {
        self.executions.first().map(|e| e.cpu_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_execution_duration() {
        let e = TimedExecution {
            kernel: KernelHandle::default(),
            index: 0,
            cpu_start: CpuTime::from_nanos(1_000),
            cpu_end: CpuTime::from_nanos(5_500),
        };
        assert_eq!(e.duration_ns(), 4_500);
    }

    #[test]
    fn timestamp_read_rtt() {
        let r = TimestampRead {
            cpu_before: CpuTime::from_nanos(10),
            cpu_after: CpuTime::from_nanos(1_510),
            ticks: GpuTicks::from_raw(42),
        };
        assert_eq!(r.rtt_ns(), 1_500);
    }

    #[test]
    fn true_execution_duration() {
        let e = TrueExecution {
            kernel: KernelHandle::default(),
            start: SimTime::from_micros(10),
            end: SimTime::from_micros(110),
            index: 0,
            execs_since_cold: 2,
            outlier: false,
        };
        assert_eq!(e.duration(), SimDuration::from_micros(100));
    }

    #[test]
    fn run_trace_helpers() {
        let mut t = RunTrace::default();
        assert!(t.first_launch_cpu().is_none());
        assert!(t.execution_durations_ns().is_empty());
        t.executions.push(TimedExecution {
            kernel: KernelHandle::default(),
            index: 0,
            cpu_start: CpuTime::from_nanos(100),
            cpu_end: CpuTime::from_nanos(300),
        });
        t.executions.push(TimedExecution {
            kernel: KernelHandle::default(),
            index: 1,
            cpu_start: CpuTime::from_nanos(400),
            cpu_end: CpuTime::from_nanos(900),
        });
        assert_eq!(t.first_launch_cpu(), Some(CpuTime::from_nanos(100)));
        assert_eq!(t.execution_durations_ns(), vec![200, 500]);
    }
}
