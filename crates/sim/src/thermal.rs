//! A first-order RC thermal model of the GPU package.
//!
//! Die temperature relaxes toward `ambient + R_th · P` with time constant
//! `tau`. Temperature feeds back into leakage power ([`crate::power`]) and
//! is one of the reasons the paper's *steady-state power* (SSP) profile sits
//! slightly above the *steady-state execution* (SSE) profile for long
//! kernels: the die keeps warming across executions after timing has
//! already stabilized.

use serde::{Deserialize, Serialize};

/// Thermal model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Thermal resistance junction-to-ambient, °C per watt.
    pub r_th_c_per_w: f64,
    /// Relaxation time constant, seconds.
    pub tau_s: f64,
    /// Ambient (coolant) temperature, °C.
    pub ambient_c: f64,
    /// Die temperature at simulation start, °C.
    pub initial_c: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            r_th_c_per_w: 0.055,
            tau_s: 1.2,
            ambient_c: 35.0,
            initial_c: 45.0,
        }
    }
}

/// Integrates die temperature over time.
///
/// # Examples
///
/// ```
/// use fingrav_sim::thermal::{ThermalConfig, ThermalState};
///
/// let mut t = ThermalState::new(ThermalConfig::default());
/// let before = t.temp_c();
/// // 100 ms at 700 W warms the die measurably.
/// for _ in 0..5000 {
///     t.step(20e-6, 700.0);
/// }
/// assert!(t.temp_c() > before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    cfg: ThermalConfig,
    temp_c: f64,
}

impl ThermalState {
    /// Creates a thermal state at the configured initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `tau_s` or `r_th_c_per_w` are not strictly positive.
    pub fn new(cfg: ThermalConfig) -> Self {
        assert!(cfg.tau_s > 0.0, "thermal time constant must be positive");
        assert!(
            cfg.r_th_c_per_w > 0.0,
            "thermal resistance must be positive"
        );
        ThermalState {
            temp_c: cfg.initial_c,
            cfg,
        }
    }

    /// Current die temperature in °C.
    #[inline]
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// The temperature the die would settle at under constant `power_w`.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.cfg.ambient_c + self.cfg.r_th_c_per_w * power_w
    }

    /// Advances the model by `dt_s` seconds under `power_w` watts, using the
    /// exact solution of the first-order ODE so that step size does not
    /// change the trajectory.
    pub fn step(&mut self, dt_s: f64, power_w: f64) {
        debug_assert!(dt_s >= 0.0);
        self.step_decayed(self.decay_for(dt_s), power_w);
    }

    /// The relaxation factor for a step of `dt_s` seconds, split out so a
    /// fixed-cadence caller (the engine's sensor tick) can evaluate the
    /// exponential once and reuse it: `step_decayed(decay_for(dt), p)` is
    /// bit-identical to `step(dt, p)` — it *is* that call.
    pub fn decay_for(&self, dt_s: f64) -> f64 {
        (-dt_s / self.cfg.tau_s).exp()
    }

    /// Advances the model by one step with a precomputed relaxation factor
    /// (see [`ThermalState::decay_for`]).
    pub fn step_decayed(&mut self, decay: f64, power_w: f64) {
        let target = self.steady_state_c(power_w);
        self.temp_c = target + (self.temp_c - target) * decay;
    }

    /// Resets the die to the configured initial temperature.
    pub fn reset(&mut self) {
        self.temp_c = self.cfg.initial_c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ThermalState {
        ThermalState::new(ThermalConfig::default())
    }

    #[test]
    fn relaxes_toward_steady_state() {
        let mut t = state();
        let target = t.steady_state_c(750.0);
        for _ in 0..100_000 {
            t.step(1e-3, 750.0);
        }
        assert!(
            (t.temp_c() - target).abs() < 0.01,
            "{} vs {target}",
            t.temp_c()
        );
    }

    #[test]
    fn cooling_when_idle() {
        let mut t = state();
        // Heat up first.
        for _ in 0..10_000 {
            t.step(1e-3, 750.0);
        }
        let hot = t.temp_c();
        for _ in 0..10_000 {
            t.step(1e-3, 150.0);
        }
        assert!(t.temp_c() < hot);
    }

    #[test]
    fn step_size_invariance() {
        // Exact integration: many small steps equal one large step.
        let mut a = state();
        let mut b = state();
        for _ in 0..1000 {
            a.step(1e-4, 600.0);
        }
        b.step(0.1, 600.0);
        assert!((a.temp_c() - b.temp_c()).abs() < 1e-9);
    }

    #[test]
    fn short_run_warms_only_slightly() {
        // Within a single ~50 ms profiling run the die temperature moves by
        // a fraction of a degree — the effect is real but subtle, as in the
        // paper's SSE→SSP drift for long kernels.
        let mut t = state();
        for _ in 0..2500 {
            t.step(20e-6, 700.0);
        }
        let delta = t.temp_c() - ThermalConfig::default().initial_c;
        assert!(delta > 0.1 && delta < 5.0, "delta {delta}");
    }

    #[test]
    fn precomputed_decay_is_bit_identical_to_step() {
        // The engine hoists `decay_for(sensor_period)` out of the sensor
        // handler; the trajectory must match `step` to the last bit.
        let mut a = state();
        let mut b = state();
        let decay = b.decay_for(20e-6);
        let mut p = 150.0;
        for _ in 0..5000 {
            a.step(20e-6, p);
            b.step_decayed(decay, p);
            assert_eq!(a.temp_c().to_bits(), b.temp_c().to_bits());
            p = 150.0 + (p * 1.01) % 600.0;
        }
    }

    #[test]
    fn reset_restores_initial() {
        let mut t = state();
        t.step(10.0, 750.0);
        t.reset();
        assert_eq!(t.temp_c(), ThermalConfig::default().initial_c);
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut t = state();
        let before = t.temp_c();
        t.step(0.0, 10_000.0);
        assert_eq!(t.temp_c(), before);
    }

    #[test]
    #[should_panic(expected = "time constant")]
    fn rejects_bad_tau() {
        let _ = ThermalState::new(ThermalConfig {
            tau_s: 0.0,
            ..ThermalConfig::default()
        });
    }
}
