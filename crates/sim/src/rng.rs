//! Deterministic random-number utilities.
//!
//! Every stochastic element of the simulator (execution-time jitter,
//! allocation bias, outliers, timestamp-read latency noise) draws from a
//! [`SimRng`] seeded from a master seed plus a *stream* identifier, so that
//! experiments are bit-reproducible and individual runs can be re-derived
//! in isolation (run *k* of an experiment always sees the same draws no
//! matter what ran before it).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mixes a master seed and a stream id into an independent 64-bit seed.
///
/// Uses the SplitMix64 finalizer, which is well dispersed even for
/// consecutive stream ids.
///
/// # Examples
///
/// ```
/// use fingrav_sim::rng::mix_seed;
///
/// assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
#[must_use]
pub fn mix_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG with the handful of distributions the simulator needs.
///
/// # Examples
///
/// ```
/// use fingrav_sim::rng::SimRng;
///
/// let mut a = SimRng::from_streams(42, 0);
/// let mut b = SimRng::from_streams(42, 0);
/// assert_eq!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a raw 64-bit seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates an RNG for `(master, stream)`; distinct streams are
    /// statistically independent.
    pub fn from_streams(master: u64, stream: u64) -> Self {
        Self::from_seed_u64(mix_seed(master, stream))
    }

    /// A uniform draw in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A uniform integer draw in `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..=hi)
    }

    /// A standard-normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_disperses_streams() {
        let seeds: Vec<u64> = (0..100).map(|s| mix_seed(1234, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "stream seeds must be unique");
    }

    #[test]
    fn rng_is_deterministic_per_stream() {
        let mut a = SimRng::from_streams(9, 4);
        let mut b = SimRng::from_streams(9, 4);
        for _ in 0..32 {
            assert_eq!(
                a.uniform(0.0, 10.0).to_bits(),
                b.uniform(0.0, 10.0).to_bits()
            );
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::from_streams(9, 0);
        let mut b = SimRng::from_streams(9, 1);
        let same =
            (0..16).filter(|_| a.uniform(0.0, 1.0).to_bits() == b.uniform(0.0, 1.0).to_bits());
        assert!(same.count() < 16);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::from_streams(7, 7);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform(5.0, 4.0), 5.0);
    }

    #[test]
    fn uniform_u64_respects_bounds() {
        let mut rng = SimRng::from_streams(7, 8);
        for _ in 0..1000 {
            let x = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(rng.uniform_u64(4, 4), 4);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SimRng::from_streams(11, 0);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_streams(3, 3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut rng = SimRng::from_streams(3, 4);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
