//! Simulator error types.

use std::error::Error;
use std::fmt;

/// Errors returned by the simulator's fallible public surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A script referenced a kernel handle that was never registered.
    UnknownKernel {
        /// The offending handle index.
        index: usize,
    },
    /// A kernel descriptor failed validation at registration.
    InvalidKernel {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A script or configuration value was inconsistent.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownKernel { index } => {
                write!(f, "unknown kernel handle {index}")
            }
            SimError::InvalidKernel { reason } => {
                write!(f, "invalid kernel descriptor: {reason}")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl Error for SimError {}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::UnknownKernel { index: 7 };
        assert!(format!("{e}").contains('7'));
        let e = SimError::InvalidKernel {
            reason: "bad".into(),
        };
        assert!(format!("{e}").contains("bad"));
        let e = SimError::InvalidConfig {
            reason: "nope".into(),
        };
        assert!(format!("{e}").contains("nope"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
