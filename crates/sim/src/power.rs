//! The GPU power model.
//!
//! MI300X is a chiplet design: eight accelerator complex dies (**XCD**)
//! stacked over four I/O dies (**IOD**, which house the Infinity Cache and
//! HBM interfaces), next to eight **HBM** stacks. The paper's internal
//! power logger reports the voltage-regulator output ("total") power and
//! per-sub-component breakdowns, and the paper's component-level insights
//! (Table II takeaways 2–4) are entirely about how different kernels load
//! these components differently.
//!
//! Instantaneous power is modelled per component type as
//!
//! ```text
//! P_comp = idle_comp · leak(T)  +  activity_comp · dyn_max_comp · (V/V_ref)² · (f/f_ref)
//! ```
//!
//! plus a voltage-regulator conversion loss proportional to delivered
//! power. Activities come from the running kernel's descriptor; frequency
//! comes from the power-management firmware ([`crate::dvfs`]); temperature
//! from [`crate::thermal`].

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// GPU sub-components distinguished by the power telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Accelerator complex dies (compute cores).
    Xcd,
    /// I/O dies: Infinity Cache (LLC) and memory interfaces.
    Iod,
    /// High-bandwidth memory stacks.
    Hbm,
    /// Everything else behind the voltage regulator (board, VR loss, misc).
    Rest,
}

impl Component {
    /// All components, in canonical reporting order.
    pub const ALL: [Component; 4] = [
        Component::Xcd,
        Component::Iod,
        Component::Hbm,
        Component::Rest,
    ];
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Xcd => "XCD",
            Component::Iod => "IOD",
            Component::Hbm => "HBM",
            Component::Rest => "REST",
        };
        f.write_str(s)
    }
}

/// A per-component power reading (or budget) in watts.
///
/// # Examples
///
/// ```
/// use fingrav_sim::power::ComponentPower;
///
/// let p = ComponentPower::new(500.0, 90.0, 80.0, 40.0);
/// assert_eq!(p.total(), 710.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Accelerator complex dies, watts.
    pub xcd: f64,
    /// I/O dies, watts.
    pub iod: f64,
    /// HBM stacks, watts.
    pub hbm: f64,
    /// Remaining board power (incl. VR loss), watts.
    pub rest: f64,
}

impl ComponentPower {
    /// All-zero power.
    pub const ZERO: ComponentPower = ComponentPower {
        xcd: 0.0,
        iod: 0.0,
        hbm: 0.0,
        rest: 0.0,
    };

    /// Creates a reading from the four component values.
    pub const fn new(xcd: f64, iod: f64, hbm: f64, rest: f64) -> Self {
        ComponentPower {
            xcd,
            iod,
            hbm,
            rest,
        }
    }

    /// Total (voltage-regulator output) power in watts.
    #[inline]
    pub fn total(&self) -> f64 {
        self.xcd + self.iod + self.hbm + self.rest
    }

    /// The value for one component.
    #[inline]
    pub fn get(&self, c: Component) -> f64 {
        match c {
            Component::Xcd => self.xcd,
            Component::Iod => self.iod,
            Component::Hbm => self.hbm,
            Component::Rest => self.rest,
        }
    }

    /// Sets the value for one component.
    pub fn set(&mut self, c: Component, w: f64) {
        match c {
            Component::Xcd => self.xcd = w,
            Component::Iod => self.iod = w,
            Component::Hbm => self.hbm = w,
            Component::Rest => self.rest = w,
        }
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ComponentPower) -> ComponentPower {
        ComponentPower {
            xcd: self.xcd.max(other.xcd),
            iod: self.iod.max(other.iod),
            hbm: self.hbm.max(other.hbm),
            rest: self.rest.max(other.rest),
        }
    }

    /// True if every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        Component::ALL
            .iter()
            .all(|&c| self.get(c).is_finite() && self.get(c) >= 0.0)
    }
}

impl Add for ComponentPower {
    type Output = ComponentPower;
    fn add(self, rhs: ComponentPower) -> ComponentPower {
        ComponentPower {
            xcd: self.xcd + rhs.xcd,
            iod: self.iod + rhs.iod,
            hbm: self.hbm + rhs.hbm,
            rest: self.rest + rhs.rest,
        }
    }
}

impl AddAssign for ComponentPower {
    fn add_assign(&mut self, rhs: ComponentPower) {
        *self = *self + rhs;
    }
}

impl Sub for ComponentPower {
    type Output = ComponentPower;
    fn sub(self, rhs: ComponentPower) -> ComponentPower {
        ComponentPower {
            xcd: self.xcd - rhs.xcd,
            iod: self.iod - rhs.iod,
            hbm: self.hbm - rhs.hbm,
            rest: self.rest - rhs.rest,
        }
    }
}

impl Mul<f64> for ComponentPower {
    type Output = ComponentPower;
    fn mul(self, k: f64) -> ComponentPower {
        ComponentPower {
            xcd: self.xcd * k,
            iod: self.iod * k,
            hbm: self.hbm * k,
            rest: self.rest * k,
        }
    }
}

impl Div<f64> for ComponentPower {
    type Output = ComponentPower;
    fn div(self, k: f64) -> ComponentPower {
        self * (1.0 / k)
    }
}

impl fmt::Display for ComponentPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}W (XCD {:.1} / IOD {:.1} / HBM {:.1} / rest {:.1})",
            self.total(),
            self.xcd,
            self.iod,
            self.hbm,
            self.rest
        )
    }
}

/// Per-component switching activity in `[0, 1]`.
///
/// This is *power* activity (how hard the silicon toggles), not achieved
/// utilization: the paper's takeaway #4 is precisely that a compute-light
/// GEMM can toggle the XCDs almost as hard as a compute-heavy one while
/// achieving half the useful throughput.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Activity {
    /// XCD switching activity.
    pub xcd: f64,
    /// IOD (LLC + memory interface) activity.
    pub iod: f64,
    /// HBM activity.
    pub hbm: f64,
}

impl Activity {
    /// All-zero (idle) activity.
    pub const IDLE: Activity = Activity {
        xcd: 0.0,
        iod: 0.0,
        hbm: 0.0,
    };

    /// Creates an activity triple, clamping each factor to `[0, 1]`.
    pub fn new(xcd: f64, iod: f64, hbm: f64) -> Self {
        Activity {
            xcd: xcd.clamp(0.0, 1.0),
            iod: iod.clamp(0.0, 1.0),
            hbm: hbm.clamp(0.0, 1.0),
        }
    }

    /// Component-wise scaling (clamped to `[0, 1]`).
    pub fn scaled(&self, k: f64) -> Activity {
        Activity::new(self.xcd * k, self.iod * k, self.hbm * k)
    }
}

/// Linear voltage–frequency operating curve.
///
/// # Examples
///
/// ```
/// use fingrav_sim::power::VfCurve;
///
/// let vf = VfCurve::new(500.0, 2100.0, 0.65, 1.10);
/// assert!((vf.voltage(2100.0) - 1.10).abs() < 1e-12);
/// assert!((vf.voltage(500.0) - 0.65).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    f_min_mhz: f64,
    f_max_mhz: f64,
    v_min: f64,
    v_max: f64,
}

impl VfCurve {
    /// Creates a curve between `(f_min_mhz, v_min)` and `(f_max_mhz, v_max)`.
    ///
    /// # Panics
    ///
    /// Panics if `f_max_mhz <= f_min_mhz` or voltages are non-positive.
    pub fn new(f_min_mhz: f64, f_max_mhz: f64, v_min: f64, v_max: f64) -> Self {
        assert!(f_max_mhz > f_min_mhz, "frequency range must be non-empty");
        assert!(v_min > 0.0 && v_max > 0.0, "voltages must be positive");
        VfCurve {
            f_min_mhz,
            f_max_mhz,
            v_min,
            v_max,
        }
    }

    /// Minimum operating frequency in MHz.
    pub fn f_min_mhz(&self) -> f64 {
        self.f_min_mhz
    }

    /// Maximum (boost) frequency in MHz.
    pub fn f_max_mhz(&self) -> f64 {
        self.f_max_mhz
    }

    /// The operating voltage at frequency `f_mhz` (clamped to the curve).
    pub fn voltage(&self, f_mhz: f64) -> f64 {
        let f = f_mhz.clamp(self.f_min_mhz, self.f_max_mhz);
        let frac = (f - self.f_min_mhz) / (self.f_max_mhz - self.f_min_mhz);
        self.v_min + (self.v_max - self.v_min) * frac
    }
}

/// Static parameters of the power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModelConfig {
    /// Idle floor per component (watts) at reference temperature.
    pub idle: ComponentPower,
    /// Maximum dynamic power per component at `f_ref_mhz`/reference voltage
    /// with activity 1.0 (watts). `rest` here is unused (rest is derived
    /// from VR loss).
    pub dyn_max: ComponentPower,
    /// Reference frequency (MHz) at which `dyn_max` is specified.
    pub f_ref_mhz: f64,
    /// Voltage–frequency curve.
    pub vf: VfCurve,
    /// Fraction of delivered power lost in voltage regulation (adds to `rest`).
    pub vr_loss_frac: f64,
    /// Leakage growth per degree Celsius above the reference temperature
    /// (applied multiplicatively to the idle floor).
    pub leak_per_deg_c: f64,
    /// Reference die temperature for the idle floor (°C).
    pub t_ref_c: f64,
}

impl Default for PowerModelConfig {
    /// Defaults loosely shaped after a 750 W-class MI300X OAM module.
    fn default() -> Self {
        PowerModelConfig {
            idle: ComponentPower::new(55.0, 45.0, 28.0, 22.0),
            dyn_max: ComponentPower::new(600.0, 110.0, 120.0, 0.0),
            f_ref_mhz: 2100.0,
            vf: VfCurve::new(500.0, 2100.0, 0.65, 1.10),
            vr_loss_frac: 0.05,
            leak_per_deg_c: 0.0035,
            t_ref_c: 45.0,
        }
    }
}

/// Frequency-dependent scale factors of the power model, computed once per
/// core-frequency change by [`PowerModel::freq_factors`] and reused across
/// sensor samples by [`PowerModel::instantaneous_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqFactors {
    /// Dynamic-power scale for the XCDs: `(V/V_ref)² · (f/f_ref)`.
    pub scale: f64,
    /// Milder scale for data movement (IOD/HBM).
    pub mem_scale: f64,
}

/// Evaluates instantaneous component power for a machine state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    cfg: PowerModelConfig,
}

impl PowerModel {
    /// Creates a model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (non-finite or
    /// negative idle/dynamic powers, reference frequency outside the VF
    /// curve).
    pub fn new(cfg: PowerModelConfig) -> Self {
        assert!(cfg.idle.is_valid(), "idle power must be valid");
        assert!(cfg.dyn_max.is_valid(), "dynamic power must be valid");
        assert!(
            cfg.f_ref_mhz > 0.0 && cfg.f_ref_mhz <= cfg.vf.f_max_mhz(),
            "reference frequency must sit on the VF curve"
        );
        assert!(
            (0.0..0.5).contains(&cfg.vr_loss_frac),
            "VR loss fraction out of range"
        );
        PowerModel { cfg }
    }

    /// The model configuration.
    pub fn config(&self) -> &PowerModelConfig {
        &self.cfg
    }

    /// Instantaneous power at the given activity, core frequency, and die
    /// temperature.
    pub fn instantaneous(&self, activity: Activity, f_mhz: f64, temp_c: f64) -> ComponentPower {
        self.instantaneous_with(activity, self.freq_factors(f_mhz), temp_c)
    }

    /// The frequency-dependent scale factors of the model, split out so the
    /// engine can cache them between frequency changes: the DVFS clock only
    /// moves a few dozen times per run while the sensor samples thousands
    /// of times, and the VF-curve lookup plus `powi` dominate
    /// [`PowerModel::instantaneous`] otherwise. For any `f_mhz`,
    /// `instantaneous_with(a, freq_factors(f), t)` is bit-identical to
    /// `instantaneous(a, f, t)` — it *is* that call.
    pub fn freq_factors(&self, f_mhz: f64) -> FreqFactors {
        let c = &self.cfg;
        let v = c.vf.voltage(f_mhz);
        let v_ref = c.vf.voltage(c.f_ref_mhz);
        let scale = (v / v_ref).powi(2) * (f_mhz.min(c.vf.f_max_mhz()) / c.f_ref_mhz);
        // IOD/HBM activity tracks data movement, which is largely
        // independent of the core clock: only a milder frequency dependence.
        let mem_scale = 0.25 + 0.75 * (f_mhz / c.f_ref_mhz).clamp(0.0, 1.0);
        FreqFactors { scale, mem_scale }
    }

    /// Instantaneous power with precomputed frequency factors (see
    /// [`PowerModel::freq_factors`]).
    pub fn instantaneous_with(
        &self,
        activity: Activity,
        factors: FreqFactors,
        temp_c: f64,
    ) -> ComponentPower {
        let c = &self.cfg;
        let leak_mult = 1.0 + c.leak_per_deg_c * (temp_c - c.t_ref_c);
        let leak_mult = leak_mult.max(0.5);

        let dyn_xcd = activity.xcd * c.dyn_max.xcd * factors.scale;
        let dyn_iod = activity.iod * c.dyn_max.iod * factors.mem_scale;
        let dyn_hbm = activity.hbm * c.dyn_max.hbm * factors.mem_scale;

        let delivered = ComponentPower {
            xcd: c.idle.xcd * leak_mult + dyn_xcd,
            iod: c.idle.iod * leak_mult + dyn_iod,
            hbm: c.idle.hbm * leak_mult + dyn_hbm,
            rest: c.idle.rest,
        };
        let vr_loss = (delivered.total()) * c.vr_loss_frac;
        ComponentPower {
            rest: delivered.rest + vr_loss,
            ..delivered
        }
    }

    /// Idle power at the given temperature (no kernel running, frequency
    /// parked at `f_mhz`).
    pub fn idle_power(&self, f_mhz: f64, temp_c: f64) -> ComponentPower {
        self.instantaneous(Activity::IDLE, f_mhz, temp_c)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new(PowerModelConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::default()
    }

    #[test]
    fn component_power_algebra() {
        let a = ComponentPower::new(1.0, 2.0, 3.0, 4.0);
        let b = ComponentPower::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!((a + b).total(), 12.0);
        assert_eq!((a - b).total(), 8.0);
        assert_eq!((a * 2.0).total(), 20.0);
        assert_eq!((a / 2.0).total(), 5.0);
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 12.0);
    }

    #[test]
    fn component_get_set_roundtrip() {
        let mut p = ComponentPower::ZERO;
        for (i, &c) in Component::ALL.iter().enumerate() {
            p.set(c, i as f64 + 1.0);
        }
        assert_eq!(p.get(Component::Xcd), 1.0);
        assert_eq!(p.get(Component::Iod), 2.0);
        assert_eq!(p.get(Component::Hbm), 3.0);
        assert_eq!(p.get(Component::Rest), 4.0);
    }

    #[test]
    fn activity_clamps() {
        let a = Activity::new(1.5, -0.2, 0.5);
        assert_eq!(a.xcd, 1.0);
        assert_eq!(a.iod, 0.0);
        assert_eq!(a.hbm, 0.5);
        let s = a.scaled(0.5);
        assert_eq!(s.xcd, 0.5);
    }

    #[test]
    fn vf_curve_interpolates() {
        let vf = VfCurve::new(500.0, 2100.0, 0.65, 1.10);
        let mid = vf.voltage(1300.0);
        assert!(mid > 0.65 && mid < 1.10);
        // Clamping below/above the curve.
        assert_eq!(vf.voltage(100.0), 0.65);
        assert_eq!(vf.voltage(9999.0), 1.10);
    }

    #[test]
    fn idle_power_near_nameplate() {
        let p = model().idle_power(500.0, 45.0);
        // ~150 W idle plus VR loss.
        assert!(p.total() > 140.0 && p.total() < 175.0, "idle {p}");
    }

    #[test]
    fn full_compute_load_exceeds_cap_at_boost() {
        // A compute-heavy kernel at full boost must overshoot a 750 W cap so
        // the firmware has something to throttle (paper Fig. 6).
        let a = Activity::new(0.95, 0.5, 0.7);
        let p = model().instantaneous(a, 2100.0, 60.0);
        assert!(p.total() > 800.0, "boost power {p}");
    }

    #[test]
    fn throttled_load_fits_under_cap() {
        let a = Activity::new(0.95, 0.5, 0.7);
        let p = model().instantaneous(a, 1500.0, 60.0);
        assert!(p.total() < 750.0, "throttled power {p}");
    }

    #[test]
    fn power_monotone_in_frequency() {
        let a = Activity::new(0.9, 0.4, 0.4);
        let m = model();
        let mut last = 0.0;
        for f in [600.0, 900.0, 1200.0, 1500.0, 1800.0, 2100.0] {
            let p = m.instantaneous(a, f, 50.0).total();
            assert!(p > last, "power must rise with frequency");
            last = p;
        }
    }

    #[test]
    fn power_monotone_in_activity() {
        let m = model();
        let lo = m.instantaneous(Activity::new(0.2, 0.2, 0.2), 2100.0, 50.0);
        let hi = m.instantaneous(Activity::new(0.8, 0.8, 0.8), 2100.0, 50.0);
        assert!(hi.total() > lo.total());
        assert!(hi.xcd > lo.xcd);
        assert!(hi.iod > lo.iod);
        assert!(hi.hbm > lo.hbm);
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = model();
        let cold = m.idle_power(500.0, 45.0).total();
        let hot = m.idle_power(500.0, 85.0).total();
        assert!(
            hot > cold * 1.05,
            "leakage should be visible: {cold} vs {hot}"
        );
    }

    #[test]
    fn memory_power_less_frequency_sensitive_than_compute() {
        let m = model();
        let a = Activity::new(1.0, 1.0, 1.0);
        let hi = m.instantaneous(a, 2100.0, 50.0);
        let lo = m.instantaneous(a, 1050.0, 50.0);
        let xcd_drop = (hi.xcd - lo.xcd) / hi.xcd;
        let hbm_drop = (hi.hbm - lo.hbm) / hi.hbm;
        assert!(
            xcd_drop > hbm_drop,
            "core clock halving must hit XCD harder: xcd {xcd_drop:.3} hbm {hbm_drop:.3}"
        );
    }

    #[test]
    fn cached_freq_factors_are_bit_identical_to_direct_evaluation() {
        // The engine caches FreqFactors between DVFS changes; the split
        // path must reproduce `instantaneous` to the last bit across the
        // whole operating envelope (including off-curve frequencies).
        let m = model();
        let a = Activity::new(0.73, 0.41, 0.58);
        let mut f = 200.0;
        while f <= 2600.0 {
            let factors = m.freq_factors(f);
            let mut t = 20.0;
            while t <= 110.0 {
                let direct = m.instantaneous(a, f, t);
                let cached = m.instantaneous_with(a, factors, t);
                for c in Component::ALL {
                    assert_eq!(
                        direct.get(c).to_bits(),
                        cached.get(c).to_bits(),
                        "component {c} differs at f={f} t={t}"
                    );
                }
                t += 7.3;
            }
            f += 93.7;
        }
    }

    #[test]
    fn display_formats() {
        let p = ComponentPower::new(1.0, 2.0, 3.0, 4.0);
        let s = format!("{p}");
        assert!(s.contains("XCD"));
        for c in Component::ALL {
            assert!(!format!("{c}").is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "frequency range")]
    fn vf_rejects_inverted_range() {
        let _ = VfCurve::new(2000.0, 1000.0, 0.6, 1.0);
    }
}
