//! Streaming script sessions: observable, abortable script execution.
//!
//! Historically [`crate::engine::Simulation::run_script`] was a batch call:
//! it blocked until the script ended and the logger's logs were only
//! visible afterwards, so a long campaign could neither be observed live
//! nor stopped early. This module is the streaming half of the redesign:
//! while a script runs, the engine pushes [`TelemetryEvent`]s into a
//! [`TelemetrySink`] *as they happen*, and an [`AbortHandle`] lets another
//! thread request a cooperative stop that still yields a well-formed
//! (partial) trace.
//!
//! # Event ordering guarantees
//!
//! The engine is a deterministic discrete-event simulator, so the event
//! stream of a script is itself deterministic: the same session seed and
//! script produce the exact same event sequence, byte for byte, no matter
//! which sink consumes it (a no-op sink, a bounded channel, a recording
//! test sink) and no matter how slowly the consumer drains it. The
//! guarantees, in order of delivery:
//!
//! 1. [`TelemetryEvent::ScriptStarted`] is always the first event of a
//!    session and [`TelemetryEvent::ScriptDone`] is always the last.
//! 2. Every script op emits [`TelemetryEvent::OpStarted`] when the host
//!    interpreter picks it up. Ops that complete (i.e. were not cut off by
//!    an abort) emit a matching [`TelemetryEvent::OpFinished`]; `Started`
//!    and `Finished` events of the same op bracket every event the op
//!    produced. Op indices are strictly increasing.
//! 3. [`TelemetryEvent::PowerLogEmitted`] fires at the logger's emission
//!    tick, in tick order — the exact logs `RunTrace::power_logs` (or
//!    `coarse_logs`) will contain, in the same order.
//! 4. [`TelemetryEvent::LaunchCompleted`] fires once per timed execution,
//!    when the host observes completion — the exact entries (and order) of
//!    `RunTrace::executions`.
//! 5. [`TelemetryEvent::GpuTimestampRead`] fires when the read is issued —
//!    the exact entries (and order) of `RunTrace::timestamp_reads`.
//!
//! # Abort semantics
//!
//! Abort is *cooperative*: the engine checks the [`AbortHandle`] at host
//! boundaries only — between script ops and between the executions of a
//! timed launch — never mid-kernel, so the device is always quiescent when
//! a session stops. Everything observed before the stop is kept: the
//! returned trace carries every completed execution, emitted log, and
//! timestamp read, and is tagged [`crate::trace::RunTrace::aborted`]. An
//! op cut off by an abort never receives its `OpFinished`; `ScriptDone`
//! reports `aborted: true` and is still delivered last.
//!
//! # Backpressure
//!
//! [`ChannelSink`] sends over a *bounded* [`std::sync::mpsc::sync_channel`]:
//! when the consumer falls behind, the engine blocks inside the sink until
//! a slot frees up. Because the engine is otherwise pure computation (it
//! never takes a lock the consumer could hold), a draining consumer always
//! unblocks it — slow consumers slow the producer down, they cannot
//! deadlock it. A dropped receiver does not kill the session either: the
//! sink silently discards further events and the script runs to
//! completion.
//!
//! The no-deadlock guarantee therefore has one obligation on the
//! consumer: *keep draining or hang up*. A consumer that stops receiving
//! while keeping the `Receiver` alive parks the engine in the full
//! channel, where it cannot reach an abort point. When the consumer is
//! also the one requesting the abort, attach the session's handle to the
//! sink with [`ChannelSink::with_abort`]: once the handle fires, a send
//! that would block drops the event instead, so the engine always reaches
//! its next abort check even if the consumer walked away mid-stream.
//!
//! # Example: abort a session mid-script, keep the partial trace
//!
//! ```
//! use fingrav_sim::config::SimConfig;
//! use fingrav_sim::engine::Simulation;
//! use fingrav_sim::kernel::KernelDesc;
//! use fingrav_sim::power::Activity;
//! use fingrav_sim::script::Script;
//! use fingrav_sim::session::{AbortHandle, TelemetryEvent};
//! use fingrav_sim::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Simulation::new(SimConfig::default(), 11)?;
//! let kernel = sim.register_kernel(KernelDesc {
//!     name: "demo-gemm".into(),
//!     base_exec: SimDuration::from_micros(150),
//!     freq_insensitive_frac: 0.5,
//!     activity: Activity::new(0.6, 0.4, 0.3),
//!     compute_utilization: 0.5,
//!     flops: 1e10,
//!     hbm_bytes: 1e7,
//!     llc_bytes: 1e8,
//!     workgroups: 128,
//! })?;
//! let script = Script::builder()
//!     .begin_run()
//!     .start_power_logger()
//!     .launch_timed(kernel, 64)
//!     .stop_power_logger()
//!     .build();
//!
//! // Fire the abort from inside the sink after the fourth launch: the
//! // engine stops at its next host boundary, never mid-kernel.
//! let abort = AbortHandle::new();
//! let handle = abort.clone();
//! let mut launches = 0u32;
//! let mut sink = |event: TelemetryEvent| {
//!     if matches!(event, TelemetryEvent::LaunchCompleted { .. }) {
//!         launches += 1;
//!         if launches == 4 {
//!             handle.abort();
//!         }
//!     }
//! };
//! let trace = sim.run_script_observed(&script, &mut sink, &abort)?;
//! assert!(trace.aborted, "the trace is tagged as partial");
//! assert_eq!(trace.executions.len(), 4, "completed launches are kept");
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use crate::script::HostOp;
use crate::telemetry::PowerLog;
use crate::trace::{TimedExecution, TimestampRead};

/// One observable moment of a running script session.
///
/// See the [module docs](self) for the ordering guarantees.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TelemetryEvent {
    /// The session began interpreting the script.
    ScriptStarted {
        /// Number of ops in the script.
        ops: usize,
    },
    /// The host interpreter picked up script op `index`.
    OpStarted {
        /// Zero-based index of the op within the script.
        index: usize,
        /// The op itself.
        op: HostOp,
    },
    /// Script op `index` ran to completion (never emitted for the op an
    /// abort cut off).
    OpFinished {
        /// Zero-based index of the op within the script.
        index: usize,
    },
    /// A power logger emitted a log (the same value `RunTrace` collects).
    PowerLogEmitted {
        /// True for the coarse (amd-smi-class) logger, false for the fine
        /// internal logger.
        coarse: bool,
        /// The emitted log.
        log: PowerLog,
    },
    /// The host observed one timed kernel execution complete.
    LaunchCompleted {
        /// The execution record appended to `RunTrace::executions`.
        execution: TimedExecution,
    },
    /// The host read the GPU timestamp counter.
    GpuTimestampRead {
        /// The read appended to `RunTrace::timestamp_reads`.
        read: TimestampRead,
    },
    /// The session ended; always the last event.
    ScriptDone {
        /// True when the session was cut short by an [`AbortHandle`].
        aborted: bool,
    },
}

/// A consumer of [`TelemetryEvent`]s.
///
/// Implementations may block (that is the backpressure contract:
/// [`ChannelSink`] blocks when its bounded channel is full) but must not
/// panic — a sink runs inside the engine's event loop.
///
/// Any `FnMut(TelemetryEvent)` closure is a sink.
pub trait TelemetrySink {
    /// Receives one event, in session order.
    fn on_event(&mut self, event: TelemetryEvent);
}

impl<F: FnMut(TelemetryEvent)> TelemetrySink for F {
    fn on_event(&mut self, event: TelemetryEvent) {
        self(event)
    }
}

/// A sink that discards every event. Running a session with it is
/// bit-identical to the batch `run_script` path (it *is* that path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn on_event(&mut self, _event: TelemetryEvent) {}
}

/// A [`TelemetrySink`] over a bounded channel: the producing engine blocks
/// when the channel is full (backpressure) and keeps running — discarding
/// events — once the receiver is gone.
///
/// Attach the session's abort handle via [`ChannelSink::with_abort`] when
/// the consumer may stop draining after requesting an abort; see the
/// [module docs](self) for the contract.
#[derive(Debug, Clone)]
pub struct ChannelSink {
    tx: SyncSender<TelemetryEvent>,
    disconnected: bool,
    abort: Option<AbortHandle>,
}

impl ChannelSink {
    /// Wraps an existing bounded sender.
    pub fn new(tx: SyncSender<TelemetryEvent>) -> Self {
        ChannelSink {
            tx,
            disconnected: false,
            abort: None,
        }
    }

    /// Creates a bounded event channel of the given capacity and returns
    /// the sink half plus the receiver. Capacity 0 is a rendezvous
    /// channel: the engine blocks until every event is received.
    pub fn bounded(capacity: usize) -> (ChannelSink, Receiver<TelemetryEvent>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (ChannelSink::new(tx), rx)
    }

    /// Makes the sink abort-aware: once `abort` fires, a send that would
    /// block drops its event instead, so a consumer that aborts the
    /// session and then stops draining can never strand the engine in a
    /// full channel. Events already buffered stay readable.
    #[must_use]
    pub fn with_abort(mut self, abort: AbortHandle) -> Self {
        self.abort = Some(abort);
        self
    }
}

impl TelemetrySink for ChannelSink {
    fn on_event(&mut self, event: TelemetryEvent) {
        if self.disconnected {
            return;
        }
        // Fast path, then block for backpressure; a hung-up receiver turns
        // the sink into a no-op instead of erroring the session.
        match self.tx.try_send(event) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => self.disconnected = true,
            Err(TrySendError::Full(event)) => match &self.abort {
                None => {
                    if self.tx.send(event).is_err() {
                        self.disconnected = true;
                    }
                }
                Some(abort) => {
                    // Bounded wait: keep offering the event until a slot
                    // frees, the receiver hangs up, or the abort fires (the
                    // session is stopping; the event no longer matters).
                    let mut event = event;
                    loop {
                        if abort.is_aborted() {
                            return;
                        }
                        match self.tx.try_send(event) {
                            Ok(()) => return,
                            Err(TrySendError::Disconnected(_)) => {
                                self.disconnected = true;
                                return;
                            }
                            Err(TrySendError::Full(e)) => {
                                event = e;
                                std::thread::sleep(std::time::Duration::from_micros(50));
                            }
                        }
                    }
                }
            },
        }
    }
}

/// A cloneable, thread-safe abort flag for cooperative session
/// cancellation.
///
/// Cloning shares the flag: any clone's [`AbortHandle::abort`] is observed
/// by every holder. The engine polls it at host boundaries (see the
/// [module docs](self)); campaign executors reuse the same type as their
/// cancellation token.
#[derive(Debug, Clone, Default)]
pub struct AbortHandle(Arc<AtomicBool>);

impl AbortHandle {
    /// Creates a fresh, un-aborted handle.
    pub fn new() -> Self {
        AbortHandle::default()
    }

    /// Requests a cooperative stop. Idempotent; never blocks.
    pub fn abort(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`AbortHandle::abort`] has been called on any clone.
    pub fn is_aborted(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::ComponentPower;
    use crate::time::GpuTicks;

    fn log() -> PowerLog {
        PowerLog {
            ticks: GpuTicks::from_raw(7),
            avg: ComponentPower::new(1.0, 2.0, 3.0, 4.0),
        }
    }

    #[test]
    fn abort_handle_is_shared_across_clones() {
        let a = AbortHandle::new();
        let b = a.clone();
        assert!(!a.is_aborted());
        b.abort();
        assert!(a.is_aborted());
        b.abort(); // idempotent
        assert!(b.is_aborted());
    }

    #[test]
    fn channel_sink_delivers_in_order() {
        let (mut sink, rx) = ChannelSink::bounded(8);
        sink.on_event(TelemetryEvent::ScriptStarted { ops: 2 });
        sink.on_event(TelemetryEvent::ScriptDone { aborted: false });
        drop(sink);
        let events: Vec<_> = rx.iter().collect();
        assert_eq!(
            events,
            vec![
                TelemetryEvent::ScriptStarted { ops: 2 },
                TelemetryEvent::ScriptDone { aborted: false },
            ]
        );
    }

    #[test]
    fn channel_sink_blocks_until_drained_then_survives_hangup() {
        let (mut sink, rx) = ChannelSink::bounded(1);
        let producer = std::thread::spawn(move || {
            for _ in 0..64 {
                sink.on_event(TelemetryEvent::PowerLogEmitted {
                    coarse: false,
                    log: log(),
                });
            }
            sink
        });
        // Drain a prefix slowly, then hang up mid-stream.
        for _ in 0..10 {
            rx.recv().expect("producer is live");
        }
        drop(rx);
        let mut sink = producer.join().expect("producer finishes despite hangup");
        // Further sends are silently discarded.
        sink.on_event(TelemetryEvent::ScriptDone { aborted: false });
    }

    #[test]
    fn abort_aware_sink_drops_instead_of_blocking_once_aborted() {
        let abort = AbortHandle::new();
        let (sink, rx) = ChannelSink::bounded(1);
        let mut sink = sink.with_abort(abort.clone());
        sink.on_event(TelemetryEvent::ScriptStarted { ops: 1 }); // fills the buffer
        abort.abort();
        // Without abort-awareness this would block forever: the buffer is
        // full and nobody is draining.
        sink.on_event(TelemetryEvent::ScriptDone { aborted: true });
        assert_eq!(rx.try_recv(), Ok(TelemetryEvent::ScriptStarted { ops: 1 }));
        assert!(rx.try_recv().is_err(), "the post-abort event was dropped");
    }

    #[test]
    fn abort_fired_while_blocked_unparks_the_sender() {
        let abort = AbortHandle::new();
        let (sink, rx) = ChannelSink::bounded(1);
        let mut sink = sink.with_abort(abort.clone());
        let producer = std::thread::spawn(move || {
            sink.on_event(TelemetryEvent::ScriptStarted { ops: 1 });
            // Blocks in the bounded-wait loop until the abort fires.
            sink.on_event(TelemetryEvent::ScriptDone { aborted: true });
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        abort.abort();
        producer.join().expect("producer unparks without a drain");
        drop(rx);
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0usize;
        {
            let mut sink = |_e: TelemetryEvent| seen += 1;
            let dyn_sink: &mut dyn TelemetrySink = &mut sink;
            dyn_sink.on_event(TelemetryEvent::ScriptStarted { ops: 0 });
            dyn_sink.on_event(TelemetryEvent::ScriptDone { aborted: false });
        }
        assert_eq!(seen, 2);
    }
}
