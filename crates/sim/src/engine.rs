//! The simulation engine: couples the host, device, firmware, thermal model,
//! and telemetry on a single discrete-event timeline.
//!
//! A [`Simulation`] persists across scripts — clocks keep advancing, the die
//! stays warm, the power-management firmware remembers its state — exactly
//! like a long-lived profiling session on a real node. Each call to
//! [`Simulation::run_script`] interprets one host-side [`Script`] and
//! returns the observable [`RunTrace`].

use std::collections::VecDeque;

use crate::clock::{CpuClock, GpuClock};
use crate::config::SimConfig;
use crate::device::GpuDevice;
use crate::dvfs::{PmFirmware, PmInput};
use crate::error::{SimError, SimResult};
use crate::event::{HybridQueue, Popped};
use crate::kernel::{KernelDesc, KernelHandle};
use crate::power::{FreqFactors, PowerModel};
use crate::rng::SimRng;
use crate::script::{HostOp, Script};
use crate::session::{AbortHandle, NoopSink, TelemetryEvent, TelemetrySink};
use crate::telemetry::AveragingPowerLogger;
use crate::thermal::ThermalState;
use crate::time::{CpuTime, SimDuration, SimTime};
use crate::trace::{RunTrace, TimedExecution, TimestampRead, TrueExecution};

/// Periodic slots of the hot-loop queue: the four free-running
/// telemetry/control streams occupy fixed O(1) cursors in the
/// [`HybridQueue`]; only the irregular host/kernel events below go
/// through its heap half.
const SLOT_SENSOR: usize = 0;
const SLOT_PM_TICK: usize = 1;
const SLOT_LOGGER_EMIT: usize = 2;
const SLOT_COARSE_EMIT: usize = 3;
/// Number of periodic slots.
const PERIODIC_SLOTS: usize = 4;

/// Irregular simulator events (the heap half of the queue); the strictly
/// periodic streams are the `SLOT_*` cursors above.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Host continues execution.
    HostResume(HostPhase),
    /// The running kernel (of this generation) finishes.
    KernelEnd { generation: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum HostPhase {
    /// Interpret the next script operation.
    NextOp,
    /// Dispatch latency elapsed: the kernel begins on the GPU.
    KernelBegin,
    /// Completion latency elapsed: the host observes the kernel end.
    KernelComplete,
}

#[derive(Debug)]
struct LaunchState {
    kernel: KernelHandle,
    total: u32,
    completed: u32,
    cpu_start_pending: CpuTime,
}

#[derive(Debug)]
struct ScriptState {
    ops: Vec<HostOp>,
    op_idx: usize,
    launch: Option<LaunchState>,
    trace: RunTrace,
    done: bool,
    /// Index of the blocking op in flight, for `OpFinished` emission.
    pending_op: Option<usize>,
    /// Set when an abort cut the script short.
    aborted: bool,
}

/// Cumulative hot-loop counters for one simulated session.
///
/// Harvested by the campaign executor after each entry so fleet-mode
/// workers can report engine throughput alongside their results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped off the queue across all scripts run so far.
    pub events_popped: u64,
    /// High-water mark of the pending-event count.
    pub max_queue_depth: usize,
    /// Scripts run to completion (including aborted ones).
    pub scripts_run: u64,
}

/// Loop-invariant values hoisted out of the per-event handlers: periods,
/// window lengths, fallback constants, and the sensor-cadence thermal
/// decay are fixed for the life of a session (the configuration is
/// immutable after construction), so the hot loop never re-derives them.
#[derive(Debug, Clone, Copy)]
struct HotLoop {
    sensor_period: SimDuration,
    pm_period: SimDuration,
    logger_period: SimDuration,
    coarse_period: SimDuration,
    power_window: SimDuration,
    /// Busy detection reacts fast (a couple of control periods); only
    /// the cap decision uses the long slow-PPT power window.
    busy_window: SimDuration,
    /// `idle_for` handed to the firmware when the device has never run.
    idle_fallback: SimDuration,
    /// Thermal relaxation factor for one sensor period.
    sensor_decay: f64,
    completion_latency: SimDuration,
    record_instant_trace: bool,
}

/// A persistent simulated profiling session on one GPU.
///
/// # Examples
///
/// ```
/// use fingrav_sim::config::SimConfig;
/// use fingrav_sim::engine::Simulation;
/// use fingrav_sim::kernel::KernelDesc;
/// use fingrav_sim::power::Activity;
/// use fingrav_sim::script::Script;
/// use fingrav_sim::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = Simulation::new(SimConfig::default(), 42)?;
/// let kernel = sim.register_kernel(KernelDesc {
///     name: "demo".into(),
///     base_exec: SimDuration::from_micros(200),
///     freq_insensitive_frac: 0.2,
///     activity: Activity::new(0.9, 0.5, 0.4),
///     compute_utilization: 0.8,
///     flops: 1e11,
///     hbm_bytes: 4e8,
///     llc_bytes: 1e9,
///     workgroups: 1024,
/// })?;
/// let script = Script::builder()
///     .begin_run()
///     .start_power_logger()
///     .launch_timed(kernel, 8)
///     .sleep(SimDuration::from_millis(2))
///     .stop_power_logger()
///     .build();
/// let trace = sim.run_script(&script)?;
/// assert_eq!(trace.executions.len(), 8);
/// assert!(!trace.power_logs.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    master_seed: u64,
    now: SimTime,
    queue: HybridQueue<Event, PERIODIC_SLOTS>,
    cpu_clock: CpuClock,
    gpu_clock: GpuClock,
    device: GpuDevice,
    power_model: PowerModel,
    thermal: ThermalState,
    pm: PmFirmware,
    logger: AveragingPowerLogger,
    coarse: AveragingPowerLogger,
    /// Rolling instantaneous total power for the PM window.
    pm_hist: VecDeque<(SimTime, f64)>,
    rng: SimRng,
    script: Option<ScriptState>,
    hot: HotLoop,
    /// Frequency-dependent power factors cached on the exact bit pattern
    /// of the core frequency they were computed for: DVFS moves a few
    /// dozen times per run while the sensor fires thousands of times.
    freq_cache: (u64, FreqFactors),
    /// Pooled ops buffer, reused across scripts instead of a per-run
    /// `to_vec`.
    ops_scratch: Vec<HostOp>,
    stats: EngineStats,
}

impl Simulation {
    /// Creates a session with the given configuration and master seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(cfg: SimConfig, seed: u64) -> SimResult<Self> {
        cfg.validate()
            .map_err(|reason| SimError::InvalidConfig { reason })?;
        let cpu_clock = CpuClock::new(cfg.clocks.cpu_boot_offset_ns);
        let gpu_clock = GpuClock::new(
            cfg.clocks.gpu_counter_hz,
            cfg.clocks.gpu_drift_ppm,
            cfg.clocks.gpu_epoch_ticks,
        );
        let device = GpuDevice::new(cfg.variation.clone(), cfg.pm.f_max_mhz, cfg.pm.idle_f_mhz);
        let power_model = PowerModel::new(cfg.power.clone());
        let thermal = ThermalState::new(cfg.thermal);
        let pm = PmFirmware::new(cfg.pm);
        let logger = AveragingPowerLogger::new(cfg.telemetry.logger_window);
        let coarse = AveragingPowerLogger::new(cfg.telemetry.coarse_window);
        let hot = HotLoop {
            sensor_period: cfg.telemetry.sensor_period,
            pm_period: cfg.pm.control_period,
            logger_period: cfg.telemetry.logger_period,
            coarse_period: cfg.telemetry.coarse_period,
            power_window: cfg.pm.power_window,
            busy_window: cfg.pm.control_period * 2,
            idle_fallback: SimDuration::from_millis(1_000_000),
            sensor_decay: thermal.decay_for(cfg.telemetry.sensor_period.as_secs_f64()),
            completion_latency: cfg.host.completion_latency,
            record_instant_trace: cfg.telemetry.record_instant_trace,
        };
        let f0 = device.f_mhz();
        let freq_cache = (f0.to_bits(), power_model.freq_factors(f0));
        Ok(Simulation {
            now: SimTime::ZERO,
            master_seed: seed,
            queue: HybridQueue::new(),
            cpu_clock,
            gpu_clock,
            device,
            power_model,
            thermal,
            pm,
            logger,
            coarse,
            pm_hist: VecDeque::new(),
            rng: SimRng::from_streams(seed, 0),
            script: None,
            hot,
            freq_cache,
            ops_scratch: Vec::new(),
            stats: EngineStats::default(),
            cfg,
        })
    }

    /// The master seed this session was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Forks an isolated, reproducible sibling device for shard `stream`.
    ///
    /// The fork shares this session's configuration but starts from a cold
    /// boot with its own deterministic seed
    /// (`mix_seed(master_seed, stream)`), so concurrent shards of a
    /// campaign draw statistically independent noise yet reproduce exactly
    /// across runs and across serial/parallel execution orders. Nothing of
    /// the parent's mutable state (heat, clock ramp, registered kernels)
    /// carries over — each shard is a fresh profiling session, which is
    /// precisely the isolation the paper's measurement guidance #2 demands.
    ///
    /// Construction is cheap (no allocations beyond a handful of empty
    /// queues), so forking per kernel in a many-kernel campaign costs
    /// microseconds against seconds of profiling work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the (shared) configuration
    /// fails validation.
    pub fn fork(&self, stream: u64) -> SimResult<Simulation> {
        Simulation::new(
            self.cfg.clone(),
            crate::rng::mix_seed(self.master_seed, stream),
        )
    }

    /// The session configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulation time (ground truth; tests only).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground-truth CPU clock (tests only — the methodology must not use it).
    pub fn cpu_clock(&self) -> &CpuClock {
        &self.cpu_clock
    }

    /// Ground-truth GPU clock (tests only — the methodology must not use it).
    pub fn gpu_clock(&self) -> &GpuClock {
        &self.gpu_clock
    }

    /// The power model in effect.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// Current die temperature, °C (ground truth).
    pub fn temp_c(&self) -> f64 {
        self.thermal.temp_c()
    }

    /// Current core frequency, MHz (ground truth).
    pub fn f_mhz(&self) -> f64 {
        self.device.f_mhz()
    }

    /// Cumulative hot-loop counters for this session: events popped,
    /// queue-depth high-water mark, scripts completed.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            max_queue_depth: self.queue.high_water(),
            ..self.stats
        }
    }

    /// Registers a kernel for launching, validating its descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidKernel`] if the descriptor is invalid.
    pub fn register_kernel(&mut self, desc: KernelDesc) -> SimResult<KernelHandle> {
        self.device
            .register_kernel(desc)
            .map_err(|reason| SimError::InvalidKernel { reason })
    }

    /// Looks up a registered kernel descriptor.
    pub fn kernel(&self, handle: KernelHandle) -> Option<&KernelDesc> {
        self.device.kernel(handle)
    }

    /// Runs one host script to completion and returns its trace — the
    /// batch entry point, equivalent to a streaming session with a no-op
    /// sink (it *is* one; the traces are bit-identical).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownKernel`] if the script launches an
    /// unregistered kernel.
    pub fn run_script(&mut self, script: &Script) -> SimResult<RunTrace> {
        self.run_script_observed(script, &mut NoopSink, &AbortHandle::new())
    }

    /// Runs one host script as a streaming session: every observable
    /// moment (op start/finish, log emission, launch completion, timestamp
    /// read) is pushed into `sink` *while the script runs*, and `abort`
    /// requests a cooperative stop at the next host boundary.
    ///
    /// With a [`NoopSink`] and a never-fired abort this is bit-identical
    /// to [`Simulation::run_script`]: event emission never touches the
    /// RNG or the event queue. An aborted session returns a well-formed
    /// partial trace tagged [`RunTrace::aborted`]; because aborts only
    /// take effect between ops and between launch executions, the device
    /// is always quiescent afterwards and the session remains usable.
    ///
    /// The loop is monomorphized over the sink type: statically-known
    /// sinks (closures, [`NoopSink`]) inline their `on_event` into the
    /// loop body, while object-safe callers can still pass
    /// `&mut dyn TelemetrySink` (`S = dyn TelemetrySink`).
    ///
    /// See [`crate::session`] for the event-ordering guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownKernel`] if the script launches an
    /// unregistered kernel.
    pub fn run_script_observed<S: TelemetrySink + ?Sized>(
        &mut self,
        script: &Script,
        sink: &mut S,
        abort: &AbortHandle,
    ) -> SimResult<RunTrace> {
        // Validate all kernel references up front, counting the expected
        // trace sizes in the same pass so the vectors never regrow.
        let mut expected_execs = 0usize;
        let mut expected_reads = 0usize;
        for op in script.ops() {
            match op {
                HostOp::LaunchTimed { kernel, executions } => {
                    if self.device.kernel(*kernel).is_none() {
                        return Err(SimError::UnknownKernel {
                            index: kernel.index(),
                        });
                    }
                    expected_execs += *executions as usize;
                }
                HostOp::ReadGpuTimestamp => expected_reads += 1,
                _ => {}
            }
        }

        let mut ops = std::mem::take(&mut self.ops_scratch);
        ops.clear();
        ops.extend_from_slice(script.ops());
        let mut trace = RunTrace::default();
        trace.executions.reserve(expected_execs);
        trace.truth.executions.reserve(expected_execs);
        trace.timestamp_reads.reserve(expected_reads);
        // DVFS moves a few dozen times per run at most.
        trace.truth.freq_changes.reserve(32);

        self.script = Some(ScriptState {
            ops,
            op_idx: 0,
            launch: None,
            trace,
            done: false,
            pending_op: None,
            aborted: false,
        });

        // Seed the recurring background events on their global grids so the
        // loggers are effectively free-running across scripts.
        self.arm_on_grid(self.hot.sensor_period, SLOT_SENSOR);
        self.arm_on_grid(self.hot.pm_period, SLOT_PM_TICK);
        self.arm_on_grid(self.hot.logger_period, SLOT_LOGGER_EMIT);
        self.arm_on_grid(self.hot.coarse_period, SLOT_COARSE_EMIT);

        // Record the initial frequency so the truth timeline has an origin.
        let f0 = self.device.f_mhz();
        if let Some(s) = self.script.as_mut() {
            s.trace.truth.freq_changes.push((self.now, f0));
        }

        sink.on_event(TelemetryEvent::ScriptStarted {
            ops: script.ops().len(),
        });

        // Kick off the host immediately.
        self.handle_host(HostPhase::NextOp, sink, abort);

        while !self.script.as_ref().expect("script in progress").done {
            let (t, ev) = self
                .queue
                .pop()
                .expect("no pending events while the script is blocked");
            debug_assert!(t >= self.now, "event time precedes current time");
            self.now = t;
            self.stats.events_popped += 1;
            match ev {
                Popped::Periodic(SLOT_SENSOR) => self.handle_sensor(),
                Popped::Periodic(SLOT_PM_TICK) => self.handle_pm_tick(),
                Popped::Periodic(SLOT_LOGGER_EMIT) => self.handle_logger_emit(sink),
                Popped::Periodic(SLOT_COARSE_EMIT) => self.handle_coarse_emit(sink),
                Popped::Periodic(slot) => unreachable!("unknown periodic slot {slot}"),
                Popped::Irregular(Event::HostResume(phase)) => {
                    self.handle_host(phase, sink, abort);
                }
                Popped::Irregular(Event::KernelEnd { generation }) => {
                    self.handle_kernel_end(generation);
                }
            }
        }

        let mut state = self.script.take().expect("script state");
        // Return the ops buffer to the pool for the next script.
        self.ops_scratch = std::mem::take(&mut state.ops);
        state.trace.aborted = state.aborted;
        state.trace.power_logs = self.logger.drain_logs();
        state.trace.coarse_logs = self.coarse.drain_logs();
        state.trace.truth.final_temp_c = self.thermal.temp_c();
        // Drop leftover background/stale events; the next script reseeds.
        self.queue.clear();
        self.stats.scripts_run += 1;
        sink.on_event(TelemetryEvent::ScriptDone {
            aborted: state.aborted,
        });
        Ok(state.trace)
    }

    /// Convenience: advance the session through `d` of host idle time.
    ///
    /// # Errors
    ///
    /// Propagates script-execution errors (none are possible for a sleep).
    pub fn advance_idle(&mut self, d: SimDuration) -> SimResult<()> {
        let script = Script::builder().sleep(d).build();
        self.run_script(&script).map(|_| ())
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    /// Arms a periodic slot on its global grid, exactly where the old
    /// heap-based queue scheduled the matching event: both the seeding at
    /// script start and the re-arm after each firing use the same
    /// `(now / p + 1) · p` formula (for a firing at a multiple of `p`
    /// this equals `t + p`), so the sequence counter advances at
    /// identical program points and FIFO tie order is preserved.
    fn arm_on_grid(&mut self, period: SimDuration, slot: usize) {
        let p = period.as_nanos();
        let next = (self.now.as_nanos() / p + 1) * p;
        self.queue.arm(slot, SimTime::from_nanos(next));
    }

    /// Re-arms a periodic slot from inside its own handler, where `now` is
    /// the slot's armed firing time and therefore already a multiple of
    /// `period` — so `now + period` equals [`Simulation::arm_on_grid`]'s
    /// `(now / p + 1) · p` exactly, without the division. The division-free
    /// form matters: the grid divide was the single largest per-event cost
    /// left in the loop (one `u64` divide per periodic event).
    fn rearm_from_handler(&mut self, period: SimDuration, slot: usize) {
        debug_assert_eq!(
            self.now.as_nanos() % period.as_nanos(),
            0,
            "periodic handler fired off its own grid"
        );
        self.queue.arm(
            slot,
            SimTime::from_nanos(self.now.as_nanos() + period.as_nanos()),
        );
    }

    fn handle_sensor(&mut self) {
        let t = self.now;
        let f = self.device.f_mhz();
        if f.to_bits() != self.freq_cache.0 {
            self.freq_cache = (f.to_bits(), self.power_model.freq_factors(f));
        }
        let power = self.power_model.instantaneous_with(
            self.device.activity(),
            self.freq_cache.1,
            self.thermal.temp_c(),
        );
        self.thermal
            .step_decayed(self.hot.sensor_decay, power.total());
        self.logger.push_sample(t, power);
        self.coarse.push_sample(t, power);

        self.pm_hist.push_back((t, power.total()));
        let cutoff = t.saturating_sub(self.hot.power_window);
        while let Some(&(front, _)) = self.pm_hist.front() {
            if front < cutoff {
                self.pm_hist.pop_front();
            } else {
                break;
            }
        }

        if self.hot.record_instant_trace {
            if let Some(s) = self.script.as_mut() {
                s.trace.truth.instant_power.push((t, power));
            }
        }
        self.rearm_from_handler(self.hot.sensor_period, SLOT_SENSOR);
    }

    fn handle_pm_tick(&mut self) {
        let t = self.now;
        let busy_in_window = self.device.busy_within(t, self.hot.busy_window);
        // The firmware's idle path never reads the window average (a
        // documented contract of `PmFirmware::tick`), so the O(window)
        // fold is skipped on idle control ticks; NaN poisons any
        // accidental read.
        let avg_power_w = if !busy_in_window {
            f64::NAN
        } else if self.pm_hist.is_empty() {
            self.power_model
                .idle_power(self.device.f_mhz(), self.thermal.temp_c())
                .total()
        } else {
            self.pm_hist.iter().map(|&(_, p)| p).sum::<f64>() / self.pm_hist.len() as f64
        };
        let idle_for = self.device.idle_for(t).unwrap_or(self.hot.idle_fallback);
        let new_f = self.pm.tick(PmInput {
            avg_power_w,
            busy_in_window,
            idle_for,
        });
        if (new_f - self.device.f_mhz()).abs() > f64::EPSILON {
            if let Some(s) = self.script.as_mut() {
                s.trace.truth.freq_changes.push((t, new_f));
            }
            if let Some((generation, end)) = self.device.set_frequency(new_f, t) {
                self.queue.schedule(end, Event::KernelEnd { generation });
            }
        }
        self.rearm_from_handler(self.hot.pm_period, SLOT_PM_TICK);
    }

    fn handle_logger_emit<S: TelemetrySink + ?Sized>(&mut self, sink: &mut S) {
        let ticks = self.gpu_clock.ticks_at(self.now);
        if let Some(log) = self.logger.emit(self.now, ticks) {
            sink.on_event(TelemetryEvent::PowerLogEmitted { coarse: false, log });
        }
        self.rearm_from_handler(self.hot.logger_period, SLOT_LOGGER_EMIT);
    }

    fn handle_coarse_emit<S: TelemetrySink + ?Sized>(&mut self, sink: &mut S) {
        let ticks = self.gpu_clock.ticks_at(self.now);
        if let Some(log) = self.coarse.emit(self.now, ticks) {
            sink.on_event(TelemetryEvent::PowerLogEmitted { coarse: true, log });
        }
        self.rearm_from_handler(self.hot.coarse_period, SLOT_COARSE_EMIT);
    }

    fn handle_kernel_end(&mut self, generation: u64) {
        let t = self.now;
        if let Some(record) = self.device.complete(generation, t) {
            let completion = self.hot.completion_latency;
            let s = self.script.as_mut().expect("script in progress");
            let index = s.launch.as_ref().map(|l| l.completed).unwrap_or(u32::MAX);
            s.trace.truth.executions.push(TrueExecution {
                kernel: record.kernel,
                start: record.start,
                end: record.end,
                index,
                execs_since_cold: record.execs_since_cold,
                outlier: record.outlier,
            });
            self.queue
                .schedule(t + completion, Event::HostResume(HostPhase::KernelComplete));
        }
        // Stale generation: a frequency change rescheduled the completion.
    }

    /// Reads the host CPU clock with timer noise.
    fn cpu_now_noisy(&mut self, t: SimTime) -> CpuTime {
        let noise = if self.cfg.host.timer_noise_ns > 0.0 {
            self.rng.normal(0.0, self.cfg.host.timer_noise_ns).round() as i64
        } else {
            0
        };
        self.cpu_clock.now(t).offset_nanos(noise)
    }

    fn start_dispatch(&mut self) {
        let t = self.now;
        let cpu_start = self.cpu_now_noisy(t);
        let jitter = self.cfg.host.dispatch_jitter_frac;
        let factor = 1.0 + self.rng.uniform(-jitter, jitter);
        let d = self.cfg.host.dispatch_latency.mul_f64(factor.max(0.0));
        let s = self.script.as_mut().expect("script in progress");
        s.launch
            .as_mut()
            .expect("launch in progress")
            .cpu_start_pending = cpu_start;
        self.queue
            .schedule(t + d, Event::HostResume(HostPhase::KernelBegin));
    }

    fn handle_host<S: TelemetrySink + ?Sized>(
        &mut self,
        phase: HostPhase,
        sink: &mut S,
        abort: &AbortHandle,
    ) {
        let t = self.now;
        match phase {
            HostPhase::KernelBegin => {
                let kernel = self
                    .script
                    .as_ref()
                    .and_then(|s| s.launch.as_ref())
                    .expect("launch in progress")
                    .kernel;
                let (generation, end) = self.device.begin_execution(kernel, t, &mut self.rng);
                self.queue.schedule(end, Event::KernelEnd { generation });
            }
            HostPhase::KernelComplete => {
                let cpu_end = self.cpu_now_noisy(t);
                let s = self.script.as_mut().expect("script in progress");
                let launch = s.launch.as_mut().expect("launch in progress");
                let execution = TimedExecution {
                    kernel: launch.kernel,
                    index: launch.completed,
                    cpu_start: launch.cpu_start_pending,
                    cpu_end,
                };
                s.trace.executions.push(execution);
                launch.completed += 1;
                let finished = launch.completed >= launch.total;
                sink.on_event(TelemetryEvent::LaunchCompleted { execution });
                if finished {
                    self.script.as_mut().expect("script").launch = None;
                    self.process_ops(sink, abort);
                } else if abort.is_aborted() {
                    // Cooperative stop between executions: the launch op is
                    // cut off (no OpFinished), the device is quiescent.
                    let s = self.script.as_mut().expect("script");
                    s.launch = None;
                    s.pending_op = None;
                    s.done = true;
                    s.aborted = true;
                } else {
                    self.start_dispatch();
                }
            }
            HostPhase::NextOp => self.process_ops(sink, abort),
        }
    }

    /// Emits the `OpFinished` of the blocking op that just completed, if
    /// one is pending.
    fn finish_pending_op<S: TelemetrySink + ?Sized>(&mut self, sink: &mut S) {
        if let Some(index) = self.script.as_mut().and_then(|s| s.pending_op.take()) {
            sink.on_event(TelemetryEvent::OpFinished { index });
        }
    }

    /// Interprets script operations until one blocks (schedules a resume
    /// event), the script ends, or an abort is observed at an op boundary.
    fn process_ops<S: TelemetrySink + ?Sized>(&mut self, sink: &mut S, abort: &AbortHandle) {
        self.finish_pending_op(sink);
        loop {
            let t = self.now;
            let (op_idx, op) = {
                let s = self.script.as_ref().expect("script in progress");
                match s.ops.get(s.op_idx) {
                    Some(op) => (s.op_idx, *op),
                    None => {
                        // Out of ops: the script *finished*. This is
                        // checked before the abort flag so a request that
                        // lands during the final op never mislabels a
                        // complete trace as aborted.
                        self.script.as_mut().expect("script").done = true;
                        return;
                    }
                }
            };
            if abort.is_aborted() {
                let s = self.script.as_mut().expect("script in progress");
                s.done = true;
                s.aborted = true;
                return;
            }
            sink.on_event(TelemetryEvent::OpStarted { index: op_idx, op });
            match op {
                HostOp::Sleep(d) => {
                    self.advance_op(Some(op_idx));
                    self.queue
                        .schedule(t + d, Event::HostResume(HostPhase::NextOp));
                    return;
                }
                HostOp::SleepUniform { min, max } => {
                    let ns = self.rng.uniform_u64(min.as_nanos(), max.as_nanos());
                    self.advance_op(Some(op_idx));
                    self.queue.schedule(
                        t + SimDuration::from_nanos(ns),
                        Event::HostResume(HostPhase::NextOp),
                    );
                    return;
                }
                HostOp::ReadGpuTimestamp => {
                    let jitter = self.cfg.host.timestamp_rtt_jitter_frac;
                    let factor = 1.0 + self.rng.uniform(-jitter, jitter);
                    let rtt = self.cfg.host.timestamp_rtt.mul_f64(factor.max(0.0));
                    let sample_at = t + rtt.mul_f64(self.cfg.host.timestamp_sample_frac);
                    let ticks = self.gpu_clock.ticks_at(sample_at);
                    let cpu_before = self.cpu_now_noisy(t);
                    let cpu_after = self.cpu_now_noisy(t + rtt);
                    let read = TimestampRead {
                        cpu_before,
                        cpu_after,
                        ticks,
                    };
                    let s = self.script.as_mut().expect("script in progress");
                    s.trace.timestamp_reads.push(read);
                    sink.on_event(TelemetryEvent::GpuTimestampRead { read });
                    self.advance_op(Some(op_idx));
                    self.queue
                        .schedule(t + rtt, Event::HostResume(HostPhase::NextOp));
                    return;
                }
                HostOp::LaunchTimed { kernel, executions } => {
                    if executions == 0 {
                        self.advance_op(None);
                        sink.on_event(TelemetryEvent::OpFinished { index: op_idx });
                        continue;
                    }
                    self.advance_op(Some(op_idx));
                    self.script.as_mut().expect("script").launch = Some(LaunchState {
                        kernel,
                        total: executions,
                        completed: 0,
                        cpu_start_pending: CpuTime::from_nanos(0),
                    });
                    self.start_dispatch();
                    return;
                }
                HostOp::StartPowerLogger => {
                    self.logger.set_enabled(true);
                    self.advance_op(None);
                    sink.on_event(TelemetryEvent::OpFinished { index: op_idx });
                }
                HostOp::StopPowerLogger => {
                    self.logger.set_enabled(false);
                    self.advance_op(None);
                    sink.on_event(TelemetryEvent::OpFinished { index: op_idx });
                }
                HostOp::StartCoarseLogger => {
                    self.coarse.set_enabled(true);
                    self.advance_op(None);
                    sink.on_event(TelemetryEvent::OpFinished { index: op_idx });
                }
                HostOp::StopCoarseLogger => {
                    self.coarse.set_enabled(false);
                    self.advance_op(None);
                    sink.on_event(TelemetryEvent::OpFinished { index: op_idx });
                }
                HostOp::BeginRun => {
                    self.device.begin_run(&mut self.rng);
                    self.advance_op(None);
                    sink.on_event(TelemetryEvent::OpFinished { index: op_idx });
                }
            }
        }
    }

    /// Advances past the current op, recording it as the in-flight
    /// blocking op when `pending` is set (its `OpFinished` fires when the
    /// host resumes).
    fn advance_op(&mut self, pending: Option<usize>) {
        let s = self.script.as_mut().expect("script in progress");
        s.op_idx += 1;
        s.pending_op = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::Activity;

    fn gemm_like(base_us: u64, cf: f64, activity: Activity) -> KernelDesc {
        KernelDesc {
            name: format!("k-{base_us}us"),
            base_exec: SimDuration::from_micros(base_us),
            freq_insensitive_frac: cf,
            activity,
            compute_utilization: 0.8,
            flops: 1e11,
            hbm_bytes: 4e8,
            llc_bytes: 1e9,
            workgroups: 1024,
        }
    }

    fn heavy() -> KernelDesc {
        gemm_like(1600, 0.12, Activity::new(0.95, 0.5, 0.7))
    }

    fn light() -> KernelDesc {
        gemm_like(30, 0.85, Activity::new(0.25, 0.5, 0.35))
    }

    fn sim(seed: u64) -> Simulation {
        Simulation::new(SimConfig::default(), seed).unwrap()
    }

    fn det_sim(seed: u64) -> Simulation {
        Simulation::new(SimConfig::deterministic(), seed).unwrap()
    }

    #[test]
    fn empty_script_is_a_noop() {
        let mut s = sim(1);
        let trace = s.run_script(&Script::new()).unwrap();
        assert!(trace.executions.is_empty());
        assert!(trace.power_logs.is_empty());
    }

    #[test]
    fn sleep_advances_time() {
        let mut s = sim(1);
        let before = s.now();
        s.advance_idle(SimDuration::from_millis(5)).unwrap();
        assert!(s.now() >= before + SimDuration::from_millis(5));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let mut s = sim(1);
        let bogus = Script::builder()
            .launch_timed(KernelHandle::default(), 1)
            .build();
        assert!(matches!(
            s.run_script(&bogus),
            Err(SimError::UnknownKernel { .. })
        ));
    }

    #[test]
    fn executions_are_timed_and_counted() {
        let mut s = det_sim(1);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder().begin_run().launch_timed(k, 5).build();
        let trace = s.run_script(&script).unwrap();
        assert_eq!(trace.executions.len(), 5);
        assert_eq!(trace.truth.executions.len(), 5);
        for (i, e) in trace.executions.iter().enumerate() {
            assert_eq!(e.index, i as u32);
            assert!(e.duration_ns() > 0);
        }
        // CPU-observed duration is GPU time plus overheads.
        let truth = trace.truth.executions[4].duration().as_nanos();
        let cpu = trace.executions[4].duration_ns();
        assert!(cpu > truth, "cpu {cpu} vs truth {truth}");
        assert!(cpu < truth + 20_000, "overheads should be microseconds");
    }

    #[test]
    fn power_logs_emitted_once_per_period() {
        let mut s = sim(2);
        let k = s.register_kernel(heavy()).unwrap();
        let script = Script::builder()
            .start_power_logger()
            .launch_timed(k, 4)
            .sleep(SimDuration::from_millis(1))
            .stop_power_logger()
            .build();
        let trace = s.run_script(&script).unwrap();
        // ~4 executions x 1.6ms+ plus sleep: expect at least 6 logs.
        assert!(
            trace.power_logs.len() >= 6,
            "{} logs",
            trace.power_logs.len()
        );
        // Tick stamps strictly increase.
        for w in trace.power_logs.windows(2) {
            assert!(w[1].ticks.as_raw() > w[0].ticks.as_raw());
        }
    }

    #[test]
    fn logger_disabled_means_no_logs() {
        let mut s = sim(3);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder()
            .launch_timed(k, 10)
            .sleep(SimDuration::from_millis(3))
            .build();
        let trace = s.run_script(&script).unwrap();
        assert!(trace.power_logs.is_empty());
    }

    #[test]
    fn heavy_kernel_triggers_throttling() {
        let mut cfg = SimConfig::default();
        cfg.telemetry.record_instant_trace = true;
        let mut s = Simulation::new(cfg, 4).unwrap();
        let k = s.register_kernel(heavy()).unwrap();
        let script = Script::builder().begin_run().launch_timed(k, 10).build();
        let trace = s.run_script(&script).unwrap();
        let freqs: Vec<f64> = trace.truth.freq_changes.iter().map(|&(_, f)| f).collect();
        let cfg = SimConfig::default();
        // The clock ramps well out of idle...
        let max_f = freqs.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max_f > 1400.0, "should ramp well above idle, max {max_f}");
        // ...but never to full boost: the cap engages first and throttles.
        let peak_idx = freqs.iter().position(|&f| f >= max_f).expect("peak");
        let min_after = freqs[peak_idx..].iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            min_after < max_f - cfg.pm.throttle_step_mhz * 0.9,
            "should throttle after the peak: max {max_f}, min after {min_after}"
        );
        // Instantaneous power transiently exceeds the cap (the Fig. 6 spike).
        let peak_power = trace
            .truth
            .instant_power
            .iter()
            .map(|(_, p)| p.total())
            .fold(0.0_f64, f64::max);
        assert!(
            peak_power > cfg.pm.power_cap_w,
            "peak instantaneous power {peak_power} should exceed the cap"
        );
    }

    #[test]
    fn light_kernel_does_not_hit_deep_throttle() {
        let mut s = sim(5);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder().launch_timed(k, 50).build();
        let trace = s.run_script(&script).unwrap();
        let min_f = trace
            .truth
            .freq_changes
            .iter()
            .map(|&(_, f)| f)
            .fold(f64::MAX, f64::min);
        // Ramp starts at idle frequency; it must never fall below that while
        // running a light kernel.
        assert!(min_f >= SimConfig::default().pm.idle_f_mhz - 1.0);
    }

    #[test]
    fn deterministic_sessions_reproduce_exactly() {
        let run = |seed| {
            let mut s = sim(seed);
            let k = s.register_kernel(heavy()).unwrap();
            let script = Script::builder()
                .begin_run()
                .start_power_logger()
                .launch_timed(k, 6)
                .sleep(SimDuration::from_millis(2))
                .stop_power_logger()
                .build();
            s.run_script(&script).unwrap()
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b);
        let c = run(100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn warm_up_executions_are_slower() {
        let mut s = sim(6);
        let k = s.register_kernel(heavy()).unwrap();
        let script = Script::builder().begin_run().launch_timed(k, 8).build();
        let trace = s.run_script(&script).unwrap();
        let d: Vec<u64> = trace
            .truth
            .executions
            .iter()
            .map(|e| e.duration().as_nanos())
            .collect();
        // First execution is the slowest (cold + clock ramp).
        let steady = *d.last().unwrap() as f64;
        assert!(
            d[0] as f64 > steady * 1.05,
            "first {} vs steady {steady}",
            d[0]
        );
    }

    #[test]
    fn session_time_persists_across_scripts() {
        let mut s = sim(7);
        let t0 = s.now();
        s.advance_idle(SimDuration::from_millis(1)).unwrap();
        let t1 = s.now();
        s.advance_idle(SimDuration::from_millis(1)).unwrap();
        let t2 = s.now();
        assert!(t1 > t0);
        assert!(t2 > t1);
    }

    #[test]
    fn timestamp_reads_are_recorded() {
        let mut s = sim(8);
        let script = Script::builder()
            .read_gpu_timestamp()
            .sleep(SimDuration::from_micros(100))
            .read_gpu_timestamp()
            .build();
        let trace = s.run_script(&script).unwrap();
        assert_eq!(trace.timestamp_reads.len(), 2);
        let r0 = &trace.timestamp_reads[0];
        let r1 = &trace.timestamp_reads[1];
        assert!(r0.rtt_ns() > 0);
        assert!(r1.ticks.as_raw() > r0.ticks.as_raw());
        // ~100 us apart on a 100 MHz counter is ~10_000 ticks.
        let dt = r1.ticks.ticks_since(r0.ticks);
        assert!((9_000..12_000).contains(&dt), "dt {dt}");
    }

    #[test]
    fn interleaved_kernels_keep_identity() {
        let mut s = sim(9);
        let a = s.register_kernel(light()).unwrap();
        let b = s.register_kernel(heavy()).unwrap();
        let script = Script::builder()
            .launch_timed(a, 2)
            .launch_timed(b, 1)
            .launch_timed(a, 1)
            .build();
        let trace = s.run_script(&script).unwrap();
        let kinds: Vec<usize> = trace.executions.iter().map(|e| e.kernel.index()).collect();
        assert_eq!(kinds, vec![a.index(), a.index(), b.index(), a.index()]);
    }

    #[test]
    fn instant_trace_recorded_when_enabled() {
        let mut cfg = SimConfig::default();
        cfg.telemetry.record_instant_trace = true;
        let mut s = Simulation::new(cfg, 10).unwrap();
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder()
            .launch_timed(k, 3)
            .sleep(SimDuration::from_millis(1))
            .build();
        let trace = s.run_script(&script).unwrap();
        assert!(!trace.truth.instant_power.is_empty());
    }

    #[test]
    fn logger_left_enabled_keeps_running_into_the_next_script() {
        // The logger is free-running hardware: a script that forgets to
        // stop it leaves emission enabled for subsequent scripts.
        let mut s = sim(12);
        let k = s.register_kernel(light()).unwrap();
        let first = Script::builder()
            .start_power_logger()
            .launch_timed(k, 5)
            .build();
        let t1 = s.run_script(&first).unwrap();
        // No StopPowerLogger: the next script's idle time still logs.
        let second = Script::builder().sleep(SimDuration::from_millis(3)).build();
        let t2 = s.run_script(&second).unwrap();
        assert!(!t1.power_logs.is_empty() || !t2.power_logs.is_empty());
        assert!(
            t2.power_logs.len() >= 2,
            "logger should still emit during the second script, got {}",
            t2.power_logs.len()
        );
    }

    #[test]
    fn gpu_timestamps_monotonic_across_scripts() {
        let mut s = sim(13);
        let mut last = 0u64;
        for _ in 0..5 {
            let script = Script::builder()
                .read_gpu_timestamp()
                .sleep(SimDuration::from_micros(500))
                .read_gpu_timestamp()
                .build();
            let trace = s.run_script(&script).unwrap();
            for r in &trace.timestamp_reads {
                assert!(r.ticks.as_raw() > last, "ticks must advance monotonically");
                last = r.ticks.as_raw();
            }
        }
    }

    #[test]
    fn long_idle_parks_the_clock_and_recools_the_device() {
        let mut s = sim(14);
        let k = s.register_kernel(heavy()).unwrap();
        let burst = Script::builder().begin_run().launch_timed(k, 4).build();
        s.run_script(&burst).unwrap();
        let hot_temp = s.temp_c();
        assert!(s.f_mhz() > SimConfig::default().pm.idle_f_mhz);
        // A second of idle: clock parks and the die cools.
        s.advance_idle(SimDuration::from_millis(1000)).unwrap();
        assert_eq!(s.f_mhz(), SimConfig::default().pm.idle_f_mhz);
        assert!(s.temp_c() < hot_temp);
        // The next burst re-pays warm-up (device went cold).
        let trace = s.run_script(&burst).unwrap();
        let d = trace.execution_durations_ns();
        assert!(
            d[0] > *d.last().unwrap(),
            "first execution after a long idle must be slow again"
        );
    }

    #[test]
    fn zero_execution_launch_is_a_noop() {
        let mut s = sim(15);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder().launch_timed(k, 0).build();
        let trace = s.run_script(&script).unwrap();
        assert!(trace.executions.is_empty());
        assert!(trace.truth.executions.is_empty());
    }

    #[test]
    fn engine_stats_accumulate_across_scripts() {
        let mut s = sim(70);
        assert_eq!(s.engine_stats(), EngineStats::default());
        s.advance_idle(SimDuration::from_millis(1)).unwrap();
        let first = s.engine_stats();
        assert!(first.events_popped > 0, "popped {}", first.events_popped);
        assert!(
            first.max_queue_depth >= 4,
            "four periodic streams plus the host must be pending at once, depth {}",
            first.max_queue_depth
        );
        assert_eq!(first.scripts_run, 1);
        s.advance_idle(SimDuration::from_millis(1)).unwrap();
        let second = s.engine_stats();
        assert!(second.events_popped > first.events_popped);
        assert_eq!(second.scripts_run, 2);
    }

    #[test]
    fn simulation_is_send_and_sync() {
        // Campaign shards move fresh simulations into worker threads; this
        // must keep compiling if fields change.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Simulation>();
    }

    #[test]
    fn forks_are_reproducible_and_independent() {
        let parent = sim(21);
        let run = |mut s: Simulation| {
            let k = s.register_kernel(heavy()).unwrap();
            let script = Script::builder()
                .begin_run()
                .start_power_logger()
                .launch_timed(k, 4)
                .sleep(SimDuration::from_millis(1))
                .stop_power_logger()
                .build();
            s.run_script(&script).unwrap()
        };
        // Same stream: bit-identical traces.
        let a = run(parent.fork(3).unwrap());
        let b = run(parent.fork(3).unwrap());
        assert_eq!(a, b);
        // Different streams: independent noise.
        let c = run(parent.fork(4).unwrap());
        assert_ne!(a, c);
        // Fork seeds are derived, not inherited.
        assert_ne!(parent.fork(0).unwrap().master_seed(), parent.master_seed());
    }

    #[test]
    fn forks_start_cold_even_from_a_hot_parent() {
        let mut parent = sim(22);
        let k = parent.register_kernel(heavy()).unwrap();
        let burst = Script::builder().begin_run().launch_timed(k, 6).build();
        parent.run_script(&burst).unwrap();
        assert!(parent.temp_c() > SimConfig::default().thermal.ambient_c + 1.0);
        let fork = parent.fork(0).unwrap();
        assert!(fork.temp_c() < parent.temp_c());
        assert_eq!(fork.now(), SimTime::ZERO);
        assert_eq!(fork.f_mhz(), SimConfig::default().pm.idle_f_mhz);
    }

    /// Records every event; used to assert stream/trace agreement.
    fn record_run(s: &mut Simulation, script: &Script) -> (RunTrace, Vec<TelemetryEvent>) {
        let mut events = Vec::new();
        let mut sink = |e: TelemetryEvent| events.push(e);
        let trace = s
            .run_script_observed(script, &mut sink, &AbortHandle::new())
            .unwrap();
        (trace, events)
    }

    fn instrumented_script(k: crate::kernel::KernelHandle) -> Script {
        Script::builder()
            .begin_run()
            .start_power_logger()
            .read_gpu_timestamp()
            .launch_timed(k, 4)
            .sleep(SimDuration::from_millis(1))
            .read_gpu_timestamp()
            .stop_power_logger()
            .build()
    }

    #[test]
    fn streamed_session_is_bit_identical_to_batch_run() {
        let script = |s: &mut Simulation| {
            let k = s.register_kernel(heavy()).unwrap();
            instrumented_script(k)
        };
        let mut batch = sim(61);
        let sc = script(&mut batch);
        let batch_trace = batch.run_script(&sc).unwrap();

        let mut streamed = sim(61);
        let sc = script(&mut streamed);
        let (stream_trace, events) = record_run(&mut streamed, &sc);
        assert_eq!(batch_trace, stream_trace);
        assert!(!stream_trace.aborted);
        assert!(events.len() > 10, "streaming must actually stream");
    }

    #[test]
    fn event_stream_mirrors_the_trace_in_order() {
        let mut s = sim(62);
        let k = s.register_kernel(heavy()).unwrap();
        let script = instrumented_script(k);
        let (trace, events) = record_run(&mut s, &script);

        assert_eq!(
            events.first(),
            Some(&TelemetryEvent::ScriptStarted { ops: 7 })
        );
        assert_eq!(
            events.last(),
            Some(&TelemetryEvent::ScriptDone { aborted: false })
        );

        // Every observable record appears as an event, in trace order.
        let execs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::LaunchCompleted { execution } => Some(*execution),
                _ => None,
            })
            .collect();
        assert_eq!(execs, trace.executions);
        let logs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::PowerLogEmitted { coarse: false, log } => Some(*log),
                _ => None,
            })
            .collect();
        assert_eq!(logs, trace.power_logs);
        let reads: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::GpuTimestampRead { read } => Some(*read),
                _ => None,
            })
            .collect();
        assert_eq!(reads, trace.timestamp_reads);

        // Op lifecycle: indices start strictly increasing, every started op
        // finishes (nothing was aborted), finishes never precede starts.
        let mut started = Vec::new();
        let mut finished = Vec::new();
        for e in &events {
            match e {
                TelemetryEvent::OpStarted { index, .. } => started.push(*index),
                TelemetryEvent::OpFinished { index } => {
                    assert!(started.contains(index), "op {index} finished before start");
                    finished.push(*index);
                }
                _ => {}
            }
        }
        assert_eq!(started, (0..7).collect::<Vec<_>>());
        assert_eq!(finished, started);
    }

    #[test]
    fn abort_mid_launch_yields_partial_well_formed_trace() {
        let mut s = sim(63);
        let k = s.register_kernel(heavy()).unwrap();
        let script = Script::builder()
            .begin_run()
            .start_power_logger()
            .launch_timed(k, 50)
            .stop_power_logger()
            .build();
        let abort = AbortHandle::new();
        let stop_after = 3usize;
        let mut completions = 0usize;
        let handle = abort.clone();
        let mut sink = |e: TelemetryEvent| {
            if matches!(e, TelemetryEvent::LaunchCompleted { .. }) {
                completions += 1;
                if completions == stop_after {
                    handle.abort();
                }
            }
        };
        let trace = s.run_script_observed(&script, &mut sink, &abort).unwrap();
        assert!(trace.aborted, "trace must be tagged aborted");
        assert_eq!(trace.executions.len(), stop_after, "stops at the boundary");
        for (i, e) in trace.executions.iter().enumerate() {
            assert_eq!(e.index, i as u32);
            assert!(e.duration_ns() > 0);
        }
        // Logs observed so far are kept and stay tick-ordered.
        for w in trace.power_logs.windows(2) {
            assert!(w[1].ticks.as_raw() > w[0].ticks.as_raw());
        }
        // The session stays usable: the device is quiescent, a follow-up
        // script runs normally.
        let follow_up = Script::builder().begin_run().launch_timed(k, 2).build();
        let t2 = s.run_script(&follow_up).unwrap();
        assert!(!t2.aborted);
        assert_eq!(t2.executions.len(), 2);
    }

    #[test]
    fn abort_during_the_final_op_does_not_mislabel_a_complete_trace() {
        // The flag fires while the last execution of the last op runs; by
        // the time the engine reaches an abort point, every op has
        // completed — the trace is complete and must not be tagged.
        let mut s = sim(66);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder().begin_run().launch_timed(k, 3).build();
        let abort = AbortHandle::new();
        let handle = abort.clone();
        let mut completions = 0usize;
        let mut last = None;
        let mut sink = |e: TelemetryEvent| {
            if matches!(e, TelemetryEvent::LaunchCompleted { .. }) {
                completions += 1;
                if completions == 3 {
                    handle.abort();
                }
            }
            last = Some(e);
        };
        let trace = s.run_script_observed(&script, &mut sink, &abort).unwrap();
        assert!(!trace.aborted, "a finished script is not aborted");
        assert_eq!(trace.executions.len(), 3);
        assert_eq!(last, Some(TelemetryEvent::ScriptDone { aborted: false }));
    }

    #[test]
    fn abort_before_any_op_yields_empty_aborted_trace() {
        let mut s = sim(64);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder().launch_timed(k, 5).build();
        let abort = AbortHandle::new();
        abort.abort();
        let mut events = Vec::new();
        let mut sink = |e: TelemetryEvent| events.push(e);
        let trace = s.run_script_observed(&script, &mut sink, &abort).unwrap();
        assert!(trace.aborted);
        assert!(trace.executions.is_empty());
        assert_eq!(
            events,
            vec![
                TelemetryEvent::ScriptStarted { ops: 1 },
                TelemetryEvent::ScriptDone { aborted: true },
            ]
        );
    }

    #[test]
    fn aborted_op_never_receives_op_finished() {
        let mut s = sim(65);
        let k = s.register_kernel(heavy()).unwrap();
        let script = Script::builder().begin_run().launch_timed(k, 50).build();
        let abort = AbortHandle::new();
        let handle = abort.clone();
        let mut events = Vec::new();
        let mut sink = |e: TelemetryEvent| {
            if matches!(e, TelemetryEvent::LaunchCompleted { .. }) {
                handle.abort();
            }
            events.push(e);
        };
        let trace = s.run_script_observed(&script, &mut sink, &abort).unwrap();
        assert!(trace.aborted);
        // The launch op (index 1) started but never finished.
        assert!(events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::OpStarted { index: 1, .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::OpFinished { index: 1 })));
        assert_eq!(
            events.last(),
            Some(&TelemetryEvent::ScriptDone { aborted: true })
        );
    }

    #[test]
    fn coarse_logger_misses_short_kernels() {
        // Challenge C1: a 50 ms sampler sees at most one log for a run of
        // short kernels, and that log is dominated by idle time.
        let mut s = sim(11);
        let k = s.register_kernel(light()).unwrap();
        let script = Script::builder()
            .start_coarse_logger()
            .start_power_logger()
            .launch_timed(k, 10)
            .sleep(SimDuration::from_millis(2))
            .stop_power_logger()
            .stop_coarse_logger()
            .build();
        let trace = s.run_script(&script).unwrap();
        assert!(
            trace.coarse_logs.len() <= 1,
            "coarse logger should capture at most one sample, got {}",
            trace.coarse_logs.len()
        );
        assert!(trace.power_logs.len() > trace.coarse_logs.len());
    }
}
