//! Aggregated simulator configuration.
//!
//! [`SimConfig`] collects every tunable of the simulated platform. The
//! defaults describe an MI300X-class device: the chiplet counts and
//! capacities come from the paper's background section (8 XCD × 38 CU,
//! 4 IOD, 256 MB Infinity Cache, 8 HBM stacks / 192 GB at 5.3 TB/s, 8-GPU
//! fully connected node with 64 GB/s links).

use serde::{Deserialize, Serialize};

use crate::dvfs::PmConfig;
use crate::kernel::VariationConfig;
use crate::power::PowerModelConfig;
use crate::telemetry::TelemetryConfig;
use crate::thermal::ThermalConfig;
use crate::time::SimDuration;

/// Architectural shape of the simulated GPU (informational; consumed by the
/// workload models when deriving kernel descriptors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Marketing name of the modelled device.
    pub name: String,
    /// Number of accelerator complex dies.
    pub n_xcd: u32,
    /// Compute units per XCD.
    pub cus_per_xcd: u32,
    /// Number of I/O dies.
    pub n_iod: u32,
    /// Number of HBM stacks.
    pub n_hbm_stacks: u32,
    /// Infinity Cache (memory-side LLC) capacity in MiB.
    pub llc_mib: u64,
    /// Per-XCD L2 capacity in MiB.
    pub l2_per_xcd_mib: u64,
    /// HBM capacity in GiB.
    pub hbm_gib: u64,
    /// Peak HBM bandwidth in GB/s.
    pub hbm_peak_gbps: f64,
    /// Peak dense FP16/BF16 matrix throughput in TFLOP/s at boost clock.
    pub peak_fp16_tflops: f64,
    /// Peak dense FP32 vector throughput in TFLOP/s at boost clock.
    pub peak_fp32_tflops: f64,
    /// GPUs per node (Infinity Platform).
    pub gpus_per_node: u32,
    /// Per-link unidirectional Infinity Fabric bandwidth, GB/s.
    pub if_link_gbps: f64,
}

impl MachineConfig {
    /// Total compute units.
    pub fn total_cus(&self) -> u32 {
        self.n_xcd * self.cus_per_xcd
    }

    /// Machine balance: peak FP16 flops per HBM byte.
    pub fn machine_op_to_byte_fp16(&self) -> f64 {
        (self.peak_fp16_tflops * 1e12) / (self.hbm_peak_gbps * 1e9)
    }
}

impl Default for MachineConfig {
    /// MI300X-class defaults (CDNA3 white paper numbers).
    fn default() -> Self {
        MachineConfig {
            name: "sim-mi300x".to_string(),
            n_xcd: 8,
            cus_per_xcd: 38,
            n_iod: 4,
            n_hbm_stacks: 8,
            llc_mib: 256,
            l2_per_xcd_mib: 4,
            hbm_gib: 192,
            hbm_peak_gbps: 5300.0,
            peak_fp16_tflops: 1307.4,
            peak_fp32_tflops: 163.4,
            gpus_per_node: 8,
            if_link_gbps: 64.0,
        }
    }
}

/// Clock-domain parameters (offsets are arbitrary; the methodology must not
/// depend on them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// CPU wall-clock offset at the simulation epoch, nanoseconds.
    pub cpu_boot_offset_ns: u64,
    /// GPU timestamp-counter nominal frequency, Hz.
    pub gpu_counter_hz: f64,
    /// GPU counter value at the simulation epoch.
    pub gpu_epoch_ticks: u64,
    /// True GPU oscillator drift relative to the CPU clock, ppm.
    pub gpu_drift_ppm: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            cpu_boot_offset_ns: 77_000_000_000, // CPU booted 77 s "ago"
            gpu_counter_hz: 100e6,
            gpu_epoch_ticks: 1_234_567_890,
            gpu_drift_ppm: 18.0,
        }
    }
}

/// Host-side latencies for kernel launches and timestamp reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Submit-to-GPU-start dispatch latency.
    pub dispatch_latency: SimDuration,
    /// Relative jitter on the dispatch latency (uniform half-width).
    pub dispatch_jitter_frac: f64,
    /// GPU-completion-to-host-observation latency.
    pub completion_latency: SimDuration,
    /// Round-trip time of a GPU timestamp read from the CPU.
    pub timestamp_rtt: SimDuration,
    /// Relative jitter on the timestamp RTT (uniform half-width).
    pub timestamp_rtt_jitter_frac: f64,
    /// Where inside the RTT the counter is actually sampled (fraction of
    /// RTT after `cpu_before`); real stacks sample asymmetrically, which is
    /// the residual error a sync methodology cannot remove by assuming the
    /// midpoint.
    pub timestamp_sample_frac: f64,
    /// Gaussian noise on host `clock_gettime`-style reads, ns (std dev).
    pub timer_noise_ns: f64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            dispatch_latency: SimDuration::from_nanos(3_800),
            dispatch_jitter_frac: 0.12,
            completion_latency: SimDuration::from_nanos(1_900),
            timestamp_rtt: SimDuration::from_nanos(1_500),
            timestamp_rtt_jitter_frac: 0.15,
            timestamp_sample_frac: 0.58,
            timer_noise_ns: 120.0,
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimConfig {
    /// Architectural shape.
    pub machine: MachineConfig,
    /// Power-model parameters.
    pub power: PowerModelConfig,
    /// Thermal-model parameters.
    pub thermal: ThermalConfig,
    /// Power-management firmware parameters.
    pub pm: PmConfig,
    /// Telemetry cadences.
    pub telemetry: TelemetryConfig,
    /// Execution-time variation sources.
    pub variation: VariationConfig,
    /// Clock-domain parameters.
    pub clocks: ClockConfig,
    /// Host-side latencies.
    pub host: HostConfig,
}

impl SimConfig {
    /// A configuration with all stochastic variation disabled and zero clock
    /// drift — the device still ramps, throttles, and averages power, but
    /// repeated runs are identical. Useful for tests that need exactness.
    pub fn deterministic() -> Self {
        SimConfig {
            variation: VariationConfig::none(),
            clocks: ClockConfig {
                gpu_drift_ppm: 0.0,
                ..ClockConfig::default()
            },
            host: HostConfig {
                dispatch_jitter_frac: 0.0,
                timestamp_rtt_jitter_frac: 0.0,
                timer_noise_ns: 0.0,
                ..HostConfig::default()
            },
            ..SimConfig::default()
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.telemetry.sensor_period.is_zero() {
            return Err("sensor period must be positive".into());
        }
        if self.telemetry.logger_period.is_zero() || self.telemetry.logger_window.is_zero() {
            return Err("logger period/window must be positive".into());
        }
        if self.telemetry.sensor_period > self.telemetry.logger_window {
            return Err("sensor period must not exceed the logger window".into());
        }
        if self.pm.control_period.is_zero() {
            return Err("PM control period must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.host.timestamp_sample_frac) {
            return Err("timestamp sample fraction out of [0,1]".into());
        }
        if self.clocks.gpu_counter_hz <= 0.0 {
            return Err("GPU counter frequency must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_is_mi300x_shaped() {
        let m = MachineConfig::default();
        assert_eq!(m.total_cus(), 304);
        assert_eq!(m.n_xcd, 8);
        assert_eq!(m.n_iod, 4);
        assert_eq!(m.n_hbm_stacks, 8);
        // Machine balance around 250 flop/byte for FP16.
        let balance = m.machine_op_to_byte_fp16();
        assert!(balance > 200.0 && balance < 300.0, "balance {balance}");
    }

    #[test]
    fn default_config_validates() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::deterministic().validate().is_ok());
    }

    #[test]
    fn validation_catches_zero_sensor_period() {
        let mut cfg = SimConfig::default();
        cfg.telemetry.sensor_period = SimDuration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_sensor_coarser_than_window() {
        let mut cfg = SimConfig::default();
        cfg.telemetry.sensor_period = SimDuration::from_millis(10);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_sample_frac() {
        let mut cfg = SimConfig::default();
        cfg.host.timestamp_sample_frac = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn deterministic_config_has_no_randomness() {
        let cfg = SimConfig::deterministic();
        assert_eq!(cfg.variation.jitter_frac, 0.0);
        assert_eq!(cfg.variation.outlier_prob, 0.0);
        assert_eq!(cfg.clocks.gpu_drift_ppm, 0.0);
        assert_eq!(cfg.host.timer_noise_ns, 0.0);
    }
}
