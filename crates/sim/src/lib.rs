//! # fingrav-sim — a simulated MI300X-class GPU for power-methodology research
//!
//! This crate is the hardware substrate for the FinGraV reproduction
//! (ISPASS 2025, arXiv:2412.12426). The paper measures fine-grain GPU power
//! on real AMD Instinct MI300X hardware with an internal 1 ms averaging
//! power logger; this crate simulates everything the methodology can
//! observe on such a platform — and, crucially, everything that makes the
//! observation *hard*:
//!
//! * sub-millisecond kernel executions with warm-up drift, per-run
//!   allocation bias, Gaussian jitter, and occasional outliers
//!   (challenge **C3**);
//! * a GPU timestamp counter offset and drifting relative to the CPU clock
//!   (challenge **C2**);
//! * a windowed-averaging power logger that blends a kernel's draw with
//!   its surroundings (challenges **C1**, **C4**);
//! * power-management firmware that ramps, boosts, and throttles the core
//!   clock against a socket power cap, coupled to an RC thermal model.
//!
//! The methodology itself lives in `fingrav-core` and only ever sees the
//! observable half of a [`trace::RunTrace`].
//!
//! ## Quick start
//!
//! ```
//! use fingrav_sim::config::SimConfig;
//! use fingrav_sim::engine::Simulation;
//! use fingrav_sim::kernel::KernelDesc;
//! use fingrav_sim::power::Activity;
//! use fingrav_sim::script::Script;
//! use fingrav_sim::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Simulation::new(SimConfig::default(), 7)?;
//! let k = sim.register_kernel(KernelDesc {
//!     name: "toy-gemm".into(),
//!     base_exec: SimDuration::from_micros(180),
//!     freq_insensitive_frac: 0.15,
//!     activity: Activity::new(0.9, 0.5, 0.4),
//!     compute_utilization: 0.8,
//!     flops: 1.4e11,
//!     hbm_bytes: 1.0e8,
//!     llc_bytes: 8.0e8,
//!     workgroups: 2048,
//! })?;
//! let trace = sim.run_script(
//!     &Script::builder()
//!         .begin_run()
//!         .start_power_logger()
//!         .launch_timed(k, 10)
//!         .sleep(SimDuration::from_millis(2))
//!         .stop_power_logger()
//!         .build(),
//! )?;
//! assert_eq!(trace.executions.len(), 10);
//! # Ok(())
//! # }
//! ```

// No unsafe anywhere in this crate; `fgrv-lint`'s unsafe-audit keeps it so.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod device;
pub mod dvfs;
pub mod engine;
pub mod error;
pub mod event;
pub mod fabric;
pub mod kernel;
pub mod power;
pub mod rng;
pub mod script;
pub mod session;
pub mod telemetry;
pub mod thermal;
pub mod time;
pub mod trace;

pub use config::{MachineConfig, SimConfig};
pub use engine::Simulation;
pub use error::{SimError, SimResult};
pub use kernel::{KernelDesc, KernelHandle, VariationConfig};
pub use power::{Activity, Component, ComponentPower};
pub use script::{HostOp, Script};
pub use session::{AbortHandle, ChannelSink, NoopSink, TelemetryEvent, TelemetrySink};
pub use telemetry::PowerLog;
pub use time::{CpuTime, GpuTicks, SimDuration, SimTime};
pub use trace::{RunTrace, TimedExecution, TimestampRead};
