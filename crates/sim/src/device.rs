//! The GPU device execution model.
//!
//! Tracks which kernel (if any) is executing, integrates kernel *progress*
//! across frequency changes (so mid-execution throttling correctly
//! stretches the remaining work), and owns the warm-up bookkeeping that
//! produces the paper's execution-time stabilization behaviour.

use serde::{Deserialize, Serialize};

use crate::kernel::{ExecutionNoise, KernelDesc, KernelHandle, VariationConfig};
use crate::power::Activity;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Record of one completed execution, in simulator ground-truth time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Which registered kernel ran.
    pub kernel: KernelHandle,
    /// Execution start on the simulation timeline.
    pub start: SimTime,
    /// Execution end on the simulation timeline.
    pub end: SimTime,
    /// Index of this execution since the device was last cold.
    pub execs_since_cold: u32,
    /// True if the variation model drew this execution as an outlier.
    pub outlier: bool,
}

impl ExecutionRecord {
    /// Ground-truth execution duration.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct RunningKernel {
    handle: KernelHandle,
    /// Fraction of the kernel completed, in `[0, 1]`.
    progress: f64,
    /// Sampled duration at the reference frequency (includes warm-up, run
    /// bias, jitter, outlier multipliers).
    sampled_ref_duration: SimDuration,
    start: SimTime,
    last_advance: SimTime,
    execs_since_cold_at_start: u32,
    outlier: bool,
}

/// The simulated GPU device.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    kernels: Vec<KernelDesc>,
    variation: VariationConfig,
    f_ref_mhz: f64,
    f_mhz: f64,
    running: Option<RunningKernel>,
    execs_since_cold: u32,
    last_busy_end: Option<SimTime>,
    run_bias: f64,
    run_activity_factor: f64,
    /// Generation counter; bumped whenever the predicted completion time
    /// changes so stale completion events can be discarded.
    generation: u64,
}

impl GpuDevice {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if `f_ref_mhz` is not positive.
    pub fn new(variation: VariationConfig, f_ref_mhz: f64, initial_f_mhz: f64) -> Self {
        assert!(f_ref_mhz > 0.0, "reference frequency must be positive");
        GpuDevice {
            kernels: Vec::new(),
            variation,
            f_ref_mhz,
            f_mhz: initial_f_mhz,
            running: None,
            execs_since_cold: 0,
            last_busy_end: None,
            run_bias: 1.0,
            run_activity_factor: 1.0,
            generation: 0,
        }
    }

    /// Registers a kernel, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns the descriptor's validation error message if it is invalid.
    pub fn register_kernel(&mut self, desc: KernelDesc) -> Result<KernelHandle, String> {
        desc.validate()?;
        self.kernels.push(desc);
        Ok(KernelHandle(self.kernels.len() - 1))
    }

    /// Looks up a registered kernel.
    pub fn kernel(&self, handle: KernelHandle) -> Option<&KernelDesc> {
        self.kernels.get(handle.0)
    }

    /// Number of registered kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Current core frequency in MHz.
    pub fn f_mhz(&self) -> f64 {
        self.f_mhz
    }

    /// True if a kernel is executing.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Time since the device last finished an execution (zero while busy;
    /// `None` if it has never run).
    pub fn idle_for(&self, now: SimTime) -> Option<SimDuration> {
        if self.running.is_some() {
            return Some(SimDuration::ZERO);
        }
        self.last_busy_end
            .map(|end| now.saturating_duration_since(end))
    }

    /// Whether the device was busy at any point in `[now - window, now]`.
    pub fn busy_within(&self, now: SimTime, window: SimDuration) -> bool {
        if self.running.is_some() {
            return true;
        }
        match self.last_busy_end {
            Some(end) => now.saturating_duration_since(end) <= window,
            None => false,
        }
    }

    /// Current switching activity (idle when nothing runs). Pathological
    /// runs and outlier executions toggle the compute pipes less while
    /// they crawl, so their XCD activity is scaled down.
    pub fn activity(&self) -> Activity {
        match &self.running {
            Some(r) => {
                let base = self.kernels[r.handle.0].activity;
                let mut factor = self.run_activity_factor;
                if r.outlier {
                    factor *= self.variation.outlier_activity_factor;
                }
                if (factor - 1.0).abs() < f64::EPSILON {
                    base
                } else {
                    Activity::new(base.xcd * factor, base.iod, base.hbm)
                }
            }
            None => Activity::IDLE,
        }
    }

    /// The generation counter for completion-event validation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of executions since the device was last cold.
    pub fn execs_since_cold(&self) -> u32 {
        self.execs_since_cold
    }

    /// Marks the start of a fresh profiling run: re-draws the per-run
    /// allocation bias (paper: "slight differences in memory allocation").
    pub fn begin_run(&mut self, rng: &mut SimRng) {
        let (bias, activity_factor) = self.variation.sample_run_bias(rng);
        self.run_bias = bias;
        self.run_activity_factor = activity_factor;
    }

    /// Begins executing `handle` at `now`. Returns the generation to attach
    /// to the completion event and the predicted completion time.
    ///
    /// # Panics
    ///
    /// Panics if a kernel is already running or the handle is unknown.
    pub fn begin_execution(
        &mut self,
        handle: KernelHandle,
        now: SimTime,
        rng: &mut SimRng,
    ) -> (u64, SimTime) {
        assert!(self.running.is_none(), "device already busy");
        let desc = self
            .kernels
            .get(handle.0)
            .unwrap_or_else(|| panic!("unknown kernel handle {}", handle.0));

        // Re-apply warm-up if the device sat idle long enough to go cold.
        if let Some(end) = self.last_busy_end {
            if now.saturating_duration_since(end) >= self.variation.cold_after {
                self.execs_since_cold = 0;
            }
        }

        let warmup = self.variation.warmup_factor(self.execs_since_cold);
        let noise: ExecutionNoise = self.variation.sample_execution_noise(rng);
        let factor = warmup * self.run_bias * noise.factor();
        let sampled_ref_duration = desc.base_exec.mul_f64(factor);

        self.generation += 1;
        self.running = Some(RunningKernel {
            handle,
            progress: 0.0,
            sampled_ref_duration,
            start: now,
            last_advance: now,
            execs_since_cold_at_start: self.execs_since_cold,
            outlier: noise.is_outlier(),
        });
        let end = self.predicted_end(now).expect("just started");
        (self.generation, end)
    }

    /// Integrates progress up to `now` at the current frequency.
    fn advance_progress(&mut self, now: SimTime) {
        let f_ref = self.f_ref_mhz;
        let f = self.f_mhz;
        if let Some(r) = &mut self.running {
            let desc = &self.kernels[r.handle.0];
            let dt = now.saturating_duration_since(r.last_advance);
            if !dt.is_zero() {
                let duration_at_f = r
                    .sampled_ref_duration
                    .mul_f64(desc.duration_factor(f, f_ref));
                let rate = 1.0 / duration_at_f.as_secs_f64();
                r.progress = (r.progress + dt.as_secs_f64() * rate).min(1.0);
                r.last_advance = now;
            }
        }
    }

    /// Predicted completion time of the running kernel at the current
    /// frequency, or `None` when idle.
    pub fn predicted_end(&self, now: SimTime) -> Option<SimTime> {
        let r = self.running.as_ref()?;
        let desc = &self.kernels[r.handle.0];
        let duration_at_f = r
            .sampled_ref_duration
            .mul_f64(desc.duration_factor(self.f_mhz, self.f_ref_mhz));
        let elapsed_since_advance = now.saturating_duration_since(r.last_advance);
        let progressed =
            r.progress + elapsed_since_advance.as_secs_f64() / duration_at_f.as_secs_f64();
        let remaining = (1.0 - progressed).max(0.0);
        Some(now + duration_at_f.mul_f64(remaining))
    }

    /// Changes the core frequency at `now`. If a kernel is running, its
    /// progress is integrated first and a new generation is issued so the
    /// caller can reschedule the completion event. Returns the new
    /// `(generation, predicted_end)` if a kernel is running.
    pub fn set_frequency(&mut self, f_mhz: f64, now: SimTime) -> Option<(u64, SimTime)> {
        if (f_mhz - self.f_mhz).abs() < f64::EPSILON {
            return None;
        }
        self.advance_progress(now);
        self.f_mhz = f_mhz;
        if self.running.is_some() {
            self.generation += 1;
            let end = self.predicted_end(now).expect("running");
            Some((self.generation, end))
        } else {
            None
        }
    }

    /// Completes the running kernel at `now` if `generation` is current.
    /// Returns the execution record, or `None` for a stale completion.
    pub fn complete(&mut self, generation: u64, now: SimTime) -> Option<ExecutionRecord> {
        if generation != self.generation || self.running.is_none() {
            return None;
        }
        let r = self.running.take().expect("checked above");
        self.execs_since_cold = self.execs_since_cold.saturating_add(1);
        self.last_busy_end = Some(now);
        Some(ExecutionRecord {
            kernel: r.handle,
            start: r.start,
            end: now,
            execs_since_cold: r.execs_since_cold_at_start,
            outlier: r.outlier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(base_us: u64, cf: f64) -> KernelDesc {
        KernelDesc {
            name: "k".into(),
            base_exec: SimDuration::from_micros(base_us),
            freq_insensitive_frac: cf,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.8,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 64,
        }
    }

    fn device_no_variation() -> (GpuDevice, KernelHandle) {
        let mut d = GpuDevice::new(VariationConfig::none(), 2100.0, 2100.0);
        let h = d.register_kernel(kernel(100, 0.0)).unwrap();
        (d, h)
    }

    #[test]
    fn registration_validates() {
        let mut d = GpuDevice::new(VariationConfig::none(), 2100.0, 2100.0);
        let mut bad = kernel(100, 0.0);
        bad.workgroups = 0;
        assert!(d.register_kernel(bad).is_err());
        assert_eq!(d.kernel_count(), 0);
        assert!(d.register_kernel(kernel(100, 0.0)).is_ok());
        assert_eq!(d.kernel_count(), 1);
    }

    #[test]
    fn execution_at_reference_frequency_takes_base_time() {
        let (mut d, h) = device_no_variation();
        let mut rng = SimRng::from_streams(0, 0);
        let t0 = SimTime::from_micros(10);
        let (generation, end) = d.begin_execution(h, t0, &mut rng);
        assert_eq!(end, t0 + SimDuration::from_micros(100));
        let rec = d.complete(generation, end).unwrap();
        assert_eq!(rec.duration(), SimDuration::from_micros(100));
        assert!(!rec.outlier);
    }

    #[test]
    fn frequency_drop_midway_stretches_remaining_half() {
        let (mut d, h) = device_no_variation();
        let mut rng = SimRng::from_streams(0, 0);
        let t0 = SimTime::ZERO;
        let (_gen1, _end1) = d.begin_execution(h, t0, &mut rng);
        // At 50 us (half done at 2100 MHz), halve the clock. The remaining
        // half now takes 100 us: total 150 us.
        let t_half = SimTime::from_micros(50);
        let (gen2, end2) = d.set_frequency(1050.0, t_half).unwrap();
        assert_eq!(end2, SimTime::from_micros(150));
        let rec = d.complete(gen2, end2).unwrap();
        assert_eq!(rec.duration(), SimDuration::from_micros(150));
    }

    #[test]
    fn stale_completion_is_discarded() {
        let (mut d, h) = device_no_variation();
        let mut rng = SimRng::from_streams(0, 0);
        let (gen1, end1) = d.begin_execution(h, SimTime::ZERO, &mut rng);
        let (gen2, end2) = d.set_frequency(1050.0, SimTime::from_micros(50)).unwrap();
        assert_ne!(gen1, gen2);
        assert!(
            d.complete(gen1, end1).is_none(),
            "stale event must be ignored"
        );
        assert!(d.complete(gen2, end2).is_some());
    }

    #[test]
    fn memory_bound_kernel_unaffected_by_frequency() {
        let mut d = GpuDevice::new(VariationConfig::none(), 2100.0, 2100.0);
        let h = d.register_kernel(kernel(100, 1.0)).unwrap();
        let mut rng = SimRng::from_streams(0, 0);
        d.begin_execution(h, SimTime::ZERO, &mut rng);
        let (generation, end) = d.set_frequency(700.0, SimTime::from_micros(10)).unwrap();
        assert_eq!(end, SimTime::from_micros(100));
        assert!(d.complete(generation, end).is_some());
    }

    #[test]
    fn warmup_applies_then_decays() {
        let variation = VariationConfig {
            warmup_factors: vec![1.5, 1.2],
            ..VariationConfig::none()
        };
        let mut d = GpuDevice::new(variation, 2100.0, 2100.0);
        let h = d.register_kernel(kernel(100, 0.0)).unwrap();
        let mut rng = SimRng::from_streams(0, 0);

        let mut t = SimTime::ZERO;
        let mut durations = Vec::new();
        for _ in 0..4 {
            let (generation, end) = d.begin_execution(h, t, &mut rng);
            let rec = d.complete(generation, end).unwrap();
            durations.push(rec.duration().as_nanos());
            t = end + SimDuration::from_micros(5);
        }
        assert_eq!(durations[0], 150_000);
        assert_eq!(durations[1], 120_000);
        assert_eq!(durations[2], 100_000);
        assert_eq!(durations[3], 100_000);
    }

    #[test]
    fn long_idle_goes_cold_again() {
        let variation = VariationConfig {
            warmup_factors: vec![2.0],
            cold_after: SimDuration::from_millis(1),
            ..VariationConfig::none()
        };
        let mut d = GpuDevice::new(variation, 2100.0, 2100.0);
        let h = d.register_kernel(kernel(100, 0.0)).unwrap();
        let mut rng = SimRng::from_streams(0, 0);

        let (g, end) = d.begin_execution(h, SimTime::ZERO, &mut rng);
        d.complete(g, end).unwrap();
        // Warm follow-up: no warm-up factor.
        let t1 = end + SimDuration::from_micros(100);
        let (g, end1) = d.begin_execution(h, t1, &mut rng);
        let rec = d.complete(g, end1).unwrap();
        assert_eq!(rec.duration(), SimDuration::from_micros(100));
        // Cold after a long idle: warm-up factor again.
        let t2 = end1 + SimDuration::from_millis(10);
        let (g, end2) = d.begin_execution(h, t2, &mut rng);
        let rec = d.complete(g, end2).unwrap();
        assert_eq!(rec.duration(), SimDuration::from_micros(200));
    }

    #[test]
    fn activity_reflects_running_kernel() {
        let (mut d, h) = device_no_variation();
        let mut rng = SimRng::from_streams(0, 0);
        assert_eq!(d.activity(), Activity::IDLE);
        let (g, end) = d.begin_execution(h, SimTime::ZERO, &mut rng);
        assert!(d.activity().xcd > 0.0);
        assert!(d.is_busy());
        d.complete(g, end);
        assert_eq!(d.activity(), Activity::IDLE);
        assert!(!d.is_busy());
    }

    #[test]
    fn idle_tracking() {
        let (mut d, h) = device_no_variation();
        let mut rng = SimRng::from_streams(0, 0);
        assert_eq!(d.idle_for(SimTime::from_micros(5)), None);
        let (g, end) = d.begin_execution(h, SimTime::ZERO, &mut rng);
        assert_eq!(d.idle_for(end), Some(SimDuration::ZERO));
        d.complete(g, end);
        let later = end + SimDuration::from_micros(30);
        assert_eq!(d.idle_for(later), Some(SimDuration::from_micros(30)));
        assert!(d.busy_within(later, SimDuration::from_micros(50)));
        assert!(!d.busy_within(later, SimDuration::from_micros(10)));
    }

    #[test]
    fn run_bias_shifts_whole_run() {
        let variation = VariationConfig {
            run_bias_frac: 0.5,
            ..VariationConfig::none()
        };
        let mut d = GpuDevice::new(variation, 2100.0, 2100.0);
        let h = d.register_kernel(kernel(100, 0.0)).unwrap();
        let mut rng = SimRng::from_streams(7, 0);
        d.begin_run(&mut rng);

        let mut t = SimTime::ZERO;
        let mut durations = Vec::new();
        for _ in 0..3 {
            let (g, end) = d.begin_execution(h, t, &mut rng);
            let rec = d.complete(g, end).unwrap();
            durations.push(rec.duration().as_nanos());
            t = end + SimDuration::from_micros(5);
        }
        // All executions in the run share the same bias.
        assert_eq!(durations[0], durations[1]);
        assert_eq!(durations[1], durations[2]);
        assert_ne!(durations[0], 100_000, "bias should have moved the time");
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_launch_panics() {
        let (mut d, h) = device_no_variation();
        let mut rng = SimRng::from_streams(0, 0);
        d.begin_execution(h, SimTime::ZERO, &mut rng);
        d.begin_execution(h, SimTime::from_micros(1), &mut rng);
    }
}
