//! Power-management firmware: frequency ramping, power-cap throttling.
//!
//! The paper observes (Section V-C1, Fig. 6) that the first executions of a
//! compute-heavy GEMM "considerably stress power, invoking the power
//! management firmware to throttle frequency in order to manage power
//! excursions". This module reproduces that control loop: a periodic tick
//! reads a short rolling average of total power and steps the core clock
//! down when the cap is exceeded, up (fast ramp, then slow restore) when
//! there is headroom, and parks it at the idle frequency when the device
//! has been quiet for a while.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Power-management firmware parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmConfig {
    /// Control-loop period (MI300X-class firmware runs sub-millisecond).
    pub control_period: SimDuration,
    /// Rolling window over which power is averaged for cap decisions.
    pub power_window: SimDuration,
    /// Socket power cap in watts.
    pub power_cap_w: f64,
    /// Frequency step when throttling down, MHz per tick.
    pub throttle_step_mhz: f64,
    /// Control ticks to wait after a throttle step before throttling again,
    /// letting the slow power window refresh (prevents over-reaction to a
    /// stale average).
    pub throttle_cooldown_ticks: u32,
    /// Frequency step during the initial ramp out of idle, MHz per tick.
    pub ramp_step_mhz: f64,
    /// Frequency step when creeping back up under the cap, MHz per tick.
    pub restore_step_mhz: f64,
    /// After a throttle event, the firmware waits this many consecutive
    /// under-cap ticks before each restore step — the slow recovery that
    /// produces the paper's Fig. 6 trough between the initial power
    /// excursion and the steady-state-power plateau.
    pub restore_patience: u32,
    /// Fraction of the cap below which the firmware raises frequency.
    pub restore_headroom: f64,
    /// Frequency the clock parks at when idle, MHz.
    pub idle_f_mhz: f64,
    /// How long the device must be idle before the clock parks.
    pub idle_park_delay: SimDuration,
    /// Lowest allowed frequency under throttling, MHz.
    pub f_min_mhz: f64,
    /// Highest (boost) frequency, MHz.
    pub f_max_mhz: f64,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            control_period: SimDuration::from_micros(100),
            // Slow-PPT-style averaging: short boost excursions above the
            // cap are tolerated until the window average catches up, which
            // is what makes the paper's Fig. 6 power spike observable even
            // through a 1 ms logging window.
            power_window: SimDuration::from_millis(2),
            power_cap_w: 750.0,
            throttle_step_mhz: 110.0,
            throttle_cooldown_ticks: 10,
            // Modern GPUs boost to peak clock within microseconds of work
            // arriving; one control tick reaches f_max from idle. Power
            // shaping then comes from the cap/throttle logic, not the ramp.
            ramp_step_mhz: 1600.0,
            restore_step_mhz: 30.0,
            restore_patience: 18,
            restore_headroom: 0.96,
            idle_f_mhz: 500.0,
            idle_park_delay: SimDuration::from_micros(500),
            f_min_mhz: 700.0,
            f_max_mhz: 2100.0,
        }
    }
}

/// The firmware's decision input for one control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmInput {
    /// Average total power over the trailing [`PmConfig::power_window`], watts.
    pub avg_power_w: f64,
    /// True if the device executed anything during the window.
    pub busy_in_window: bool,
    /// Time since the device last finished an execution (zero if running now).
    pub idle_for: SimDuration,
}

/// Power-management firmware state.
///
/// # Examples
///
/// ```
/// use fingrav_sim::dvfs::{PmConfig, PmFirmware, PmInput};
/// use fingrav_sim::time::SimDuration;
///
/// let mut pm = PmFirmware::new(PmConfig::default());
/// // Busy and far under the cap: the clock ramps up.
/// let f0 = pm.f_mhz();
/// pm.tick(PmInput { avg_power_w: 300.0, busy_in_window: true, idle_for: SimDuration::ZERO });
/// assert!(pm.f_mhz() > f0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmFirmware {
    cfg: PmConfig,
    f_mhz: f64,
    /// Set once the cap has been hit since the last idle park; switches the
    /// firmware from the aggressive ramp to the patient restore policy.
    throttled_since_park: bool,
    /// Consecutive under-cap ticks since the last frequency change.
    under_cap_ticks: u32,
    /// Ticks remaining before another throttle step is allowed.
    cooldown: u32,
}

impl PmFirmware {
    /// Creates firmware parked at the idle frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency limits are inconsistent.
    pub fn new(cfg: PmConfig) -> Self {
        assert!(
            cfg.f_min_mhz > 0.0 && cfg.f_min_mhz < cfg.f_max_mhz,
            "invalid frequency limits"
        );
        assert!(cfg.power_cap_w > 0.0, "power cap must be positive");
        assert!(
            (0.5..1.0).contains(&cfg.restore_headroom),
            "restore headroom must be in [0.5, 1.0)"
        );
        PmFirmware {
            f_mhz: cfg.idle_f_mhz,
            throttled_since_park: false,
            under_cap_ticks: 0,
            cooldown: 0,
            cfg,
        }
    }

    /// The firmware configuration.
    pub fn config(&self) -> &PmConfig {
        &self.cfg
    }

    /// Current core frequency in MHz.
    #[inline]
    pub fn f_mhz(&self) -> f64 {
        self.f_mhz
    }

    /// Runs one control tick and returns the (possibly unchanged) frequency.
    ///
    /// Contract relied on by the engine's hot loop: when
    /// `input.busy_in_window` is false, `avg_power_w` is **never read** —
    /// the idle path only consults `idle_for`. The engine exploits this to
    /// skip the O(window) power fold on idle control ticks, passing NaN as
    /// a poison value so any future read of the average on the idle path
    /// would surface immediately (see the idle-path poison test below).
    pub fn tick(&mut self, input: PmInput) -> f64 {
        let c = self.cfg;
        if !input.busy_in_window {
            if input.idle_for >= c.idle_park_delay {
                self.f_mhz = c.idle_f_mhz;
                self.throttled_since_park = false;
                self.under_cap_ticks = 0;
                self.cooldown = 0;
            }
            return self.f_mhz;
        }

        self.cooldown = self.cooldown.saturating_sub(1);
        if input.avg_power_w > c.power_cap_w {
            self.under_cap_ticks = 0;
            if self.cooldown == 0 {
                // Proportional throttle: deeper overshoot, bigger step.
                let overshoot = (input.avg_power_w / c.power_cap_w - 1.0) / 0.05;
                let step = c.throttle_step_mhz * overshoot.clamp(1.0, 4.0);
                self.f_mhz = (self.f_mhz - step).max(c.f_min_mhz);
                self.throttled_since_park = true;
                self.cooldown = c.throttle_cooldown_ticks;
            }
        } else if input.avg_power_w < c.power_cap_w * c.restore_headroom {
            if self.throttled_since_park {
                // Patient recovery after an excursion: one small step every
                // `restore_patience` consecutive under-cap ticks.
                self.under_cap_ticks += 1;
                if self.under_cap_ticks > c.restore_patience {
                    self.f_mhz = (self.f_mhz + c.restore_step_mhz).min(c.f_max_mhz);
                    self.under_cap_ticks = 0;
                }
            } else {
                self.f_mhz = (self.f_mhz + c.ramp_step_mhz).min(c.f_max_mhz);
            }
        } else {
            self.under_cap_ticks = 0;
        }
        self.f_mhz
    }
}

impl Default for PmFirmware {
    fn default() -> Self {
        PmFirmware::new(PmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(p: f64) -> PmInput {
        PmInput {
            avg_power_w: p,
            busy_in_window: true,
            idle_for: SimDuration::ZERO,
        }
    }

    fn idle(idle_for_us: u64) -> PmInput {
        PmInput {
            avg_power_w: 150.0,
            busy_in_window: false,
            idle_for: SimDuration::from_micros(idle_for_us),
        }
    }

    #[test]
    fn ramps_to_boost_under_light_load() {
        let mut pm = PmFirmware::default();
        for _ in 0..20 {
            pm.tick(busy(300.0));
        }
        assert_eq!(pm.f_mhz(), PmConfig::default().f_max_mhz);
    }

    #[test]
    fn throttles_above_cap() {
        let mut pm = PmFirmware::default();
        for _ in 0..20 {
            pm.tick(busy(300.0));
        }
        let boost = pm.f_mhz();
        pm.tick(busy(950.0));
        assert!(pm.f_mhz() < boost);
    }

    #[test]
    fn deep_overshoot_throttles_harder() {
        let mut a = PmFirmware::default();
        let mut b = PmFirmware::default();
        for _ in 0..20 {
            a.tick(busy(300.0));
            b.tick(busy(300.0));
        }
        a.tick(busy(760.0));
        b.tick(busy(1100.0));
        assert!(b.f_mhz() < a.f_mhz());
    }

    #[test]
    fn never_exceeds_limits() {
        let mut pm = PmFirmware::default();
        let cfg = PmConfig::default();
        for _ in 0..100 {
            pm.tick(busy(100.0));
            assert!(pm.f_mhz() <= cfg.f_max_mhz);
        }
        for _ in 0..100 {
            pm.tick(busy(5000.0));
            assert!(pm.f_mhz() >= cfg.f_min_mhz);
        }
    }

    #[test]
    fn restore_is_patient_after_throttle() {
        let cfg = PmConfig::default();
        let mut pm = PmFirmware::default();
        for _ in 0..20 {
            pm.tick(busy(300.0));
        }
        // Throttle once, then observe: no restore until the patience count
        // of consecutive under-cap ticks elapses, then one small step.
        pm.tick(busy(1000.0));
        let f_throttled = pm.f_mhz();
        for _ in 0..cfg.restore_patience {
            pm.tick(busy(500.0));
            assert_eq!(pm.f_mhz(), f_throttled, "must hold during patience window");
        }
        pm.tick(busy(500.0));
        let restore = pm.f_mhz() - f_throttled;
        assert!(
            (restore - cfg.restore_step_mhz).abs() < 1e-9,
            "restore step {restore}"
        );
    }

    #[test]
    fn over_cap_tick_resets_patience() {
        let cfg = PmConfig::default();
        let mut pm = PmFirmware::default();
        for _ in 0..20 {
            pm.tick(busy(300.0));
        }
        pm.tick(busy(1000.0));
        let f_throttled = pm.f_mhz();
        // Almost through the patience window, then another excursion.
        for _ in 0..cfg.restore_patience {
            pm.tick(busy(500.0));
        }
        pm.tick(busy(1000.0));
        assert!(pm.f_mhz() < f_throttled, "second excursion throttles again");
        // Patience restarts from zero.
        let f2 = pm.f_mhz();
        for _ in 0..cfg.restore_patience {
            pm.tick(busy(500.0));
            assert_eq!(pm.f_mhz(), f2);
        }
    }

    #[test]
    fn parks_after_idle_delay() {
        let mut pm = PmFirmware::default();
        for _ in 0..20 {
            pm.tick(busy(300.0));
        }
        // Idle but not long enough: stays up.
        pm.tick(idle(100));
        assert!(pm.f_mhz() > PmConfig::default().idle_f_mhz);
        // Long idle: parks.
        pm.tick(idle(1_000));
        assert_eq!(pm.f_mhz(), PmConfig::default().idle_f_mhz);
    }

    #[test]
    fn hysteresis_band_holds_frequency() {
        let mut pm = PmFirmware::default();
        for _ in 0..20 {
            pm.tick(busy(300.0));
        }
        pm.tick(busy(1000.0)); // throttle once
        let f = pm.f_mhz();
        // In the band between restore-threshold and cap: frequency holds.
        let in_band = PmConfig::default().power_cap_w * 0.97;
        pm.tick(busy(in_band));
        assert_eq!(pm.f_mhz(), f);
    }

    #[test]
    fn idle_path_never_reads_the_power_average() {
        // The engine skips the O(window) power fold on idle control ticks
        // and passes NaN for the average. The idle path must behave
        // identically whether the average is a real number or poison:
        // park decisions depend only on `idle_for`.
        let run = |avg: f64| {
            let mut pm = PmFirmware::default();
            for _ in 0..20 {
                pm.tick(busy(300.0));
            }
            let mut fs = Vec::new();
            for idle_us in [0, 100, 400, 600, 5_000] {
                fs.push(pm.tick(PmInput {
                    avg_power_w: avg,
                    busy_in_window: false,
                    idle_for: SimDuration::from_micros(idle_us),
                }));
            }
            (fs, pm)
        };
        let (fs_real, pm_real) = run(150.0);
        let (fs_nan, pm_nan) = run(f64::NAN);
        assert_eq!(fs_real, fs_nan);
        assert_eq!(pm_real, pm_nan);
        assert_eq!(
            *fs_nan.last().unwrap(),
            PmConfig::default().idle_f_mhz,
            "long idle still parks"
        );
    }

    #[test]
    #[should_panic(expected = "frequency limits")]
    fn rejects_bad_limits() {
        let _ = PmFirmware::new(PmConfig {
            f_min_mhz: 3000.0,
            ..PmConfig::default()
        });
    }
}
